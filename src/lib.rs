//! # minim — Minimal CDMA Recoding Strategies in Power-Controlled Ad-Hoc Wireless Networks
//!
//! A full reproduction of Indranil Gupta's 2001 paper (Cornell CS TR /
//! IPPS 2001). The paper studies the *Transmitter-Oriented Code
//! Assignment* (TOCA) problem for CDMA ad-hoc networks under dynamics —
//! nodes joining, leaving, moving, and changing transmission power — and
//! contributes the **Minim** family of recoding strategies that restore
//! collision freedom (CA1 + CA2) while recoding the *provably minimum*
//! number of nodes per event.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`geom`] — 2-D geometry and the spatial index.
//! * [`graph`] — dynamic digraph, conflict (constraint) graph, colors.
//! * [`matching`] — maximum-weight bipartite matching (the engine behind
//!   `RecodeOnJoin` / `RecodeOnMove`).
//! * [`coloring`] — global coloring heuristics (greedy, DSATUR,
//!   smallest-last) powering the BBB baseline.
//! * [`net`] — the power-controlled ad-hoc network model and workloads.
//! * [`obs`] — the observability spine: zero-allocation metrics
//!   registry, span tracing, and post-run profiling threaded through
//!   every hot path (see docs/ARCHITECTURE.md § Observability).
//! * [`core`] — the recoding strategies: Minim, CP, BBB.
//! * [`power`] — the SINR physical layer: path-loss gain model,
//!   Foschini–Miljanic closed-loop power control, and the driver that
//!   lowers converged powers into endogenous set-range/join/leave
//!   events.
//! * [`proto`] — distributed message-passing realization of the
//!   strategies with message/round accounting.
//! * [`radio`] — slotted packet-level CDMA link simulation quantifying
//!   the application cost of recoding (retune outages).
//! * [`sim`] — the experiment harness that regenerates the paper's
//!   figures.
//! * [`serve`] — durability: the write-ahead event journal, checksummed
//!   snapshots, crash-safe [`serve::Engine`] facade, and the
//!   fault-injection filesystem behind the recovery test harness.
//!
//! ## Quickstart
//!
//! ```
//! use minim::net::{Network, NodeConfig};
//! use minim::core::{Minim, RecodingStrategy};
//! use minim::geom::Point;
//!
//! let mut net = Network::new(10.0);
//! let mut strategy = Minim::default();
//! // Three nodes join one after the other; Minim assigns codes so that
//! // CA1/CA2 hold after every event.
//! for (i, (x, y)) in [(0.0, 0.0), (4.0, 0.0), (8.0, 0.0)].iter().enumerate() {
//!     let cfg = NodeConfig::new(Point::new(*x, *y), 5.0);
//!     let id = net.next_id();
//!     let outcome = strategy.on_join(&mut net, id, cfg);
//!     println!("node {id} joined, {} nodes recoded", outcome.recoded.len());
//! }
//! assert!(net.validate().is_ok());
//! ```

pub use minim_coloring as coloring;
pub use minim_core as core;
pub use minim_geom as geom;
pub use minim_graph as graph;
pub use minim_matching as matching;
pub use minim_net as net;
pub use minim_obs as obs;
pub use minim_power as power;
pub use minim_proto as proto;
pub use minim_radio as radio;
pub use minim_serve as serve;
pub use minim_sim as sim;
