//! Microbenchmarks for the bipartite matching kernels (the engine of
//! `RecodeOnJoin`, paper §4.1 step 5; the paper bounds the join cost by
//! the matching at `O(k^9 ln k)` from Galil's survey — our Hungarian is
//! far below that bound).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minim_matching::{hopcroft_karp, max_weight_matching, WeightedBipartite};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A join-shaped instance: `members` left vertices, `colors` right
/// vertices, ~80% edge density, one weight-3 keep-edge per left.
fn join_instance(members: usize, colors: usize, seed: u64) -> WeightedBipartite {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedBipartite::new(members, colors);
    for l in 0..members {
        let keep = rng.gen_range(0..colors);
        g.add_edge(l, keep, 3);
        for r in 0..colors {
            if r != keep && rng.gen_bool(0.8) {
                g.add_edge(l, r, 1);
            }
        }
    }
    g
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &(members, colors) in &[(8usize, 12usize), (20, 30), (50, 70), (100, 130)] {
        let g = join_instance(members, colors, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{members}x{colors}")),
            &g,
            |b, g| b.iter(|| black_box(max_weight_matching(g))),
        );
    }
    group.finish();
}

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for &(members, colors) in &[(20usize, 30usize), (100, 130)] {
        let g = join_instance(members, colors, 43);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{members}x{colors}")),
            &g,
            |b, g| b.iter(|| black_box(hopcroft_karp(g))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_hungarian, bench_hopcroft_karp
}
criterion_main!(benches);
