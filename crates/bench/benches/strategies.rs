//! Per-event recode latency for each strategy — the systems argument
//! behind the paper: Minim's per-event work is local (a small matching)
//! while BBB pays a global recolor on every event.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use minim_bench::network_with;
use minim_core::StrategyKind;
use minim_geom::{sample, Rect};
use minim_net::NodeConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_join_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_join");
    for kind in StrategyKind::ALL {
        for &n in &[40usize, 100] {
            let base = network_with(kind, n, 5);
            let mut rng = StdRng::seed_from_u64(99);
            let cfg = NodeConfig::new(
                sample::uniform_point(&mut rng, &Rect::paper_arena()),
                sample::uniform_range(&mut rng, 20.5, 30.5),
            );
            group.bench_with_input(
                BenchmarkId::new(kind.label(), n),
                &(base, cfg),
                |b, (base, cfg)| {
                    b.iter_batched(
                        || (base.clone(), kind.build()),
                        |(mut net, mut s)| {
                            let id = net.next_id();
                            black_box(s.on_join(&mut net, id, *cfg));
                        },
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_move_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_move");
    for kind in StrategyKind::ALL {
        let base = network_with(kind, 40, 6);
        let mut rng = StdRng::seed_from_u64(100);
        let k = rng.gen_range(0..base.node_count());
        let victim = base.iter_nodes().nth(k).expect("k < node_count");
        let to = sample::random_move(
            &mut rng,
            base.config(victim).unwrap().pos,
            40.0,
            &Rect::paper_arena(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &base,
            |b, base| {
                b.iter_batched(
                    || (base.clone(), kind.build()),
                    |(mut net, mut s)| {
                        black_box(s.on_move(&mut net, victim, to));
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_power_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_power_increase");
    for kind in StrategyKind::ALL {
        let base = network_with(kind, 100, 7);
        let victim = base.iter_nodes().nth(50).expect("100-node network");
        let new_range = base.config(victim).unwrap().range * 3.0;
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &base,
            |b, base| {
                b.iter_batched(
                    || (base.clone(), kind.build()),
                    |(mut net, mut s)| {
                        black_box(s.on_set_range(&mut net, victim, new_range));
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_join_event, bench_move_event, bench_power_event
}
criterion_main!(benches);
