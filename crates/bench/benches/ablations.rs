//! Ablation benches for the design choices called out in DESIGN.md §6:
//! the keep-edge weight (what the weight-3 edges buy) and CP's
//! conservative 2-hop color pick (what the conservatism costs).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minim_bench::join_events;
use minim_core::{Cp, Minim};
use minim_net::Network;
use minim_sim::runner::run_events;

fn bench_keep_weight(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_keep_weight");
    group.sample_size(10);
    let events = join_events(60, 11);
    for &w in &[1i64, 3, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let mut net = Network::new(30.5);
                let mut s = Minim::with_keep_weight(w);
                black_box(run_events(&mut s, &mut net, &events))
            })
        });
    }
    group.finish();
}

fn bench_cp_pick(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cp_pick");
    group.sample_size(10);
    let events = join_events(60, 12);
    group.bench_function("conservative_2hop", |b| {
        b.iter(|| {
            let mut net = Network::new(30.5);
            let mut s = Cp::default();
            black_box(run_events(&mut s, &mut net, &events))
        })
    });
    group.bench_function("exact_constraints", |b| {
        b.iter(|| {
            let mut net = Network::new(30.5);
            let mut s = Cp::with_exact_constraints();
            black_box(run_events(&mut s, &mut net, &events))
        })
    });
    group.finish();
}

fn bench_matching_policy(c: &mut Criterion) {
    // Weighted (minimality-preserving) vs weight-blind matching on the
    // same join workload: isolates the cost of the weights themselves.
    let mut group = c.benchmark_group("ablation_matching_policy");
    group.sample_size(10);
    let events = join_events(80, 13);
    group.bench_function("weighted_keep3", |b| {
        b.iter(|| {
            let mut net = Network::new(30.5);
            let mut s = Minim::default();
            black_box(run_events(&mut s, &mut net, &events))
        })
    });
    group.bench_function("blind_weight1", |b| {
        b.iter(|| {
            let mut net = Network::new(30.5);
            let mut s = Minim::with_keep_weight(1);
            black_box(run_events(&mut s, &mut net, &events))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_keep_weight,
    bench_cp_pick,
    bench_matching_policy
);
criterion_main!(benches);
