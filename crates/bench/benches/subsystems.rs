//! Benches for the extension subsystems: the distributed protocol
//! engine (per-join message flow) and the packet-level radio slot loop.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use minim_bench::minim_network;
use minim_geom::Point;
use minim_net::NodeConfig;
use minim_proto::distributed_minim_join;
use minim_radio::{RadioConfig, RadioSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_distributed_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("proto_distributed_join");
    group.sample_size(20);
    for &n in &[40usize, 100] {
        let base = minim_network(n, 21);
        let cfg = NodeConfig::new(Point::new(50.0, 50.0), 25.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &base, |b, base| {
            b.iter_batched(
                || base.clone(),
                |mut net| {
                    let id = net.next_id();
                    black_box(distributed_minim_join(&mut net, id, cfg));
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_radio_slots(c: &mut Criterion) {
    let mut group = c.benchmark_group("radio_slot_loop");
    group.sample_size(20);
    for &n in &[40usize, 100] {
        let net = minim_network(n, 22);
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| {
                let mut sim = RadioSim::new(RadioConfig {
                    retune_slots: 8,
                    traffic_prob: 0.5,
                    ..RadioConfig::default()
                });
                let mut rng = StdRng::seed_from_u64(1);
                for _ in 0..100 {
                    sim.slot(net, &mut rng);
                }
                black_box(sim.stats())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed_join, bench_radio_slots);
criterion_main!(benches);
