//! Durability overhead trajectory → `BENCH_serve.json`.
//!
//! Measures the price of crash safety: metropolis churn driven through
//! the bare strategy (no durability), through a [`minim_serve::Engine`]
//! fsyncing every event (`sync_every = 1`, the full-acknowledgment
//! posture), and through an engine batching fsyncs (`sync_every = 64`)
//! with periodic snapshot rotation. Each journaled arm must finish
//! **bit-identical** to the bare arm — the engine is a transparent
//! wrapper — and the JSON records events/sec per arm plus the
//! journaled/bare overhead ratio.
//!
//! Run via `cargo bench -p minim-bench --bench serve`; override the
//! event count with `MINIM_BENCH_SERVE_N=2000` and the output path
//! with `MINIM_BENCH_SERVE_OUT=path.json`.

use minim_core::StrategyKind;
use minim_net::event::{apply_topology, Event};
use minim_net::workload::{MixWorkload, Placement, RangeDist};
use minim_net::Network;
use minim_serve::{Engine, EngineOptions};
use minim_sim::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const CELL_HINT: f64 = 30.5;

/// A valid-in-order churn stream over the paper arena.
fn churn_events(n: usize, seed: u64) -> Vec<Event> {
    let mix = MixWorkload {
        steps: n,
        join_prob: 0.45,
        leave_prob: 0.2,
        maxdisp: 60.0,
        placement: Placement::Uniform {
            arena: minim_geom::Rect::paper_arena(),
        },
        ranges: RangeDist::paper(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ghost = Network::new(CELL_HINT);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let e = mix.next_event(&ghost, &mut rng);
        apply_topology(&mut ghost, &e);
        events.push(e);
    }
    events
}

/// Bare arm: the strategy with no durability layer. Returns
/// (median seconds, final digest).
fn run_bare(events: &[Event], reps: usize) -> (f64, u64) {
    let mut times = Vec::with_capacity(reps);
    let mut digest = 0;
    for _ in 0..reps {
        let mut net = Network::new(CELL_HINT);
        let mut s = StrategyKind::Minim.build();
        let t = Instant::now();
        for e in events {
            s.apply(&mut net, e);
        }
        times.push(t.elapsed().as_secs_f64());
        digest = net.state_digest();
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], digest)
}

/// Journaled arm: the same events through an [`Engine`] over a fresh
/// temp directory per rep. Returns (median seconds, final digest).
fn run_journaled(
    events: &[Event],
    reps: usize,
    sync_every: u64,
    snapshot_every: u64,
) -> (f64, u64) {
    let mut times = Vec::with_capacity(reps);
    let mut digest = 0;
    for rep in 0..reps {
        let dir = std::env::temp_dir().join(format!(
            "minim-bench-serve-{}-{sync_every}-{snapshot_every}-{rep}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = EngineOptions {
            strategy: StrategyKind::Minim,
            snapshot_every,
            sync_every,
            cell_hint: CELL_HINT,
            flat: false,
        };
        let mut eng = Engine::open_dir(&dir, opts).expect("open engine");
        let t = Instant::now();
        for e in events {
            eng.apply(e).expect("journaled apply");
        }
        eng.sync().expect("final sync");
        times.push(t.elapsed().as_secs_f64());
        digest = eng.net().state_digest();
        drop(eng);
        let _ = std::fs::remove_dir_all(&dir);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], digest)
}

fn main() {
    let n: usize = std::env::var("MINIM_BENCH_SERVE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    let out_path = std::env::var("MINIM_BENCH_SERVE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    let reps = 3usize;
    let events = churn_events(n, 0x5E21E);

    let (bare_secs, bare_digest) = run_bare(&events, reps);
    let bare_eps = n as f64 / bare_secs;
    println!("serve/bare:            {bare_eps:>9.0} events/s ({bare_secs:.3}s, N={n})");

    let mut arms: Vec<Json> = Vec::new();
    for (label, sync_every, snapshot_every) in [
        ("journal-sync1", 1u64, 0u64),
        ("journal-sync64", 64, 0),
        ("journal-rotating", 64, 1_000),
    ] {
        let (secs, digest) = run_journaled(&events, reps, sync_every, snapshot_every);
        assert_eq!(
            digest, bare_digest,
            "{label}: the engine must be a bit-transparent wrapper"
        );
        let eps = n as f64 / secs;
        let overhead = secs / bare_secs;
        println!("serve/{label:<16} {eps:>9.0} events/s ({secs:.3}s, {overhead:.2}x bare)");
        arms.push(Json::obj(vec![
            ("arm", Json::Str(label.to_string())),
            ("sync_every", Json::Num(sync_every as f64)),
            ("snapshot_every", Json::Num(snapshot_every as f64)),
            ("seconds", Json::Num(secs)),
            ("events_per_sec", Json::Num(eps)),
            ("overhead_vs_bare", Json::Num(overhead)),
        ]));
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("minim-bench-serve/1".to_string())),
        ("n", Json::Num(n as f64)),
        ("bare_events_per_sec", Json::Num(bare_eps)),
        ("arms", Json::Arr(arms)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
}
