//! One full replicate of each figure workload — the end-to-end costs
//! behind the §5 tables (the `repro` binary runs these replicated and
//! aggregated; here Criterion times a single replicate so regressions
//! in the simulation pipeline are caught).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minim_core::StrategyKind;
use minim_net::workload::{JoinWorkload, MovementWorkload, PowerRaiseWorkload};
use minim_net::Network;
use minim_sim::runner::{pregenerate_movement_rounds, run_events};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig10_replicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_join_replicate");
    group.sample_size(10);
    for kind in StrategyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let events = JoinWorkload::paper(100).generate(&mut rng);
                    let mut net = Network::new(30.5);
                    let mut s = kind.build();
                    black_box(run_events(&mut *s, &mut net, &events))
                })
            },
        );
    }
    group.finish();
}

fn bench_fig11_replicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_power_replicate");
    group.sample_size(10);
    for kind in StrategyKind::ALL {
        // Base build outside the timed loop: the figure measures the
        // power phase.
        let mut rng = StdRng::seed_from_u64(2);
        let events = JoinWorkload::paper(100).generate(&mut rng);
        let mut base = Network::new(30.5);
        let mut s = kind.build();
        run_events(&mut *s, &mut base, &events);
        let raises = PowerRaiseWorkload::paper(4.0).generate(&base, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &(base, raises),
            |b, (base, raises)| {
                b.iter(|| {
                    let mut net = base.clone();
                    let mut s = kind.build();
                    black_box(run_events(&mut *s, &mut net, raises))
                })
            },
        );
    }
    group.finish();
}

fn bench_fig12_replicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_move_replicate");
    group.sample_size(10);
    for kind in StrategyKind::ALL {
        let mut rng = StdRng::seed_from_u64(3);
        let events = JoinWorkload::paper(40).generate(&mut rng);
        let mut base = Network::new(30.5);
        let mut s = kind.build();
        run_events(&mut *s, &mut base, &events);
        let rounds =
            pregenerate_movement_rounds(&base, &MovementWorkload::paper(40.0, 1), 1, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &(base, rounds),
            |b, (base, rounds)| {
                b.iter(|| {
                    let mut net = base.clone();
                    let mut s = kind.build();
                    for round in rounds {
                        black_box(run_events(&mut *s, &mut net, round));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig10_replicate,
    bench_fig11_replicate,
    bench_fig12_replicate
);
criterion_main!(benches);
