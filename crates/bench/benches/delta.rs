//! The locality payoff: per-event `O(Δ)` delta validation vs the
//! `O(E)` full-revalidation control, on the paper's Fig 10 join sweep.
//!
//! `event_loop/delta-validate/N` runs the N-join workload with
//! `ValidationMode::Delta` (every event checked on its affected
//! neighborhood only); `event_loop/full-validate/N` is the control
//! that re-checks CA1/CA2 over the whole conflict graph after every
//! event. The acceptance bar for the delta refactor is
//! `delta-validate` beating `full-validate` at N = 100; the sweep's
//! larger points show the gap widening with network size, which is the
//! scalability argument for the delta architecture.
//!
//! `validator/*` isolates the two checkers on a standing 100-node
//! network (one changed node seeded), removing the strategy's own cost
//! from the comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minim_bench::join_events;
use minim_core::{Minim, RecodingStrategy};
use minim_graph::conflict;
use minim_net::Network;
use minim_sim::runner::{run_events_validated, ValidationMode};

fn bench_event_loop_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_loop");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let events = join_events(n, 1);
        for (label, mode) in [
            ("delta-validate", ValidationMode::Delta),
            ("full-validate", ValidationMode::Full),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(label, mode),
                |b, &(_, mode)| {
                    b.iter(|| {
                        let mut net = Network::new(30.5);
                        let mut s = Minim::default();
                        black_box(run_events_validated(&mut s, &mut net, &events, mode))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_validators_standing_network(c: &mut Criterion) {
    // A standing 100-node paper network; validate as if one node's
    // event just landed.
    let events = join_events(100, 7);
    let mut net = Network::new(30.5);
    let mut s = Minim::default();
    for e in &events {
        s.apply(&mut net, e);
    }
    let seed_node = net.iter_nodes().nth(50).expect("100-node network");
    let seeds = [seed_node];

    let mut group = c.benchmark_group("validator");
    group.bench_function("delta_one_node", |b| {
        b.iter(|| {
            black_box(conflict::validate_delta(
                net.graph(),
                net.assignment(),
                black_box(&seeds),
            ))
        })
    });
    group.bench_function("full_graph", |b| {
        b.iter(|| black_box(conflict::validate(net.graph(), net.assignment())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_loop_validation,
    bench_validators_standing_network
);
criterion_main!(benches);
