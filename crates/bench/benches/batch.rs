//! Sequential vs sharded-batched event execution on the metropolis
//! workload.
//!
//! The sharded executor (`run_events_batched`) partitions the event
//! stream into spatially independent shards and runs each shard
//! end-to-end on its own subnetwork, concurrently; it is pinned
//! bit-identical to `run_events` (`tests/batch_equivalence.rs`), so
//! the only question is throughput. This bench runs the `metropolis`
//! preset's workload — dense Poisson-clustered joins over a 4000×4000
//! arena — at N = 1k and N = 10k through the Minim strategy and
//! reports events/sec for both executors, plus the plan's parallel
//! structure (shard count and critical-path share), which bounds the
//! attainable speedup.
//!
//! The acceptance bar for the batch refactor is batched beating
//! sequential at N = 10k **given cores to run on**: the speedup is
//! `total_work / (largest_shard + merge)`, so on a single-core host
//! (`available_parallelism() == 1`) the two arms necessarily coincide
//! modulo scheduling overhead — the printed structure line still
//! shows the parallelism a multi-core host would realize.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minim_core::Minim;
use minim_geom::{sample, Point, Rect};
use minim_net::event::Event;
use minim_net::workload::{Placement, RangeDist};
use minim_net::{BatchPlan, Network, NodeConfig};
use minim_sim::runner::{run_events, run_events_batched, ValidationMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Planning workers for the batched arm.
const WORKERS: usize = 8;

/// The metropolis deployment (`minim_sim::presets::metropolis`):
/// dense Poisson-clustered joins over a 4000×4000 arena with the
/// paper's range distribution.
fn metropolis_events(n: usize, seed: u64) -> Vec<Event> {
    let arena = Rect::new(0.0, 0.0, 4000.0, 4000.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..40)
        .map(|_| sample::uniform_point(&mut rng, &arena))
        .collect();
    let placement = Placement::Clustered {
        centers,
        spread: 25.0,
        arena,
    };
    let ranges = RangeDist::paper();
    (0..n)
        .map(|_| Event::Join {
            cfg: NodeConfig::new(placement.sample(&mut rng), ranges.sample(&mut rng)),
        })
        .collect()
}

fn fresh_net() -> Network {
    Network::new(30.5)
}

fn run_sequential(events: &[Event]) -> usize {
    let mut net = fresh_net();
    let mut s = Minim::default();
    run_events(&mut s, &mut net, events).recodings
}

fn run_batched(events: &[Event]) -> usize {
    let mut net = fresh_net();
    let mut s = Minim::default();
    run_events_batched(&mut s, &mut net, events, ValidationMode::Off, WORKERS).recodings
}

/// One-shot throughput report (median of `reps` runs), printed in
/// events/sec so the two executors compare at a glance.
fn report_events_per_sec(n: usize, events: &[Event]) {
    let median = |f: &dyn Fn(&[Event]) -> usize, reps: usize| -> f64 {
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t = Instant::now();
                black_box(f(black_box(events)));
                t.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let reps = if n >= 10_000 { 3 } else { 7 };
    let seq = median(&run_sequential, reps);
    let bat = median(&run_batched, reps);
    let plan = BatchPlan::new(&fresh_net(), events);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "throughput/N={n}: sequential {:>9.0} events/s | batched(x{WORKERS}) {:>9.0} events/s | speedup {:.2}x on {cores} core(s) | {} shards, largest {} events",
        n as f64 / seq,
        n as f64 / bat,
        seq / bat,
        plan.shard_count(),
        plan.max_shard_len(),
    );
}

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_events");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let events = metropolis_events(n, 0xBA7C);
        report_events_per_sec(n, &events);
        group.bench_with_input(BenchmarkId::new("sequential", n), &events, |b, events| {
            b.iter(|| black_box(run_sequential(events)))
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &events, |b, events| {
            b.iter(|| black_box(run_batched(events)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_sequential);
criterion_main!(benches);
