//! Event-path throughput trajectory → `BENCH_events.json`.
//!
//! The repo's first machine-readable perf record: events/sec for the
//! four event families (join / move / churn / power-raise) at
//! N ∈ {1k, 4k, 10k}, each measured **flat-vs-stratified** (the
//! legacy single-tier spatial index vs. the range-stratified
//! reverse-reach index) and **sequential-vs-batched** (the sharded
//! executor at 8 workers). A `lighthouse` micro-preset — one max-range
//! node among thousands of short-range joiners — isolates the tier
//! win: under the flat index the lighthouse's watermark inflates every
//! later join's reverse-reach scan to its radius; the stratified index
//! keeps the short tier's scans short and must deliver ≥ 2× join
//! throughput at N = 4k. A `resident-vs-replan` arm (schema v2) runs
//! metropolis churn in slices through the per-slice replanning batched
//! executor and the persistent spatial-ownership resident executor,
//! asserting bit-identity and a healthy shard structure (shard count
//! > 1, bounded border-event fraction) and recording the speedup.
//!
//! A `profile-overhead` arm (schema v3) times the metropolis churn
//! preset with the minim-obs registry recording vs runtime-disabled —
//! the observability spine must cost under 3% throughput — and embeds
//! the instrumented run's `minim-trace/1` document in the artifact so
//! CI can validate the trace schema end to end.
//!
//! Run via `cargo bench -p minim-bench --bench events`; CI uploads the
//! JSON as an artifact so the trajectory accumulates across commits.
//! Override the sweep with `MINIM_BENCH_EVENTS_NS=500,2000` and the
//! output path with `MINIM_BENCH_EVENTS_OUT=path.json`.

use minim_core::Minim;
use minim_geom::{sample, Point, Rect};
use minim_net::event::{apply_topology, Event};
use minim_net::workload::{
    MixWorkload, MovementWorkload, Placement, PowerRaiseWorkload, RangeDist,
};
use minim_net::{BatchScratch, Network, NodeConfig};
use minim_sim::json::Json;
use minim_sim::runner::{
    run_events, run_events_batched, run_events_batched_with, ResidentExecutor, ShardHealth,
    ValidationMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Workers for the batched arm.
const WORKERS: usize = 8;

/// Spatial cell hint for every network (the metropolis value).
const CELL_HINT: f64 = 30.5;

fn fresh(flat: bool) -> Network {
    if flat {
        Network::new_flat(CELL_HINT)
    } else {
        Network::new(CELL_HINT)
    }
}

/// The metropolis deployment: Poisson-clustered hot spots over a
/// 4000×4000 arena, paper ranges.
fn metro_placement(seed: u64) -> (Placement, StdRng) {
    let arena = Rect::new(0.0, 0.0, 4000.0, 4000.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..40)
        .map(|_| sample::uniform_point(&mut rng, &arena))
        .collect();
    (
        Placement::Clustered {
            centers,
            spread: 25.0,
            arena,
        },
        rng,
    )
}

fn join_events(n: usize, seed: u64) -> Vec<Event> {
    let (placement, mut rng) = metro_placement(seed);
    let ranges = RangeDist::paper();
    (0..n)
        .map(|_| Event::Join {
            cfg: NodeConfig::new(placement.sample(&mut rng), ranges.sample(&mut rng)),
        })
        .collect()
}

/// A colorless base network with `n` metropolis nodes.
fn base_net(n: usize, seed: u64, flat: bool) -> Network {
    let mut net = fresh(flat);
    for e in join_events(n, seed) {
        apply_topology(&mut net, &e);
    }
    net
}

/// One measured workload: a base network (possibly empty) plus the
/// events to time against it.
struct Workload {
    name: &'static str,
    base: Network,
    events: Vec<Event>,
}

fn build_workloads(n: usize, seed: u64, flat: bool) -> Vec<Workload> {
    let mut out = Vec::new();
    // join: n joins into an empty arena.
    out.push(Workload {
        name: "join",
        base: fresh(flat),
        events: join_events(n, seed),
    });
    // move: one §5.3 movement round over an n-node base (one move per
    // node), generated against a colorless ghost so every arm times
    // the identical event list.
    let base = base_net(n, seed, flat);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x55AA);
    let moves = MovementWorkload {
        maxdisp: 60.0,
        rounds: 1,
        arena: Rect::new(0.0, 0.0, 4000.0, 4000.0),
    }
    .generate_round(&base, &mut rng);
    out.push(Workload {
        name: "move",
        base: base.clone(),
        events: moves,
    });
    // churn: n mixed steps (join/leave/move) against the same base.
    let (placement, _) = metro_placement(seed);
    let mix = MixWorkload {
        steps: n,
        join_prob: 0.35,
        leave_prob: 0.25,
        maxdisp: 60.0,
        placement,
        ranges: RangeDist::paper(),
    };
    let mut ghost = base.clone();
    let mut churn = Vec::with_capacity(n);
    for _ in 0..n {
        let e = mix.next_event(&ghost, &mut rng);
        apply_topology(&mut ghost, &e);
        churn.push(e);
    }
    out.push(Workload {
        name: "churn",
        base: base.clone(),
        events: churn,
    });
    // power-raise: the §5.2 regime on the base.
    let raises = PowerRaiseWorkload::paper(2.0).generate(&base, &mut rng);
    out.push(Workload {
        name: "power-raise",
        base,
        events: raises,
    });
    out
}

/// Median-of-`reps` wall-clock for applying `events` to a clone of
/// `base` through a fresh Minim strategy.
fn time_run(w: &Workload, batched: bool, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut net = w.base.clone();
            let mut s = Minim::default();
            let t = Instant::now();
            if batched {
                run_events_batched(&mut s, &mut net, &w.events, ValidationMode::Off, WORKERS);
            } else {
                run_events(&mut s, &mut net, &w.events);
            }
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The lighthouse micro-preset: `n` short-range joiners plus one
/// max-range lighthouse early in the stream. Returns the event list.
fn lighthouse_events(n: usize, seed: u64) -> Vec<Event> {
    let arena = Rect::new(0.0, 0.0, 4000.0, 4000.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let ranges = RangeDist::Interval {
        minr: 15.0,
        maxr: 25.0,
    };
    let mut events: Vec<Event> = (0..n)
        .map(|_| Event::Join {
            cfg: NodeConfig::new(
                sample::uniform_point(&mut rng, &arena),
                ranges.sample(&mut rng),
            ),
        })
        .collect();
    // The lighthouse joins 20 events in: everything after it runs
    // under the inflated flat watermark.
    events.insert(
        20.min(events.len()),
        Event::Join {
            cfg: NodeConfig::new(Point::new(2000.0, 2000.0), 2000.0),
        },
    );
    events
}

fn main() {
    let ns: Vec<usize> = std::env::var("MINIM_BENCH_EVENTS_NS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("MINIM_BENCH_EVENTS_NS: bad N"))
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 4_000, 10_000]);
    // Cargo runs bench binaries with cwd = the *package* root
    // (crates/bench); anchor the default output at the workspace root
    // so CI finds it where the checkout lives.
    let out_path = std::env::var("MINIM_BENCH_EVENTS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_events.json").to_string()
    });
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let seed = 0xE7E27u64;

    let mut results: Vec<Json> = Vec::new();
    for &n in &ns {
        let reps = if n >= 10_000 { 1 } else { 3 };
        for flat in [true, false] {
            let index = if flat { "flat" } else { "stratified" };
            for w in build_workloads(n, seed, flat) {
                for batched in [false, true] {
                    let execution = if batched { "batched" } else { "sequential" };
                    let secs = time_run(&w, batched, reps);
                    let eps = w.events.len() as f64 / secs;
                    println!(
                        "events/{}/N={n}: {index:>10} {execution:>10} {:>9.0} events/s ({} events, {:.3}s)",
                        w.name,
                        eps,
                        w.events.len(),
                        secs,
                    );
                    results.push(Json::obj(vec![
                        ("workload", Json::Str(w.name.to_string())),
                        ("n", Json::Num(n as f64)),
                        ("index", Json::Str(index.to_string())),
                        ("execution", Json::Str(execution.to_string())),
                        ("events", Json::Num(w.events.len() as f64)),
                        ("seconds", Json::Num(secs)),
                        ("events_per_sec", Json::Num(eps)),
                    ]));
                }
            }
        }
    }

    // Lighthouse: flat vs stratified join throughput, sequential.
    let mut lighthouse: Vec<Json> = Vec::new();
    for &n in &[1_000usize, 4_000] {
        let events = lighthouse_events(n, seed);
        let reps = 3;
        let arm = |flat: bool| {
            let w = Workload {
                name: "lighthouse",
                base: fresh(flat),
                events: events.clone(),
            };
            let secs = time_run(&w, false, reps);
            events.len() as f64 / secs
        };
        let flat_eps = arm(true);
        let strat_eps = arm(false);
        let speedup = strat_eps / flat_eps;
        println!(
            "lighthouse/N={n}: flat {flat_eps:>9.0} events/s | stratified {strat_eps:>9.0} events/s | tier speedup {speedup:.2}x"
        );
        if n >= 4_000 && speedup < 2.0 {
            eprintln!("WARNING: lighthouse speedup below the 2x acceptance bar at N={n}");
        }
        lighthouse.push(Json::obj(vec![
            ("n", Json::Num(n as f64)),
            ("flat_events_per_sec", Json::Num(flat_eps)),
            ("stratified_events_per_sec", Json::Num(strat_eps)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    // Resident vs replan: metropolis churn in slices, the per-slice
    // replanning batched executor (warm `BatchScratch`, so it pays
    // planning work but not planning allocations) against the
    // persistent spatial-ownership resident executor. Same event
    // slices, same strategy — the arms must be bit-identical; the
    // resident arm additionally reports its shard structure.
    let mut resident_vs_replan: Vec<Json> = Vec::new();
    {
        let n = 4_000usize;
        let n_slices = 20usize;
        let per_slice = 200usize;
        let base = base_net(n, seed, false);
        let (placement, _) = metro_placement(seed);
        let mix = MixWorkload {
            steps: n_slices * per_slice,
            join_prob: 0.3,
            leave_prob: 0.3,
            maxdisp: 60.0,
            placement,
            ranges: RangeDist::paper(),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A2);
        let mut ghost = base.clone();
        let mut events = Vec::with_capacity(n_slices * per_slice);
        for _ in 0..n_slices * per_slice {
            let e = mix.next_event(&ghost, &mut rng);
            apply_topology(&mut ghost, &e);
            events.push(e);
        }
        let slices: Vec<&[Event]> = events.chunks(per_slice).collect();
        let reps = 3usize;

        let run_replan = || {
            let mut net = base.clone();
            let mut s = Minim::default();
            let mut scratch = BatchScratch::default();
            let t = Instant::now();
            for slice in &slices {
                run_events_batched_with(
                    &mut s,
                    &mut net,
                    slice,
                    ValidationMode::Off,
                    WORKERS,
                    &mut scratch,
                );
            }
            (t.elapsed().as_secs_f64(), net)
        };
        let run_resident = || {
            let mut net = base.clone();
            let mut s = Minim::default();
            let mut exec = ResidentExecutor::new(WORKERS);
            let mut health = ShardHealth::default();
            let t = Instant::now();
            for slice in &slices {
                let m = exec.run(&mut s, &mut net, slice, ValidationMode::Off);
                if let Some(h) = &m.shard_health {
                    health.absorb(h);
                }
            }
            (t.elapsed().as_secs_f64(), net, health)
        };

        let mut replan_times = Vec::with_capacity(reps);
        let mut resident_times = Vec::with_capacity(reps);
        let mut replan_net = None;
        let mut resident_out = None;
        for _ in 0..reps {
            let (secs, net) = run_replan();
            replan_times.push(secs);
            replan_net = Some(net);
            let (secs, net, health) = run_resident();
            resident_times.push(secs);
            resident_out = Some((net, health));
        }
        let (resident_net, health) = resident_out.expect("reps >= 1");
        let replan_net = replan_net.expect("reps >= 1");
        assert_eq!(
            resident_net.snapshot_assignment(),
            replan_net.snapshot_assignment(),
            "resident arm must be bit-identical to the replanning arm"
        );
        assert_eq!(resident_net.describe(), replan_net.describe());
        assert!(
            health.shards > 1,
            "metropolis churn must split across shards, got {}",
            health.shards
        );
        assert!(
            health.border_fraction() < 0.5,
            "border-event fraction must stay bounded, got {:.3}",
            health.border_fraction()
        );
        replan_times.sort_by(f64::total_cmp);
        resident_times.sort_by(f64::total_cmp);
        let replan_secs = replan_times[reps / 2];
        let resident_secs = resident_times[reps / 2];
        let replan_eps = events.len() as f64 / replan_secs;
        let resident_eps = events.len() as f64 / resident_secs;
        let speedup = resident_eps / replan_eps;
        println!(
            "resident-vs-replan/N={n}: replan {replan_eps:>9.0} events/s | resident {resident_eps:>9.0} events/s | speedup {speedup:.2}x | {} shards, border {:.3}",
            health.shards,
            health.border_fraction(),
        );
        if cores > 1 && speedup < 1.0 {
            eprintln!("WARNING: resident executor slower than per-slice replanning at N={n}");
        }
        resident_vs_replan.push(Json::obj(vec![
            ("n", Json::Num(n as f64)),
            ("slices", Json::Num(n_slices as f64)),
            ("events", Json::Num(events.len() as f64)),
            ("replan_events_per_sec", Json::Num(replan_eps)),
            ("resident_events_per_sec", Json::Num(resident_eps)),
            ("speedup", Json::Num(speedup)),
            ("shards", Json::Num(health.shards as f64)),
            ("widest_shard", Json::Num(health.widest_shard as f64)),
            ("border_fraction", Json::Num(health.border_fraction())),
        ]));
    }

    // Profile overhead: the same metropolis churn preset, minim-obs
    // recording vs runtime-disabled, reps interleaved so drift hits
    // both arms equally. The spine's cost per instrumented event is a
    // TLS read plus a relaxed fetch_add, so the median overhead must
    // stay under 3%. (Under `--features obs-off` both arms run the
    // same site-free code and the ratio just measures noise.)
    let mut profile_overhead: Vec<Json> = Vec::new();
    let trace_doc;
    {
        let n = 4_000usize;
        let w = build_workloads(n, seed, false)
            .into_iter()
            .find(|w| w.name == "churn")
            .expect("churn workload present");
        let reps = 9usize;
        let arm = |record: bool| -> f64 {
            minim_obs::set_enabled(record);
            let mut net = w.base.clone();
            let mut s = Minim::default();
            let t = Instant::now();
            run_events(&mut s, &mut net, &w.events);
            t.elapsed().as_secs_f64()
        };
        let mut on_times = Vec::with_capacity(reps);
        let mut off_times = Vec::with_capacity(reps);
        arm(true); // warm-up: caches, interning
        for _ in 0..reps {
            off_times.push(arm(false));
            on_times.push(arm(true));
        }
        minim_obs::set_enabled(true);
        on_times.sort_by(f64::total_cmp);
        off_times.sort_by(f64::total_cmp);
        let on_secs = on_times[reps / 2];
        let off_secs = off_times[reps / 2];
        let overhead = on_secs / off_secs - 1.0;
        println!(
            "profile-overhead/N={n}: disabled {:>9.0} events/s | recording {:>9.0} events/s | overhead {:+.2}%",
            w.events.len() as f64 / off_secs,
            w.events.len() as f64 / on_secs,
            overhead * 100.0,
        );
        assert!(
            overhead < 0.03,
            "observability overhead on metropolis churn must stay under 3%, \
             measured {:.2}% (recording {on_secs:.4}s vs disabled {off_secs:.4}s)",
            overhead * 100.0
        );
        profile_overhead.push(Json::obj(vec![
            ("n", Json::Num(n as f64)),
            ("events", Json::Num(w.events.len() as f64)),
            (
                "disabled_events_per_sec",
                Json::Num(w.events.len() as f64 / off_secs),
            ),
            (
                "recording_events_per_sec",
                Json::Num(w.events.len() as f64 / on_secs),
            ),
            ("overhead", Json::Num(overhead)),
            ("obs_compiled", Json::Bool(minim_obs::COMPILED)),
        ]));

        // One more instrumented pass against a clean registry, so the
        // embedded trace document describes exactly this workload.
        minim_obs::reset();
        arm(true);
        trace_doc = minim_sim::trace::trace_document();
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("minim-bench-events/3".to_string())),
        ("cores", Json::Num(cores as f64)),
        ("batch_workers", Json::Num(WORKERS as f64)),
        ("results", Json::Arr(results)),
        ("lighthouse", Json::Arr(lighthouse)),
        ("resident-vs-replan", Json::Arr(resident_vs_replan)),
        ("profile-overhead", Json::Arr(profile_overhead)),
        ("trace", trace_doc),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_events.json");
    println!("wrote {out_path}");
}
