//! Scenario-lab sweep throughput: how fast the declarative driver
//! turns a spec into a `SweepResult`, serial vs parallel.
//!
//! `sweep/<preset>/<workers>` runs a thinned preset end to end —
//! replicate generation, strategy execution, aggregation — so the
//! number is the real cost a `minim-lab run` pays per sweep. The
//! `workers=1` vs `workers=8` pair measures the worker-pool speedup on
//! the replicate fan-out; results are bit-identical by construction
//! (see `tests/scenario_determinism.rs`), so the bench is purely about
//! throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minim_sim::presets;
use minim_sim::scenario::{ExperimentConfig, Scenario, ScenarioSpec, SweepAxis};

fn thin_specs() -> Vec<ScenarioSpec> {
    vec![
        presets::fig10_vs_n(vec![40, 80]),
        presets::clustered_churn().sweep(SweepAxis::MixSteps(vec![60])),
    ]
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for spec in thin_specs() {
        for workers in [1usize, 8] {
            let scenario = Scenario::new(spec.clone()).expect("bench specs validate");
            let cfg = ExperimentConfig {
                runs: 8,
                seed: 0xBE7C,
                workers,
                ..ExperimentConfig::quick()
            };
            group.bench_with_input(BenchmarkId::new(&spec.name, workers), &cfg, |b, cfg| {
                b.iter(|| black_box(scenario.run(cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
