//! Benchmarks for the global coloring heuristics on conflict graphs of
//! paper-style networks (the BBB baseline runs one of these per event).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minim_bench::minim_network;
use minim_coloring::{dsatur, greedy_identity, iterated_greedy, rlf, smallest_last};
use minim_graph::conflict;

fn bench_conflict_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_graph_build");
    for &n in &[40usize, 100, 200] {
        let net = minim_network(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| black_box(conflict::conflict_graph(net.graph())))
        });
    }
    group.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    for &n in &[40usize, 100, 200] {
        let net = minim_network(n, 2);
        let (ug, _) = conflict::conflict_graph(net.graph());
        group.bench_with_input(BenchmarkId::new("dsatur", n), &ug, |b, g| {
            b.iter(|| black_box(dsatur(g)))
        });
        group.bench_with_input(BenchmarkId::new("smallest_last", n), &ug, |b, g| {
            b.iter(|| black_box(smallest_last(g)))
        });
        group.bench_with_input(BenchmarkId::new("greedy_identity", n), &ug, |b, g| {
            b.iter(|| black_box(greedy_identity(g)))
        });
        group.bench_with_input(BenchmarkId::new("rlf", n), &ug, |b, g| {
            b.iter(|| black_box(rlf(g)))
        });
        group.bench_with_input(BenchmarkId::new("iterated_greedy_x8", n), &ug, |b, g| {
            let start = greedy_identity(g);
            b.iter(|| black_box(iterated_greedy(g, &start, 8)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_conflict_graph_build, bench_heuristics
}
criterion_main!(benches);
