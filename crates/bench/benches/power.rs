//! Power-control loop throughput trajectory → `BENCH_power.json`.
//!
//! Measures the `minim-power` closed loop at N ∈ {1k, 4k} on the
//! metropolis-style clustered deployment, continuous vs. discrete
//! (12-rung) ladder:
//!
//! * **loop**: full `PowerLoop::run` passes per second, the iteration
//!   count to convergence, and link-update throughput
//!   (links × iterations / second — the inner-loop rate the sparse
//!   interferer lists exist for);
//! * **events**: end-to-end endogenous events per second — the loop's
//!   emitted set-range stream applied through a fresh Minim strategy,
//!   i.e. what a power-control measured phase costs the scenario lab;
//! * **churn** (incremental vs rebuild, N up to 16k): the same
//!   exogenous join/leave/move stream driven through a warm
//!   [`PowerSession`] (field delta-patching + active-set re-settles)
//!   and through the from-scratch path (full field rebuild + cold
//!   sweep per slice), reporting the speedup explicitly;
//! * **active-set** (vs full sweep): on a static field, the full
//!   synchronous sweep vs cold event-driven relaxation, plus the warm
//!   per-event resettle cost after a single move patch;
//! * **parallel-settle** (vs serial): the same churn stream settled at
//!   `workers = 1` and at the machine's parallelism, asserting the
//!   power vectors stay bit-identical and reporting the island
//!   structure (mean islands per settle, widest island) — the
//!   attainable width even when the host has one core;
//! * **simd-accum** (vs scalar): the explicit-SIMD interference
//!   accumulation kernel against its scalar reference over a settled
//!   field's CSR rows, asserted bitwise-equal row by row.
//!
//! Run via `cargo bench -p minim-bench --bench power`; CI uploads the
//! JSON as an artifact next to `BENCH_events.json`. Override the
//! sweeps with `MINIM_BENCH_POWER_NS=500,2000` /
//! `MINIM_BENCH_POWER_CHURN_NS=1000,16000` and the output path with
//! `MINIM_BENCH_POWER_OUT=path.json`.

use minim_core::Minim;
use minim_geom::{sample, Point, Rect};
use minim_net::event::{apply_topology, Event};
use minim_net::workload::{MixWorkload, Placement, RangeDist};
use minim_net::{Network, NodeConfig};
use minim_power::{LoopScratch, PowerLadder, PowerLoop, PowerLoopConfig, PowerSession, Verdict};
use minim_sim::json::Json;
use minim_sim::runner::run_events;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// A clustered metropolis-style base network with `n` nodes.
fn base_net(n: usize, seed: u64) -> Network {
    let arena = Rect::new(0.0, 0.0, 4000.0, 4000.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..40)
        .map(|_| sample::uniform_point(&mut rng, &arena))
        .collect();
    let placement = Placement::Clustered {
        centers,
        spread: 25.0,
        arena,
    };
    let ranges = RangeDist::paper();
    let mut net = Network::new(30.5);
    for _ in 0..n {
        net.join(NodeConfig::new(
            placement.sample(&mut rng),
            ranges.sample(&mut rng),
        ));
    }
    net
}

fn loop_config(ladder: PowerLadder) -> PowerLoopConfig {
    let mut cfg = PowerLoopConfig::for_range_scale(25.5);
    cfg.ladder = ladder;
    cfg
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One pre-lowered churn step: the session API wants explicit slot
/// ids, so joins carry the id the shared ghost network assigned.
enum ChurnStep {
    Join(u32, Point, f64),
    Leave(u32),
    Move(u32, Point),
    SetRange(u32, f64),
}

/// Generates `slices × per_slice` exogenous churn steps against a
/// ghost clone of `net` (corrections are endogenous and path-specific,
/// so only the exogenous stream is shared between the two arms).
fn churn_stream(net: &Network, slices: usize, per_slice: usize, seed: u64) -> Vec<Vec<ChurnStep>> {
    let arena = Rect::new(0.0, 0.0, 4000.0, 4000.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = MixWorkload {
        steps: slices * per_slice,
        join_prob: 0.3,
        leave_prob: 0.3,
        maxdisp: 25.0,
        placement: Placement::Uniform { arena },
        ranges: RangeDist::paper(),
    };
    let mut ghost = net.clone();
    (0..slices)
        .map(|_| {
            (0..per_slice)
                .map(|_| {
                    let e = workload.next_event(&ghost, &mut rng);
                    let step = match &e {
                        Event::Join { cfg } => {
                            ChurnStep::Join(ghost.peek_next_id().0, cfg.pos, cfg.range)
                        }
                        Event::Leave { node } => ChurnStep::Leave(node.0),
                        Event::Move { node, to } => ChurnStep::Move(node.0, *to),
                        Event::SetRange { node, range } => ChurnStep::SetRange(node.0, *range),
                    };
                    apply_topology(&mut ghost, &e);
                    step
                })
                .collect()
        })
        .collect()
}

/// Incremental vs rebuild on the same exogenous churn stream. The
/// incremental arm patches a warm [`PowerSession`] per event and
/// re-settles per slice; the rebuild arm replays the slice onto a
/// network and runs the from-scratch loop (receiver recompute + field
/// rebuild + cold sweep) at each slice boundary.
fn churn_arm(n: usize, seed: u64, results: &mut Vec<Json>) {
    let slices = 6usize;
    let per_slice = 16usize;
    let net0 = base_net(n, seed);
    let stream = churn_stream(&net0, slices, per_slice, seed ^ 0xC0DE);
    let cfg = loop_config(PowerLadder::Continuous);

    // Incremental: warm the session to the base equilibrium, then
    // time patch + settle across the whole stream.
    let mut session = PowerSession::new(cfg, &net0);
    let (_, base_report) = session.settle();
    let mut relax_updates = base_report.updates;
    let t = Instant::now();
    let mut verdicts_ok = true;
    for slice in &stream {
        for step in slice {
            match *step {
                ChurnStep::Join(id, pos, range) => session.apply_join(id, pos, range),
                ChurnStep::Leave(id) => session.apply_leave(id),
                ChurnStep::Move(id, to) => session.apply_move(id, to),
                ChurnStep::SetRange(id, range) => session.note_range(id, range),
            }
        }
        let (_, report) = session.settle();
        relax_updates += report.updates;
        verdicts_ok &= report.verdict != Verdict::Diverging;
    }
    let inc_secs = t.elapsed().as_secs_f64();

    // Rebuild: same stream replayed onto a network, full loop per
    // slice (scratch reused, so the arm pays rebuild — not allocator —
    // costs). Warm the equilibrium once outside the timer, like the
    // session did.
    let lp = PowerLoop::new(cfg);
    let mut scratch = LoopScratch::new();
    let mut net = net0;
    lp.run_reusing(&net, &[], &mut scratch);
    let mut sweep_link_updates = 0u64;
    let t = Instant::now();
    for slice in &stream {
        for step in slice {
            let e = match *step {
                ChurnStep::Join(_, pos, range) => Event::Join {
                    cfg: NodeConfig::new(pos, range),
                },
                ChurnStep::Leave(id) => Event::Leave {
                    node: minim_graph::NodeId(id),
                },
                ChurnStep::Move(id, to) => Event::Move {
                    node: minim_graph::NodeId(id),
                    to,
                },
                ChurnStep::SetRange(id, range) => Event::SetRange {
                    node: minim_graph::NodeId(id),
                    range,
                },
            };
            apply_topology(&mut net, &e);
        }
        let out = lp.run_reusing(&net, &[], &mut scratch);
        sweep_link_updates += (out.report.links * out.report.iterations) as u64;
    }
    let reb_secs = t.elapsed().as_secs_f64();

    let events = (slices * per_slice) as f64;
    let speedup = reb_secs / inc_secs;
    // The incremental engine's effective throughput in full-sweep
    // units: the link updates the rebuild arm needed for the same
    // stream, per incremental second.
    let equiv_updates_per_sec = sweep_link_updates as f64 / inc_secs;
    println!(
        "churn/N={n}: incremental {:>8.4}s vs rebuild {:>8.4}s over {} events ({} slices) | {speedup:>6.1}x speedup | {equiv_updates_per_sec:>12.0} sweep-equivalent link-updates/s | {} relax updates vs {} sweep updates",
        inc_secs, reb_secs, events, slices, relax_updates, sweep_link_updates,
    );
    results.push(Json::obj(vec![
        ("arm", Json::Str("incremental-vs-rebuild".to_string())),
        ("n", Json::Num(n as f64)),
        ("slices", Json::Num(slices as f64)),
        ("events", Json::Num(events)),
        ("incremental_seconds", Json::Num(inc_secs)),
        ("rebuild_seconds", Json::Num(reb_secs)),
        ("speedup", Json::Num(speedup)),
        ("relax_updates", Json::Num(relax_updates as f64)),
        ("sweep_link_updates", Json::Num(sweep_link_updates as f64)),
        ("link_updates_per_sec", Json::Num(equiv_updates_per_sec)),
        ("settled", Json::Bool(verdicts_ok)),
    ]));
}

/// Island-parallel vs serial settles on the same exogenous churn
/// stream: two sessions replay identical slices, one at `workers = 1`
/// (inline islands) and one at the machine's parallelism, asserting
/// bit-identical power vectors along the way. On single-core CI the
/// interesting output is the island *structure* (attainable width and
/// critical path), which is reported either way.
fn parallel_settle_arm(n: usize, seed: u64, results: &mut Vec<Json>) {
    let slices = 6usize;
    let per_slice = 16usize;
    let net0 = base_net(n, seed);
    let stream = churn_stream(&net0, slices, per_slice, seed ^ 0x15_1A);
    let cfg = loop_config(PowerLadder::Continuous);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(1);

    let run = |w: usize| {
        let mut session = PowerSession::new(cfg, &net0);
        session.set_workers(w);
        session.settle(); // warm to the base equilibrium, untimed
        let mut islands_sum = 0u64;
        let mut widest_sum = 0u64;
        let mut settles = 0u64;
        let t = Instant::now();
        for slice in &stream {
            for step in slice {
                match *step {
                    ChurnStep::Join(id, pos, range) => session.apply_join(id, pos, range),
                    ChurnStep::Leave(id) => session.apply_leave(id),
                    ChurnStep::Move(id, to) => session.apply_move(id, to),
                    ChurnStep::SetRange(id, range) => session.note_range(id, range),
                }
            }
            let (_, report) = session.settle();
            islands_sum += report.islands as u64;
            widest_sum += report.widest_island as u64;
            settles += 1;
        }
        let secs = t.elapsed().as_secs_f64();
        let powers = session.powers().to_vec();
        (secs, powers, islands_sum, widest_sum, settles)
    };
    let (serial_secs, serial_powers, islands_sum, widest_sum, settles) = run(1);
    let (par_secs, par_powers, _, _, _) = run(workers);
    // The contract the whole arm exists to witness: worker count never
    // changes a single bit of the fixed point.
    let bit_identical = serial_powers.len() == par_powers.len()
        && serial_powers
            .iter()
            .zip(&par_powers)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "parallel settle diverged from serial");

    let speedup = serial_secs / par_secs;
    let mean_islands = islands_sum as f64 / settles as f64;
    let mean_widest = widest_sum as f64 / settles as f64;
    // A single-core host cannot witness a speedup, but the island
    // *structure* — the attainable parallel width — is machine-
    // independent: churn dirty sets on the clustered arena must
    // genuinely decompose.
    assert!(
        mean_islands > 1.0,
        "churn worklists should decompose into >1 island per settle, got {mean_islands}"
    );
    println!(
        "parallel-settle/N={n}: serial {serial_secs:>8.4}s vs {workers}-worker {par_secs:>8.4}s | {speedup:>5.2}x | mean {mean_islands:>6.1} islands/settle, widest {mean_widest:>6.1} rows | bit-identical {bit_identical}",
    );
    results.push(Json::obj(vec![
        ("arm", Json::Str("parallel-settle-vs-serial".to_string())),
        ("n", Json::Num(n as f64)),
        ("workers", Json::Num(workers as f64)),
        ("serial_seconds", Json::Num(serial_secs)),
        ("parallel_seconds", Json::Num(par_secs)),
        ("speedup", Json::Num(speedup)),
        ("settles", Json::Num(settles as f64)),
        ("mean_islands", Json::Num(mean_islands)),
        ("mean_widest_island", Json::Num(mean_widest)),
        ("bit_identical", Json::Bool(bit_identical)),
    ]));
}

/// The SIMD vs scalar accumulation kernel, timed per full-field
/// interference pass over a settled session's CSR rows (and asserted
/// bitwise-equal row by row, outside the timers).
fn simd_vs_scalar_arm(n: usize, seed: u64, results: &mut Vec<Json>) {
    use minim_power::{weighted_sum_scalar, weighted_sum_simd};
    let net = base_net(n, seed);
    let cfg = loop_config(PowerLadder::Continuous);
    let mut session = PowerSession::new(cfg, &net);
    session.settle();
    let field = session.field();
    let powers = session.powers();
    let rows: Vec<usize> = (0..field.len()).filter(|&i| field.is_live(i)).collect();
    for &i in &rows {
        let (ids, gains) = field.interferers(i);
        let a = weighted_sum_scalar(ids, gains, |j| powers[j as usize]);
        let b = weighted_sum_simd(ids, gains, |j| powers[j as usize]);
        assert_eq!(a.to_bits(), b.to_bits(), "row {i}: SIMD arm drifted");
    }
    let reps = if n >= 4_000 { 20 } else { 60 };
    let mut sink = 0.0f64;
    let time_arm = |sink: &mut f64, f: &dyn Fn(&[u32], &[f64]) -> f64| {
        let t = Instant::now();
        for _ in 0..reps {
            for &i in &rows {
                let (ids, gains) = field.interferers(i);
                *sink += f(ids, gains);
            }
        }
        t.elapsed().as_secs_f64() / reps as f64
    };
    let scalar_secs = time_arm(&mut sink, &|ids, gains| {
        weighted_sum_scalar(ids, gains, |j| powers[j as usize])
    });
    let simd_secs = time_arm(&mut sink, &|ids, gains| {
        weighted_sum_simd(ids, gains, |j| powers[j as usize])
    });
    std::hint::black_box(sink);
    let entries: usize = rows.iter().map(|&i| field.interferers(i).0.len()).sum();
    let speedup = scalar_secs / simd_secs;
    println!(
        "simd-accum/N={n}: scalar {:>10.6}s vs simd {:>10.6}s per pass ({} rows, {entries} entries) | {speedup:>5.2}x",
        scalar_secs,
        simd_secs,
        rows.len(),
    );
    results.push(Json::obj(vec![
        ("arm", Json::Str("simd-vs-scalar-accum".to_string())),
        ("n", Json::Num(n as f64)),
        ("rows", Json::Num(rows.len() as f64)),
        ("entries", Json::Num(entries as f64)),
        ("scalar_seconds", Json::Num(scalar_secs)),
        ("simd_seconds", Json::Num(simd_secs)),
        ("speedup", Json::Num(speedup)),
    ]));
}

/// Full synchronous sweep vs event-driven relaxation on a static
/// field, plus the warm per-event resettle after a single move.
fn active_set_arm(n: usize, seed: u64, results: &mut Vec<Json>) {
    use minim_power::{relax, run_with, ControlScratch};
    let net = base_net(n, seed);
    let cfg = loop_config(PowerLadder::Continuous);
    let ctrl = cfg.control();
    let mut session = PowerSession::new(cfg, &net);
    let reps = if n >= 4_000 { 2 } else { 3 };

    let mut sweep = ControlScratch::new();
    let first = run_with(session.field(), &ctrl, &mut sweep);
    let sweep_secs = median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let r = run_with(session.field(), &ctrl, &mut sweep);
                assert_eq!(r.iterations, first.iterations);
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let sweep_updates = (session.field().live_links() * first.iterations) as u64;

    let mut active = ControlScratch::new();
    let cold = relax(session.field(), &ctrl, &mut active, false);
    let relax_secs = median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let r = relax(session.field(), &ctrl, &mut active, false);
                assert_eq!(r.updates, cold.updates);
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );

    // Warm per-event: one node oscillates, each settle re-relaxes from
    // the previous equilibrium over the patched rows only.
    session.settle();
    let mover = (0..n as u32)
        .find(|&i| session.field().is_live(i as usize))
        .expect("live node");
    let home = session
        .field()
        .position_of(mover as usize)
        .expect("mover position");
    let warm_events = 40usize;
    let t = Instant::now();
    for k in 0..warm_events {
        let dx = if k % 2 == 0 { 12.0 } else { 0.0 };
        session.apply_move(mover, Point::new(home.x + dx, home.y));
        session.settle();
    }
    let warm_secs = t.elapsed().as_secs_f64() / warm_events as f64;

    println!(
        "active-set/N={n}: sweep {:>8.4}s ({} updates) | cold relax {:>8.4}s ({} updates) | warm settle {:>10.6}s/event ({:>6.1}x vs sweep)",
        sweep_secs, sweep_updates, relax_secs, cold.updates, warm_secs, sweep_secs / warm_secs,
    );
    results.push(Json::obj(vec![
        ("arm", Json::Str("active-set-vs-full-sweep".to_string())),
        ("n", Json::Num(n as f64)),
        ("sweep_seconds", Json::Num(sweep_secs)),
        ("sweep_updates", Json::Num(sweep_updates as f64)),
        ("relax_seconds", Json::Num(relax_secs)),
        ("relax_updates", Json::Num(cold.updates as f64)),
        ("warm_event_seconds", Json::Num(warm_secs)),
        ("warm_speedup_vs_sweep", Json::Num(sweep_secs / warm_secs)),
    ]));
}

fn main() {
    let ns: Vec<usize> = std::env::var("MINIM_BENCH_POWER_NS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("MINIM_BENCH_POWER_NS: bad N"))
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 4_000]);
    // Cargo runs bench binaries with cwd = the *package* root
    // (crates/bench); anchor the default output at the workspace root
    // so CI finds it where the checkout lives.
    let out_path = std::env::var("MINIM_BENCH_POWER_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_power.json").to_string()
    });
    let seed = 0x50_57u64;

    let mut results: Vec<Json> = Vec::new();
    for &n in &ns {
        let reps = if n >= 4_000 { 2 } else { 3 };
        let net = base_net(n, seed);
        for (ladder_name, ladder) in [
            ("continuous", PowerLadder::Continuous),
            ("discrete-12", PowerLadder::Geometric { levels: 12 }),
        ] {
            let lp = PowerLoop::new(loop_config(ladder));
            // Loop throughput: converge the field from scratch.
            let outcome = lp.run(&net, &[]);
            let secs = median(
                (0..reps)
                    .map(|_| {
                        let t = Instant::now();
                        let o = lp.run(&net, &[]);
                        assert_eq!(o.report.iterations, outcome.report.iterations);
                        t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            let iters = outcome.report.iterations;
            let link_updates = (outcome.report.links * iters) as f64 / secs;
            // Event throughput: the emitted endogenous stream through
            // a fresh Minim strategy on a clone of the base.
            let ev_secs = median(
                (0..reps)
                    .map(|_| {
                        let mut run_net = net.clone();
                        let mut s = Minim::default();
                        let t = Instant::now();
                        run_events(&mut s, &mut run_net, &outcome.events);
                        t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            let events = outcome.events.len();
            println!(
                "power/N={n}: {ladder_name:>11} {:>7.2} loops/s | {iters:>3} iters | {:>10.0} link-updates/s | {:>8.0} endogenous events/s ({events} events)",
                1.0 / secs,
                link_updates,
                events as f64 / ev_secs,
            );
            results.push(Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("ladder", Json::Str(ladder_name.to_string())),
                ("loop_seconds", Json::Num(secs)),
                ("iterations", Json::Num(iters as f64)),
                ("links", Json::Num(outcome.report.links as f64)),
                ("link_updates_per_sec", Json::Num(link_updates)),
                ("events", Json::Num(events as f64)),
                ("events_per_sec", Json::Num(events as f64 / ev_secs)),
                (
                    "feasible",
                    Json::Bool(outcome.report.feasibility.is_feasible()),
                ),
                (
                    "infeasible_nodes",
                    Json::Num(outcome.report.infeasible.len() as f64),
                ),
            ]));
        }
    }

    let churn_ns: Vec<usize> = std::env::var("MINIM_BENCH_POWER_CHURN_NS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("MINIM_BENCH_POWER_CHURN_NS: bad N"))
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 4_000, 16_000]);
    for &n in &churn_ns {
        churn_arm(n, seed, &mut results);
        active_set_arm(n, seed, &mut results);
        parallel_settle_arm(n, seed, &mut results);
        simd_vs_scalar_arm(n, seed, &mut results);
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("minim-bench-power/3".to_string())),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_power.json");
    println!("wrote {out_path}");
}
