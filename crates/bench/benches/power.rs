//! Power-control loop throughput trajectory → `BENCH_power.json`.
//!
//! Measures the `minim-power` closed loop at N ∈ {1k, 4k} on the
//! metropolis-style clustered deployment, continuous vs. discrete
//! (12-rung) ladder:
//!
//! * **loop**: full `PowerLoop::run` passes per second, the iteration
//!   count to convergence, and link-update throughput
//!   (links × iterations / second — the inner-loop rate the sparse
//!   interferer lists exist for);
//! * **events**: end-to-end endogenous events per second — the loop's
//!   emitted set-range stream applied through a fresh Minim strategy,
//!   i.e. what a power-control measured phase costs the scenario lab.
//!
//! Run via `cargo bench -p minim-bench --bench power`; CI uploads the
//! JSON as an artifact next to `BENCH_events.json`. Override the
//! sweep with `MINIM_BENCH_POWER_NS=500,2000` and the output path
//! with `MINIM_BENCH_POWER_OUT=path.json`.

use minim_core::Minim;
use minim_geom::{sample, Point, Rect};
use minim_net::workload::{Placement, RangeDist};
use minim_net::{Network, NodeConfig};
use minim_power::{PowerLadder, PowerLoop, PowerLoopConfig};
use minim_sim::json::Json;
use minim_sim::runner::run_events;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// A clustered metropolis-style base network with `n` nodes.
fn base_net(n: usize, seed: u64) -> Network {
    let arena = Rect::new(0.0, 0.0, 4000.0, 4000.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..40)
        .map(|_| sample::uniform_point(&mut rng, &arena))
        .collect();
    let placement = Placement::Clustered {
        centers,
        spread: 25.0,
        arena,
    };
    let ranges = RangeDist::paper();
    let mut net = Network::new(30.5);
    for _ in 0..n {
        net.join(NodeConfig::new(
            placement.sample(&mut rng),
            ranges.sample(&mut rng),
        ));
    }
    net
}

fn loop_config(ladder: PowerLadder) -> PowerLoopConfig {
    let mut cfg = PowerLoopConfig::for_range_scale(25.5);
    cfg.ladder = ladder;
    cfg
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let ns: Vec<usize> = std::env::var("MINIM_BENCH_POWER_NS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("MINIM_BENCH_POWER_NS: bad N"))
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 4_000]);
    // Cargo runs bench binaries with cwd = the *package* root
    // (crates/bench); anchor the default output at the workspace root
    // so CI finds it where the checkout lives.
    let out_path = std::env::var("MINIM_BENCH_POWER_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_power.json").to_string()
    });
    let seed = 0x50_57u64;

    let mut results: Vec<Json> = Vec::new();
    for &n in &ns {
        let reps = if n >= 4_000 { 2 } else { 3 };
        let net = base_net(n, seed);
        for (ladder_name, ladder) in [
            ("continuous", PowerLadder::Continuous),
            ("discrete-12", PowerLadder::Geometric { levels: 12 }),
        ] {
            let lp = PowerLoop::new(loop_config(ladder));
            // Loop throughput: converge the field from scratch.
            let outcome = lp.run(&net, &[]);
            let secs = median(
                (0..reps)
                    .map(|_| {
                        let t = Instant::now();
                        let o = lp.run(&net, &[]);
                        assert_eq!(o.report.iterations, outcome.report.iterations);
                        t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            let iters = outcome.report.iterations;
            let link_updates = (outcome.report.links * iters) as f64 / secs;
            // Event throughput: the emitted endogenous stream through
            // a fresh Minim strategy on a clone of the base.
            let ev_secs = median(
                (0..reps)
                    .map(|_| {
                        let mut run_net = net.clone();
                        let mut s = Minim::default();
                        let t = Instant::now();
                        run_events(&mut s, &mut run_net, &outcome.events);
                        t.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            let events = outcome.events.len();
            println!(
                "power/N={n}: {ladder_name:>11} {:>7.2} loops/s | {iters:>3} iters | {:>10.0} link-updates/s | {:>8.0} endogenous events/s ({events} events)",
                1.0 / secs,
                link_updates,
                events as f64 / ev_secs,
            );
            results.push(Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("ladder", Json::Str(ladder_name.to_string())),
                ("loop_seconds", Json::Num(secs)),
                ("iterations", Json::Num(iters as f64)),
                ("links", Json::Num(outcome.report.links as f64)),
                ("link_updates_per_sec", Json::Num(link_updates)),
                ("events", Json::Num(events as f64)),
                ("events_per_sec", Json::Num(events as f64 / ev_secs)),
                (
                    "feasible",
                    Json::Bool(outcome.report.feasibility.is_feasible()),
                ),
                (
                    "infeasible_nodes",
                    Json::Num(outcome.report.infeasible.len() as f64),
                ),
            ]));
        }
    }

    let doc = Json::obj(vec![
        ("schema", Json::Str("minim-bench-power/1".to_string())),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_power.json");
    println!("wrote {out_path}");
}
