//! Shared scenario builders for the Criterion benches and the `repro`
//! binary.
//!
//! Bench targets (one per evaluation artifact, see DESIGN.md §4):
//!
//! | Bench | Measures |
//! |---|---|
//! | `matching` | the Hungarian / Hopcroft–Karp kernels on join-sized instances |
//! | `coloring` | the global heuristics on conflict graphs of §5 networks |
//! | `strategies` | per-event recode latency (join/move/power) per strategy |
//! | `figures` | one full replicate of each figure workload (Fig 10/11/12) |
//! | `ablations` | keep-weight and CP color-pick ablation workloads |
//!
//! The `repro` binary (`cargo run --release -p minim-bench --bin repro`)
//! regenerates the *data* of every figure (series means over replicates)
//! and writes CSVs under `results/`.

use minim_core::{Minim, RecodingStrategy, StrategyKind};
use minim_net::event::Event;
use minim_net::workload::JoinWorkload;
use minim_net::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates the §5.1 join event list for `n` nodes.
pub fn join_events(n: usize, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    JoinWorkload::paper(n).generate(&mut rng)
}

/// Builds a Minim-colored paper network of `n` nodes.
pub fn minim_network(n: usize, seed: u64) -> Network {
    let mut net = Network::new(30.5);
    let mut m = Minim::default();
    for e in join_events(n, seed) {
        m.apply(&mut net, &e);
    }
    net
}

/// Builds a network colored by the given strategy kind.
pub fn network_with(kind: StrategyKind, n: usize, seed: u64) -> Network {
    let mut net = Network::new(30.5);
    let mut s = kind.build();
    for e in join_events(n, seed) {
        s.apply(&mut net, &e);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_networks() {
        let net = minim_network(30, 7);
        assert_eq!(net.node_count(), 30);
        assert!(net.validate().is_ok());
        for kind in StrategyKind::ALL {
            let net = network_with(kind, 20, 8);
            assert!(net.validate().is_ok(), "{}", kind.label());
        }
    }
}
