//! `minim-lab` — the scenario lab CLI.
//!
//! Lists, inspects, and runs declarative [`ScenarioSpec`]s: the named
//! presets (the paper's Fig 10–12 sweeps plus the clustered /
//! heterogeneous / churn / corridor extensions) or any JSON spec file.
//!
//! ```text
//! minim-lab list
//! minim-lab show <preset>
//! minim-lab run <preset | spec.json> [--runs K] [--seed S] [--workers W]
//!                                    [--batched P] [--resident P]
//!                                    [--format table|json|csv|all]
//!                                    [--out DIR] [--metrics-out FILE]
//!                                    [--quiet]
//! minim-lab serve-replay <dir> [--gen N] [--seed S] [--strategy NAME]
//!                              [--snapshot-every K]
//! ```
//!
//! * `list` — the preset catalog (name, sweep shape, summary).
//! * `show` — a preset's JSON, which doubles as a spec-file template:
//!   `minim-lab show clustered-churn > my.json`, edit, `run my.json`.
//! * `run` — executes the sweep, streaming per-point progress to
//!   stderr. `--runs/--seed/--workers` override the spec's defaults;
//!   `--batched P` switches each replicate to the wave-parallel
//!   batched executor with `P` planning threads (bit-identical
//!   results); `--resident P` instead keeps a persistent
//!   spatial-ownership executor alive across a replicate's slices —
//!   still bit-identical, and the knob for sustained-churn presets
//!   like `metropolis`, whose shard health (shard count, border-event
//!   fraction, events/sec) is printed with the summary; `--format`
//!   picks the stdout rendering (default `table`); `--out DIR`
//!   additionally writes `<name>.json` and `<name>.csv`;
//!   `--metrics-out FILE` resets the minim-obs registry before the
//!   sweep and afterwards writes the full `minim-trace/1` document
//!   (counters, gauges, latency histograms, span profile tree) to
//!   `FILE`, with a one-screen metrics summary printed alongside the
//!   tables. This replaces the old `MINIM_BATCH_DEBUG` eprintln hook:
//!   the batched/resident phase timings now land on spans.
//! * `serve-replay` — opens (or creates) a durable engine directory:
//!   recovery replays the journal, prints the [`RecoveryReport`], and
//!   with `--gen N` feeds `N` fresh churn events through the
//!   journaled engine before closing. Running it twice — once with
//!   `--gen`, once without — is the crash-recovery smoke test CI
//!   runs: the second invocation must replay to the exact state the
//!   first one left (digests printed for comparison).
//!
//! [`RecoveryReport`]: minim_serve::RecoveryReport

use minim_sim::scenario::{Scenario, ScenarioSpec, SweepProgress, SweepResult};
use minim_sim::{ascii_plot, presets, Execution};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "minim-lab — declarative scenario lab\n\n\
         USAGE:\n  minim-lab list\n  minim-lab show <preset>\n  \
         minim-lab run <preset | spec.json> [--runs K] [--seed S] [--workers W]\n\
         \u{20}                                  [--batched P] [--resident P] [--format table|json|csv|all]\n\
         \u{20}                                  [--out DIR] [--metrics-out FILE] [--quiet]\n  \
         minim-lab serve-replay <dir> [--gen N] [--seed S] [--strategy Minim|CP|BBB] [--snapshot-every K]\n\n\
         Presets: see `minim-lab list`. A spec file is the JSON printed by `show`."
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("minim-lab: {msg}");
    std::process::exit(2);
}

fn sweep_shape(spec: &ScenarioSpec) -> String {
    use minim_sim::SweepAxis;
    match &spec.sweep {
        SweepAxis::JoinCount(v) => format!("N x{}", v.len()),
        SweepAxis::AvgRange(v) => format!("avgR x{}", v.len()),
        SweepAxis::RaiseFactor(v) => format!("raisefactor x{}", v.len()),
        SweepAxis::MaxDisp(v) => format!("maxdisp x{}", v.len()),
        SweepAxis::Rounds(max) => format!("RoundNo 1..={max}"),
        SweepAxis::MixSteps(v) => format!("steps x{}", v.len()),
        SweepAxis::LongFraction(v) => format!("longfrac x{}", v.len()),
        SweepAxis::TargetSinr(v) => format!("targetSINR x{}", v.len()),
        SweepAxis::Single => "single point".into(),
    }
}

fn cmd_list() -> ExitCode {
    println!("{:<22} {:>6} {:<16} summary", "preset", "runs", "sweep");
    for spec in presets::catalog() {
        println!(
            "{:<22} {:>6} {:<16} {}",
            spec.name,
            spec.runs,
            sweep_shape(&spec),
            spec.summary
        );
    }
    println!("\nrun one with: minim-lab run <preset> [--runs K]");
    ExitCode::SUCCESS
}

fn cmd_show(name: &str) -> ExitCode {
    match presets::find(name) {
        Some(spec) => {
            println!("{}", spec.to_json_string());
            ExitCode::SUCCESS
        }
        None => die(&format!(
            "unknown preset {name:?}; `minim-lab list` shows the catalog"
        )),
    }
}

struct RunArgs {
    target: String,
    runs: Option<usize>,
    seed: Option<u64>,
    workers: Option<usize>,
    batched: Option<usize>,
    resident: Option<usize>,
    format: String,
    out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    quiet: bool,
}

fn parse_run_args(argv: &[String]) -> RunArgs {
    let mut args = RunArgs {
        target: String::new(),
        runs: None,
        seed: None,
        workers: None,
        batched: None,
        resident: None,
        format: "table".into(),
        out: None,
        metrics_out: None,
        quiet: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let parse_next = |i: &mut usize, what: &str| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
                .clone()
        };
        match argv[i].as_str() {
            "--runs" => {
                args.runs = Some(
                    parse_next(&mut i, "--runs")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--runs needs a positive integer")),
                )
            }
            "--seed" => {
                args.seed = Some(
                    parse_next(&mut i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| die("--seed needs a non-negative integer")),
                )
            }
            "--workers" => {
                args.workers = Some(
                    parse_next(&mut i, "--workers")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--workers needs a positive integer")),
                )
            }
            "--batched" => {
                args.batched = Some(
                    parse_next(&mut i, "--batched")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--batched needs a positive worker count")),
                )
            }
            "--resident" => {
                args.resident = Some(
                    parse_next(&mut i, "--resident")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--resident needs a positive worker count")),
                )
            }
            "--format" => {
                args.format = parse_next(&mut i, "--format");
                if !matches!(args.format.as_str(), "table" | "json" | "csv" | "all") {
                    die("--format must be table|json|csv|all");
                }
            }
            "--out" => args.out = Some(PathBuf::from(parse_next(&mut i, "--out"))),
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(parse_next(&mut i, "--metrics-out")))
            }
            "--quiet" => args.quiet = true,
            other if args.target.is_empty() && !other.starts_with('-') => {
                args.target = other.to_string();
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if args.target.is_empty() {
        usage();
    }
    args
}

/// Resolves `run`'s target: a preset name first, then a spec file.
fn resolve_spec(target: &str) -> ScenarioSpec {
    if let Some(spec) = presets::find(target) {
        return spec;
    }
    let path = Path::new(target);
    if path.exists() {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
        return ScenarioSpec::from_json_str(&text)
            .unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    }
    die(&format!(
        "{target:?} is neither a preset (see `minim-lab list`) nor a spec file"
    ))
}

fn cmd_run(argv: &[String]) -> ExitCode {
    let args = parse_run_args(argv);
    let spec = resolve_spec(&args.target);
    let mut cfg = spec.default_config();
    if let Some(runs) = args.runs {
        cfg.runs = runs;
    }
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if let Some(workers) = args.workers {
        cfg.workers = workers;
    }
    if let Some(planners) = args.batched {
        cfg.execution = Execution::Batched { workers: planners };
    }
    if let Some(workers) = args.resident {
        cfg.execution = Execution::Resident { workers };
    }
    let scenario = Scenario::new(spec).unwrap_or_else(|e| die(&e.to_string()));
    if !args.quiet {
        eprintln!(
            "minim-lab: {} — {} replicates/point, {} workers, seed {:#x}",
            scenario.spec().name,
            cfg.runs,
            cfg.workers,
            cfg.seed
        );
    }
    // Scope the trace to this sweep: the registry is process-global,
    // so clear whatever startup recorded before the run begins.
    minim_obs::reset();
    let quiet = args.quiet;
    let result = scenario.run_with_progress(&cfg, |p: SweepProgress| {
        if !quiet {
            eprintln!(
                "minim-lab: [{}/{}] x = {} done ({} replicates, {:.1?} elapsed)",
                p.done, p.total, p.x, p.replicates, p.elapsed
            );
        }
    });
    emit(&args, &result)
}

fn emit(args: &RunArgs, result: &SweepResult) -> ExitCode {
    match args.format.as_str() {
        "json" => println!("{}", result.to_json_string()),
        "csv" => print!("{}", result.to_csv()),
        "table" | "all" => {
            let (colors, recodings) = result.tables();
            println!("{}", colors.render());
            println!("{}", recodings.render());
            println!("{}", ascii_plot(&recodings, 64, 16));
            println!(
                "sweep: {} points, {} events, {} replicates/point, {:.1?} wall clock",
                result.points.len(),
                result.total_events,
                result.runs,
                result.wall_clock
            );
            if let Some(h) = &result.shard_health {
                println!(
                    "shards: {} active, widest {}, border fraction {:.3}, {:.0} events/s",
                    h.shards,
                    h.widest_shard,
                    h.border_fraction(),
                    h.events_per_sec
                );
            }
            print!("{}", metrics_summary(result));
            if args.format == "all" {
                println!("{}", result.to_json_string());
                print!("{}", result.to_csv());
            }
        }
        _ => unreachable!("validated in parse_run_args"),
    }
    if let Some(path) = &args.metrics_out {
        let doc = minim_sim::trace::trace_document();
        std::fs::write(path, doc.to_string_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        if !args.quiet {
            eprintln!("minim-lab: wrote trace {}", path.display());
        }
    }
    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
        let json_path = dir.join(format!("{}.json", result.scenario));
        let csv_path = dir.join(format!("{}.csv", result.scenario));
        std::fs::write(&json_path, result.to_json_string())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", json_path.display())));
        std::fs::write(&csv_path, result.to_csv())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", csv_path.display())));
        if !args.quiet {
            eprintln!(
                "minim-lab: wrote {} and {}",
                json_path.display(),
                csv_path.display()
            );
        }
    }
    ExitCode::SUCCESS
}

/// Renders a nanosecond duration with a human unit (ns/µs/ms/s).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// One-screen rendering of the sweep's minim-obs state: the busiest
/// counters, every latency histogram, and the top of the span profile
/// tree (two levels, self/total split).
fn metrics_summary(result: &SweepResult) -> String {
    use std::fmt::Write as _;
    let snap = &result.metrics;
    let mut out = String::new();
    if snap.counters.is_empty() && snap.histograms.is_empty() && snap.spans_recorded == 0 {
        return out;
    }
    let _ = writeln!(
        out,
        "metrics: {} counters, {} gauges, {} histograms, {} spans ({} dropped)",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len(),
        snap.spans_recorded,
        snap.spans_dropped
    );
    let mut counters = snap.counters.clone();
    counters.sort_by_key(|c| std::cmp::Reverse(c.1));
    for (name, v) in counters.iter().take(8) {
        let _ = writeln!(out, "  {name:<28} {v:>12}");
    }
    for h in &snap.histograms {
        let _ = writeln!(
            out,
            "  {:<28} {:>8} obs   mean {:>8}   max {:>8}",
            h.name,
            h.count,
            fmt_ns(h.mean_ns() as u64),
            fmt_ns(h.max_ns)
        );
    }
    let prof = minim_obs::profile();
    if !prof.roots.is_empty() {
        let _ = writeln!(out, "profile:");
        for root in prof.roots.iter().take(6) {
            let _ = writeln!(
                out,
                "  {:<28} total {:>8}   self {:>8}   x{}",
                root.name,
                fmt_ns(root.total_ns),
                fmt_ns(root.self_ns),
                root.count
            );
            for child in root.children.iter().take(6) {
                let _ = writeln!(
                    out,
                    "    {:<26} total {:>8}   self {:>8}   x{}",
                    child.name,
                    fmt_ns(child.total_ns),
                    fmt_ns(child.self_ns),
                    child.count
                );
            }
        }
    }
    out
}

struct ServeReplayArgs {
    dir: PathBuf,
    gen: usize,
    seed: u64,
    strategy: minim_core::StrategyKind,
    snapshot_every: u64,
}

fn parse_serve_replay_args(argv: &[String]) -> ServeReplayArgs {
    use minim_core::StrategyKind;
    let mut args = ServeReplayArgs {
        dir: PathBuf::new(),
        gen: 0,
        seed: 42,
        strategy: StrategyKind::Minim,
        snapshot_every: 64,
    };
    let mut have_dir = false;
    let mut i = 0;
    while i < argv.len() {
        let parse_next = |i: &mut usize, what: &str| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
                .clone()
        };
        match argv[i].as_str() {
            "--gen" => {
                args.gen = parse_next(&mut i, "--gen")
                    .parse()
                    .unwrap_or_else(|_| die("--gen needs a non-negative integer"))
            }
            "--seed" => {
                args.seed = parse_next(&mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs a non-negative integer"))
            }
            "--strategy" => {
                let name = parse_next(&mut i, "--strategy");
                args.strategy = StrategyKind::ALL
                    .into_iter()
                    .find(|k| k.label().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| die("--strategy must be Minim, CP, or BBB"));
            }
            "--snapshot-every" => {
                args.snapshot_every = parse_next(&mut i, "--snapshot-every")
                    .parse()
                    .unwrap_or_else(|_| die("--snapshot-every needs a non-negative integer"))
            }
            other if !have_dir && !other.starts_with('-') => {
                args.dir = PathBuf::from(other);
                have_dir = true;
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if !have_dir {
        usage();
    }
    args
}

fn cmd_serve_replay(argv: &[String]) -> ExitCode {
    use minim_net::workload::ChurnWorkload;
    use minim_serve::{Engine, EngineOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let args = parse_serve_replay_args(argv);
    let opts = EngineOptions {
        strategy: args.strategy,
        snapshot_every: args.snapshot_every,
        ..EngineOptions::default()
    };
    let mut eng = Engine::open_dir(&args.dir, opts)
        .unwrap_or_else(|e| die(&format!("{}: {e}", args.dir.display())));
    let r = *eng.recovery_report();
    println!(
        "serve-replay: recovered {} events (snapshot {} + {} replayed, \
         {} bytes truncated, {} corrupt frames, {} snapshots discarded)",
        r.events_total,
        r.snapshot_seq,
        r.frames_replayed,
        r.bytes_truncated,
        r.corrupt_frames,
        r.snapshots_discarded
    );

    if args.gen > 0 {
        let workload = ChurnWorkload::paper(args.gen, 0.6);
        let mut rng = StdRng::seed_from_u64(args.seed);
        for step in 0..args.gen {
            let event = workload.next_event(eng.net(), &mut rng);
            eng.apply(&event)
                .unwrap_or_else(|e| die(&format!("apply failed at step {step}: {e}")));
        }
        println!("serve-replay: journaled {} fresh events", args.gen);
    }

    println!(
        "serve-replay: state {} nodes, {} events total, strategy {}, digest {:#018x}",
        eng.net().node_count(),
        eng.events_applied(),
        eng.strategy_kind().label(),
        eng.net().state_digest()
    );
    if let Some(reason) = eng.quarantine_reason() {
        die(&format!("engine quarantined: {reason}"));
    }
    eng.close()
        .unwrap_or_else(|e| die(&format!("close failed: {e}")));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => match argv.get(1) {
            Some(name) => cmd_show(name),
            None => usage(),
        },
        Some("run") => cmd_run(&argv[1..]),
        Some("serve-replay") => cmd_serve_replay(&argv[1..]),
        _ => usage(),
    }
}
