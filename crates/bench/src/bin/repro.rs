//! Regenerates every table/figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run --release -p minim-bench --bin repro -- [targets] [--runs K] [--quick] [--plot] [--out DIR]
//!
//! targets: fig10 fig10r fig11 fig12 ablations gossip proto radio mobility hybrid all
//!   fig10   — Fig 10(a–c): joins, sweep N
//!   fig10r  — Fig 10(d–f): joins, sweep average range
//!   fig11   — Fig 11(a–c): power increase, sweep raisefactor
//!   fig12   — Fig 12(a–d): movement, sweep maxdisp and RoundNo
//!   ablations — keep-weight + CP color-pick studies (DESIGN.md §6)
//!   gossip  — §6 future-work gossip compaction study
//! --runs K  — replicates per point (default 100, the paper's protocol)
//! --quick   — 15 replicates and thinner sweeps (smoke mode)
//! --out DIR — CSV output directory (default: results/)
//! ```
//!
//! Prints each figure as an aligned table (mean ± std) and writes one
//! CSV per figure into the output directory.

use minim_sim::experiments::{
    ablation_cp_pick, ablation_keep_weight, fig10_vs_avg_range, fig10_vs_n, fig11_power_increase,
    fig12_vs_maxdisp, fig12_vs_rounds, gossip_study, hybrid_gossip_study, mobility_model_study,
    paper_fig10_avg_ranges, paper_fig10_ns, paper_fig11_factors, paper_fig12_maxdisps,
    ExperimentConfig,
};
use minim_sim::Table;
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    targets: HashSet<String>,
    runs: usize,
    quick: bool,
    plot: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut targets = HashSet::new();
    let mut runs = 100usize;
    let mut quick = false;
    let mut plot = false;
    let mut out = PathBuf::from("results");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--runs" => {
                i += 1;
                runs = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a positive integer"));
            }
            "--quick" => quick = true,
            "--plot" => plot = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(argv.get(i).unwrap_or_else(|| die("--out needs a path")));
            }
            t @ ("fig10" | "fig10r" | "fig11" | "fig12" | "ablations" | "gossip" | "proto"
            | "radio" | "mobility" | "hybrid" | "all") => {
                targets.insert(t.to_string());
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets.insert("all".to_string());
    }
    Args {
        targets,
        runs,
        quick,
        plot,
        out,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn emit(args: &Args, file: &str, table: &Table) {
    println!("{}", table.render());
    if args.plot {
        println!("{}", minim_sim::ascii_plot(table, 64, 16));
    }
    let path = args.out.join(file);
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("repro: failed to write {}: {e}", path.display());
    } else {
        println!("  -> {}\n", path.display());
    }
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).unwrap_or_else(|e| {
        die(&format!("cannot create {}: {e}", args.out.display()));
    });
    let runs = if args.quick { 15 } else { args.runs };
    let cfg = ExperimentConfig {
        runs,
        ..ExperimentConfig::paper()
    };
    let want = |t: &str| args.targets.contains(t) || args.targets.contains("all");
    println!(
        "# minim repro — {} replicates per point, {} workers\n",
        cfg.runs, cfg.workers
    );

    if want("fig10") {
        let t0 = Instant::now();
        let ns = if args.quick {
            vec![40, 80, 120]
        } else {
            paper_fig10_ns()
        };
        let figs = fig10_vs_n(&cfg, &ns);
        emit(&args, "fig10_colors_vs_n.csv", &figs.colors);
        emit(&args, "fig10_recodings_vs_n.csv", &figs.recodings);
        println!("  fig10 done in {:.1?}\n", t0.elapsed());
    }

    if want("fig10r") {
        let t0 = Instant::now();
        let avg = if args.quick {
            vec![10.0, 25.0, 45.0]
        } else {
            paper_fig10_avg_ranges()
        };
        let figs = fig10_vs_avg_range(&cfg, &avg, 100);
        emit(&args, "fig10_colors_vs_avgr.csv", &figs.colors);
        emit(&args, "fig10_recodings_vs_avgr.csv", &figs.recodings);
        println!("  fig10r done in {:.1?}\n", t0.elapsed());
    }

    if want("fig11") {
        let t0 = Instant::now();
        let factors = if args.quick {
            vec![2.0, 4.0, 6.0]
        } else {
            paper_fig11_factors()
        };
        let figs = fig11_power_increase(&cfg, &factors, 100);
        emit(&args, "fig11_dcolors_vs_raisefactor.csv", &figs.dcolors);
        emit(
            &args,
            "fig11_drecodings_vs_raisefactor.csv",
            &figs.drecodings,
        );
        println!("  fig11 done in {:.1?}\n", t0.elapsed());
    }

    if want("fig12") {
        let t0 = Instant::now();
        let disps = if args.quick {
            vec![20.0, 40.0, 70.0]
        } else {
            paper_fig12_maxdisps()
        };
        let figs_a = fig12_vs_maxdisp(&cfg, &disps, 40);
        emit(&args, "fig12_drecodings_vs_maxdisp.csv", &figs_a.drecodings);
        let rounds = if args.quick { 4 } else { 10 };
        let figs_b = fig12_vs_rounds(&cfg, rounds, 40, 40.0);
        emit(&args, "fig12_dcolors_vs_rounds.csv", &figs_b.dcolors);
        emit(&args, "fig12_drecodings_vs_rounds.csv", &figs_b.drecodings);
        println!("  fig12 done in {:.1?}\n", t0.elapsed());
    }

    if want("ablations") {
        let t0 = Instant::now();
        let weights = ablation_keep_weight(&cfg, &[1, 2, 3, 5, 9], 60);
        emit(&args, "ablation_keep_weight.csv", &weights);
        let picks = ablation_cp_pick(&cfg, &[40, 80, 120]);
        emit(&args, "ablation_cp_pick.csv", &picks);
        println!("  ablations done in {:.1?}\n", t0.elapsed());
    }

    if want("gossip") {
        let t0 = Instant::now();
        let t = gossip_study(&cfg, &[0, 2, 5, 10], 60);
        emit(&args, "gossip_compaction.csv", &t);
        println!("  gossip done in {:.1?}\n", t0.elapsed());
    }

    if want("proto") {
        let t0 = Instant::now();
        let t = proto_cost_study(&cfg, &[20, 40, 80, 120]);
        emit(&args, "proto_message_cost.csv", &t);
        println!("  proto done in {:.1?}\n", t0.elapsed());
    }

    if want("mobility") {
        let t0 = Instant::now();
        let t = mobility_model_study(&cfg, 40, 4);
        emit(&args, "mobility_models.csv", &t);
        println!("  mobility done in {:.1?}\n", t0.elapsed());
    }

    if want("hybrid") {
        let t0 = Instant::now();
        let t = hybrid_gossip_study(&cfg, &[1, 5, 20, 50], 60, 150);
        emit(&args, "hybrid_gossip.csv", &t);
        println!("  hybrid done in {:.1?}\n", t0.elapsed());
    }

    if want("radio") {
        let t0 = Instant::now();
        let t = radio_goodput_study(&cfg, &[0, 4, 8, 16, 32]);
        emit(&args, "radio_goodput.csv", &t);
        println!("  radio done in {:.1?}\n", t0.elapsed());
    }

    println!("repro complete.");
}

/// Application-cost study (the §1 motivation made quantitative): a
/// 40-node network under four movement rounds spread over 1000 traffic
/// slots; sweep the transceiver retune window and compare per-strategy
/// packets lost to retune outages. Minim's minimal recoding translates
/// directly into fewer lost packets, linearly in the retune window.
fn radio_goodput_study(cfg: &ExperimentConfig, retune_windows: &[u64]) -> Table {
    use minim_core::StrategyKind;
    use minim_net::event::apply_topology;
    use minim_net::workload::{JoinWorkload, MovementWorkload};
    use minim_net::Network;
    use minim_radio::{run_scenario, spread_events, RadioConfig, TimedEvent};
    use minim_sim::metrics::Stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let labels: Vec<String> = StrategyKind::ALL
        .iter()
        .flat_map(|k| {
            [
                format!("{} outage-lost", k.label()),
                format!("{} goodput %", k.label()),
            ]
        })
        .collect();
    let mut table = Table::new(
        "Radio: packets lost to retune outages vs retune window (N=40, 4 move rounds, 1000 slots)",
        "retune slots",
        labels,
    );
    for (pi, &window) in retune_windows.iter().enumerate() {
        let mut cols = vec![Vec::new(); StrategyKind::ALL.len() * 2];
        for rep in 0..cfg.runs.min(30) {
            let seed = minim_geom::sample::child_seed(cfg.seed, ((pi as u64) << 32) | rep as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let join_events = JoinWorkload::paper(40).generate(&mut rng);

            // Identical movement schedule for every strategy.
            let mut ghost = Network::new(30.5);
            for e in &join_events {
                apply_topology(&mut ghost, e);
            }
            let mut schedule: Vec<TimedEvent> = Vec::new();
            for round in 0..4u64 {
                let moves = MovementWorkload::paper(40.0, 1).generate_round(&ghost, &mut rng);
                for e in &moves {
                    apply_topology(&mut ghost, e);
                }
                schedule.extend(spread_events(moves, (round + 1) * 250, round * 250));
            }

            for (si, kind) in StrategyKind::ALL.iter().enumerate() {
                let mut net = Network::new(30.5);
                let mut s = kind.build();
                for e in &join_events {
                    s.apply(&mut net, e);
                }
                let mut traffic_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
                let stats = run_scenario(
                    &mut *s,
                    &mut net,
                    &schedule,
                    1000,
                    RadioConfig {
                        retune_slots: window,
                        traffic_prob: 0.5,
                        ..RadioConfig::default()
                    },
                    &mut traffic_rng,
                );
                cols[si * 2].push(stats.lost_to_outages() as f64);
                cols[si * 2 + 1].push(stats.goodput() * 100.0);
            }
        }
        table.push_row(
            window as f64,
            cols.iter().map(|s| Stats::from_samples(s)).collect(),
        );
    }
    table
}

/// Distributed cost study: mean messages and rounds per join for the
/// message-passing realizations of Minim and CP, as the network grows.
/// Validates the paper's "communication only local to the event" claim
/// — per-join costs plateau at the neighborhood size instead of
/// growing with `N`.
fn proto_cost_study(cfg: &ExperimentConfig, ns: &[usize]) -> Table {
    use minim_net::event::Event;
    use minim_net::workload::JoinWorkload;
    use minim_net::Network;
    use minim_proto::{distributed_cp_join, distributed_minim_join};
    use minim_sim::metrics::Stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Note: in the fixed 100x100 arena the average degree grows with N,
    // and per-join messages track the joiner's *degree* (Minim ≈ one
    // query + one report per neighbor plus recolors; CP adds 2-hop
    // announcements) while rounds stay O(1) — this, not a flat count,
    // is the locality claim. The integration tests pin the
    // size-independence by holding the neighborhood fixed as N grows.
    let mut table = Table::new(
        "Distributed cost per join: messages track degree, rounds stay O(1)",
        "N",
        vec![
            "Minim msgs/join".into(),
            "Minim rounds/join".into(),
            "CP msgs/join".into(),
            "CP rounds/join".into(),
        ],
    );
    for (pi, &n) in ns.iter().enumerate() {
        let mut cols = vec![Vec::new(); 4];
        for rep in 0..cfg.runs.min(25) {
            let seed = minim_geom::sample::child_seed(cfg.seed, ((pi as u64) << 32) | rep as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let events = JoinWorkload::paper(n).generate(&mut rng);

            let mut net = Network::new(30.5);
            let (mut msgs, mut rounds) = (0usize, 0usize);
            for e in &events {
                let Event::Join { cfg } = e else {
                    unreachable!()
                };
                let id = net.next_id();
                let (_, m) = distributed_minim_join(&mut net, id, *cfg);
                msgs += m.messages;
                rounds += m.rounds;
            }
            cols[0].push(msgs as f64 / n as f64);
            cols[1].push(rounds as f64 / n as f64);

            let mut net = Network::new(30.5);
            let (mut msgs, mut rounds) = (0usize, 0usize);
            for e in &events {
                let Event::Join { cfg } = e else {
                    unreachable!()
                };
                let id = net.next_id();
                let (_, m) = distributed_cp_join(&mut net, id, *cfg);
                msgs += m.messages;
                rounds += m.rounds;
            }
            cols[2].push(msgs as f64 / n as f64);
            cols[3].push(rounds as f64 / n as f64);
        }
        table.push_row(
            n as f64,
            cols.iter().map(|s| Stats::from_samples(s)).collect(),
        );
    }
    table
}
