//! The named scenario catalog: the paper's Fig 10–12 sweeps as
//! [`ScenarioSpec`] presets, plus the extension regimes related work
//! points at (clustered deployments, heterogeneous ranges, interleaved
//! churn, corridors with obstacles).
//!
//! `minim-lab list` prints this catalog; `minim-lab run <name>` runs
//! an entry; the figure wrappers in [`crate::experiments`] are thin
//! adapters over the `fig*` entries. Every preset is an ordinary
//! spec — `minim-lab show <name>` dumps its JSON, which doubles as a
//! spec-file template.

use crate::experiments::{
    paper_fig10_avg_ranges, paper_fig10_ns, paper_fig11_factors, paper_fig12_maxdisps,
};
use crate::scenario::{Measure, PhaseSpec, ScenarioSpec, SweepAxis, TopologyFamily};
use minim_core::StrategyKind;
use minim_geom::Rect;
use minim_net::workload::RangeDist;

/// Fig 10(a–c): `n` nodes join consecutively; sweep `N`.
pub fn fig10_vs_n(ns: Vec<usize>) -> ScenarioSpec {
    ScenarioSpec::new("fig10-vs-n")
        .summary("Fig 10(a-c): consecutive joins, sweep N")
        .measured_phase(PhaseSpec::Join { count: 0 })
        .sweep(SweepAxis::JoinCount(ns))
}

/// Fig 10(d–f): `n` joins; sweep the average transmission range.
pub fn fig10_vs_avg_range(avg_rs: Vec<f64>, n: usize) -> ScenarioSpec {
    ScenarioSpec::new("fig10-vs-avg-range")
        .summary("Fig 10(d-f): joins at N=100, sweep average range (width-5 interval)")
        .measured_phase(PhaseSpec::Join { count: n })
        .sweep(SweepAxis::AvgRange(avg_rs))
}

/// Fig 11(a–c): power raises on half the nodes after an `n`-join base;
/// sweep `raisefactor`.
pub fn fig11_power_increase(factors: Vec<f64>, n: usize) -> ScenarioSpec {
    ScenarioSpec::new("fig11-power-increase")
        .summary("Fig 11(a-c): power raise on half the nodes after N=100 joins, sweep raisefactor")
        .base_phase(PhaseSpec::Join { count: n })
        .measured_phase(PhaseSpec::PowerRaise {
            fraction: 0.5,
            factor: 1.0,
        })
        .measure(Measure::DeltaFromBase)
        .sweep(SweepAxis::RaiseFactor(factors))
}

/// Fig 12(a): one movement round after an `n`-join base; sweep
/// `maxdisp`.
pub fn fig12_vs_maxdisp(maxdisps: Vec<f64>, n: usize) -> ScenarioSpec {
    ScenarioSpec::new("fig12-vs-maxdisp")
        .summary("Fig 12(a): one movement round after N=40 joins, sweep maxdisp")
        .base_phase(PhaseSpec::Join { count: n })
        .measured_phase(PhaseSpec::Movement {
            rounds: 1,
            maxdisp: 40.0,
        })
        .measure(Measure::DeltaFromBase)
        .sweep(SweepAxis::MaxDisp(maxdisps))
}

/// Fig 12(b–d): cumulative movement rounds after an `n`-join base;
/// report after every round up to `max_rounds`.
pub fn fig12_vs_rounds(max_rounds: usize, n: usize, maxdisp: f64) -> ScenarioSpec {
    ScenarioSpec::new("fig12-vs-rounds")
        .summary("Fig 12(b-d): movement rounds at maxdisp=40 after N=40 joins, sweep RoundNo")
        .base_phase(PhaseSpec::Join { count: n })
        .measured_phase(PhaseSpec::Movement {
            rounds: max_rounds,
            maxdisp,
        })
        .measure(Measure::DeltaFromBase)
        .sweep(SweepAxis::Rounds(max_rounds))
}

/// Clustered (hot-spot) deployment: joins scatter gaussianly around
/// random cluster centers instead of uniformly — the Poisson-clustered
/// regime of discrete-power-control studies. Sweep `N`.
pub fn clustered_joins() -> ScenarioSpec {
    ScenarioSpec::new("clustered-joins")
        .summary("joins into 6 gaussian clusters (hot spots), sweep N")
        .topology(TopologyFamily::Clustered {
            clusters: 6,
            spread: 6.0,
        })
        .measured_phase(PhaseSpec::Join { count: 0 })
        .sweep(SweepAxis::JoinCount(vec![40, 60, 80, 100, 120]))
}

/// Heterogeneous range population: a short-range majority plus a
/// long-range relay minority. Sweep the relay fraction.
pub fn hetero_ranges() -> ScenarioSpec {
    ScenarioSpec::new("hetero-ranges")
        .summary("short-range majority + long-range relays, sweep the relay fraction")
        .ranges(RangeDist::Heterogeneous {
            short: (10.0, 15.0),
            long: (30.0, 40.0),
            long_fraction: 0.2,
        })
        .measured_phase(PhaseSpec::Join { count: 100 })
        .sweep(SweepAxis::LongFraction(vec![0.0, 0.1, 0.2, 0.4, 0.6, 0.8]))
}

/// Interleaved churn on a clustered deployment: after a clustered join
/// base, every step is a join, a departure, or a single-node move.
/// Sweep the churn length.
pub fn clustered_churn() -> ScenarioSpec {
    ScenarioSpec::new("clustered-churn")
        .summary("interleaved join/leave/move churn on a clustered base, sweep churn steps")
        .topology(TopologyFamily::Clustered {
            clusters: 5,
            spread: 6.0,
        })
        .base_phase(PhaseSpec::Join { count: 60 })
        .measured_phase(PhaseSpec::Mix {
            steps: 0,
            join_prob: 0.3,
            leave_prob: 0.3,
            maxdisp: 20.0,
        })
        .measure(Measure::DeltaFromBase)
        .sweep(SweepAxis::MixSteps(vec![40, 80, 120, 160]))
}

/// Joins into a corridor cut by opaque walls with random doors: walls
/// sever line-of-sight links, so conflicts concentrate at the doors.
/// Sweep `N`.
pub fn corridor_joins() -> ScenarioSpec {
    ScenarioSpec::new("corridor-joins")
        .summary("joins into a corridor with 3 walls and random doors, sweep N")
        .topology(TopologyFamily::Corridor {
            walls: 3,
            door: 8.0,
        })
        .measured_phase(PhaseSpec::Join { count: 0 })
        .sweep(SweepAxis::JoinCount(vec![40, 60, 80, 100]))
}

/// The large-N regime: a metropolis-scale arena (40× the paper's side
/// length) dotted with dense, well-separated Poisson-clustered hot
/// spots, joins in the thousands, then a **sustained-churn phase**
/// (interleaved joins, leaves, and moves on the standing population).
/// This is the workload the dense-slab storage and the sharded
/// executors exist for — run it with `Execution::Batched { workers }`
/// (`minim-lab run metropolis --batched 8`) for per-slice sharding, or
/// `Execution::Resident { workers }` (`--resident 8`) to keep
/// persistent spatial-ownership shards alive across the churn, both
/// bit-identical to sequential execution. The churn phase is what
/// actually exercises the resident executor's steady state: slice
/// after slice against standing shard subnetworks, with the lab
/// reporting shard health (`shards`, `widest`, border fraction,
/// events/sec) from the run.
///
/// BBB is excluded: recoloring the entire network at every one of
/// thousands of events is O(N²·deg) per replicate and adds nothing to
/// the large-N comparison the distributed strategies are studied for.
pub fn metropolis() -> ScenarioSpec {
    ScenarioSpec::new("metropolis")
        .summary("large-N metropolis: clustered joins in the thousands plus sustained churn")
        .arena(Rect::new(0.0, 0.0, 4000.0, 4000.0))
        .topology(TopologyFamily::Clustered {
            clusters: 40,
            spread: 25.0,
        })
        .strategies(vec![StrategyKind::Minim, StrategyKind::Cp])
        .measured_phase(PhaseSpec::Join { count: 0 })
        .measured_phase(PhaseSpec::Mix {
            steps: 400,
            join_prob: 0.3,
            leave_prob: 0.3,
            maxdisp: 60.0,
        })
        .sweep(SweepAxis::JoinCount(vec![1000, 2000, 4000]))
        .runs(3)
}

/// The lighthouse micro-regime: an (almost entirely) short-range
/// population with a ~0.1% long-range minority — in expectation one
/// "lighthouse" per thousand joins. This is the worst case for a flat
/// (watermark-bounded) reverse-reach index: a single long-range node
/// used to inflate every later join's in-neighbor scan to the
/// lighthouse's radius; the range-stratified index keeps the short
/// tier's scans short. `crates/bench`'s `events` bench runs the same
/// shape flat-vs-stratified and records the win in
/// `BENCH_events.json`.
pub fn lighthouse() -> ScenarioSpec {
    ScenarioSpec::new("lighthouse")
        .summary("one max-range lighthouse among thousands of short-range joins, sweep N")
        .arena(Rect::new(0.0, 0.0, 4000.0, 4000.0))
        .ranges(RangeDist::Heterogeneous {
            short: (15.0, 25.0),
            long: (1500.0, 2000.0),
            long_fraction: 0.001,
        })
        .strategies(vec![StrategyKind::Minim, StrategyKind::Cp])
        .measured_phase(PhaseSpec::Join { count: 0 })
        .sweep(SweepAxis::JoinCount(vec![1000, 2000, 4000]))
        .runs(3)
}

/// The near-far regime: a handful of dense hot spots whose members
/// drive a closed power-control loop (`minim-power`). The loop pushes
/// cluster cores to high power against mutual interference and the
/// converged equilibrium comes back as *endogenous* set-range events
/// — the paper's §5.2 power raises, now caused by physics instead of
/// a distribution. Sweeping the target SINR sweeps how hard the
/// near-far problem bites: higher targets inflate ranges (new
/// conflict edges to recode) until cores saturate at the power cap.
pub fn near_far() -> ScenarioSpec {
    ScenarioSpec::new("near-far")
        .summary("closed-loop power control over dense hot spots, sweep the target SINR")
        .topology(TopologyFamily::Clustered {
            clusters: 3,
            spread: 4.0,
        })
        .base_phase(PhaseSpec::Join { count: 80 })
        .measured_phase(PhaseSpec::PowerControl {
            target_sinr: 4.0,
            ladder: 0,
            drop_infeasible: false,
            sink_every: 8,
        })
        .measure(Measure::DeltaFromBase)
        .sweep(SweepAxis::TargetSinr(vec![1.0, 2.0, 4.0, 8.0, 16.0]))
}

/// Closed-loop power control under sustained churn: after a clustered
/// base joins, every step is a join, a departure, or a single-node
/// move — and the continuous Foschini–Miljanic loop stays *closed*
/// throughout. An incremental `PowerSession` patches its SINR field
/// per event and re-settles from the warm equilibrium every few steps,
/// so the event stream interleaves exogenous churn with the endogenous
/// set-range corrections the loop emits while tracking its moving
/// fixed point. Sweeping the target SINR sweeps how far each settle's
/// corrections ripple.
pub fn churn_power() -> ScenarioSpec {
    ScenarioSpec::new("churn-power")
        .summary("closed-loop power control tracking join/leave/move churn, sweep the target SINR")
        .topology(TopologyFamily::Clustered {
            clusters: 3,
            spread: 5.0,
        })
        .base_phase(PhaseSpec::Join { count: 80 })
        .measured_phase(PhaseSpec::PowerChurn {
            steps: 120,
            join_prob: 0.3,
            leave_prob: 0.3,
            maxdisp: 20.0,
            target_sinr: 4.0,
            slice: 8,
            workers: 2,
        })
        .measure(Measure::DeltaFromBase)
        .sweep(SweepAxis::TargetSinr(vec![2.0, 4.0, 8.0]))
}

/// Interference-coupled clusters on a discrete power ladder: tight
/// clusters join, then the quantized (12-rung) power loop runs with
/// admission control — power-capped nodes are *dropped* (leave
/// events), the duty-cycling regime of discrete power-control
/// studies. Sweeping `N` scales the interference coupling; every
/// strategy sees the same join + set-range + leave stream.
pub fn interference_clusters() -> ScenarioSpec {
    ScenarioSpec::new("interference-clusters")
        .summary("discrete-ladder power control with admission drops over tight clusters, sweep N")
        .topology(TopologyFamily::Clustered {
            clusters: 8,
            spread: 3.0,
        })
        .measured_phase(PhaseSpec::Join { count: 0 })
        .measured_phase(PhaseSpec::PowerControl {
            target_sinr: 6.0,
            ladder: 12,
            drop_infeasible: true,
            sink_every: 10,
        })
        .sweep(SweepAxis::JoinCount(vec![40, 80, 120, 160]))
}

/// Every named preset, with the paper's default sweep values.
pub fn catalog() -> Vec<ScenarioSpec> {
    vec![
        fig10_vs_n(paper_fig10_ns()),
        fig10_vs_avg_range(paper_fig10_avg_ranges(), 100),
        fig11_power_increase(paper_fig11_factors(), 100),
        fig12_vs_maxdisp(paper_fig12_maxdisps(), 40),
        fig12_vs_rounds(10, 40, 40.0),
        clustered_joins(),
        hetero_ranges(),
        clustered_churn(),
        corridor_joins(),
        metropolis(),
        lighthouse(),
        near_far(),
        churn_power(),
        interference_clusters(),
    ]
}

/// Looks up a preset by name.
pub fn find(name: &str) -> Option<ScenarioSpec> {
    catalog().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn every_preset_validates() {
        let specs = catalog();
        assert!(specs.len() >= 9);
        for spec in specs {
            let name = spec.name.clone();
            assert!(!spec.summary.is_empty(), "{name} needs a summary");
            Scenario::new(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn preset_names_are_unique_and_findable() {
        let specs = catalog();
        for spec in &specs {
            assert_eq!(find(&spec.name).as_ref().map(|s| &s.name), Some(&spec.name));
        }
        let mut names: Vec<_> = specs.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate preset names");
        assert!(find("no-such-preset").is_none());
    }

    #[test]
    fn every_preset_roundtrips_through_json() {
        for spec in catalog() {
            let parsed = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
            assert_eq!(spec, parsed);
        }
    }

    /// The catalog rows make physical claims; pin them against the
    /// loop itself. `near-far` must cross the feasibility wall inside
    /// its sweep (low targets feasible, the top target power-capped)
    /// and `interference-clusters` must actually duty-cycle (emit
    /// leave events) at its largest N.
    #[test]
    fn power_presets_cross_the_feasibility_wall() {
        use minim_geom::{sample, Point};
        use minim_net::workload::Placement;
        use minim_net::{Network, NodeConfig};
        use minim_power::{Feasibility, PowerLadder, PowerLoop, PowerLoopConfig, ReceiverPolicy};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Rebuild each preset's deployment the way a replicate does.
        let deploy = |spec: &ScenarioSpec, n: usize, seed: u64| -> Network {
            let mut rng = StdRng::seed_from_u64(seed);
            let TopologyFamily::Clustered { clusters, spread } = spec.topology else {
                panic!("power presets are clustered");
            };
            let centers: Vec<Point> = (0..clusters)
                .map(|_| sample::uniform_point(&mut rng, &spec.arena))
                .collect();
            let placement = Placement::Clustered {
                centers,
                spread,
                arena: spec.arena,
            };
            let mut net = Network::new(spec.ranges.upper_bound().max(1.0));
            for _ in 0..n {
                net.join(NodeConfig::new(
                    placement.sample(&mut rng),
                    spec.ranges.sample(&mut rng),
                ));
            }
            net
        };
        let loop_for = |spec: &ScenarioSpec, phase_target: f64| -> PowerLoop {
            let [PhaseSpec::PowerControl {
                ladder,
                drop_infeasible,
                sink_every,
                ..
            }] = spec.measured[spec.measured.len() - 1..]
            else {
                panic!("last measured phase must be power control");
            };
            let mut cfg = PowerLoopConfig::for_range_scale(spec.ranges.upper_bound().max(1.0));
            cfg.target_sinr = phase_target;
            cfg.ladder = if ladder == 0 {
                PowerLadder::Continuous
            } else {
                PowerLadder::Geometric { levels: ladder }
            };
            cfg.drop_infeasible = drop_infeasible;
            cfg.receivers = ReceiverPolicy::Sinks { every: sink_every };
            PowerLoop::new(cfg)
        };

        let nf = near_far();
        let SweepAxis::TargetSinr(ref targets) = nf.sweep else {
            panic!("near-far sweeps the target SINR");
        };
        let net = deploy(&nf, 80, 7);
        let low = loop_for(&nf, targets[0]).run(&net, &[]);
        assert!(
            low.report.feasibility.is_feasible(),
            "lowest target must converge: {:?}",
            low.report.feasibility
        );
        let high = loop_for(&nf, *targets.last().unwrap()).run(&net, &[]);
        assert!(
            matches!(high.report.feasibility, Feasibility::PowerCapped { .. }),
            "top target must overload the hot spots: {:?}",
            high.report.feasibility
        );

        let ic = interference_clusters();
        let SweepAxis::JoinCount(ref ns) = ic.sweep else {
            panic!("interference-clusters sweeps N");
        };
        let net = deploy(&ic, *ns.last().unwrap(), 7);
        let out = loop_for(&ic, 6.0).run(&net, &[]);
        assert!(
            !out.report.infeasible.is_empty(),
            "largest N must duty-cycle some nodes"
        );
        assert!(
            out.events
                .iter()
                .any(|e| matches!(e, minim_net::event::Event::Leave { .. })),
            "drop_infeasible must surface as leave events"
        );
    }
}
