//! Scenario runners: apply generated event sequences to a strategy and
//! accumulate the paper's two metrics.
//!
//! The event loop is **delta-driven**: every applied event yields a
//! [`minim_net::TopologyDelta`] (routed up from the `Network` mutators
//! through [`RecodingStrategy::apply_delta`]), and per-event
//! consistency checking — [`ValidationMode::Delta`] — runs
//! `conflict::validate_delta` on just the delta's affected
//! neighborhood, `O(Δ)` per event. [`ValidationMode::Full`] re-checks
//! the whole conflict graph after every event (`O(E)`), and exists as
//! the control arm: the `delta` bench in `crates/bench` measures the
//! two against each other on the Fig 10 join sweep.

use crate::par::parallel_map;
use minim_core::{commit_plan, BatchLocality, RecodeOutcome, RecodingStrategy};
use minim_geom::Point;
use minim_graph::conflict;
use minim_net::event::{apply_topology, apply_topology_delta, Event};
use minim_net::workload::MovementWorkload;
use minim_net::{BatchPlan, BatchScratch, Disposition, Network, NodeConfig, ShardMap, SliceRoute};
use rand::Rng;
use std::sync::Mutex;

/// Accumulated §5 metrics for one phase of a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseMetrics {
    /// Total recodings performed during the phase.
    pub recodings: usize,
    /// Maximum color index assigned at phase end.
    pub max_color: u32,
    /// Total digraph edge insertions + removals over the phase — the
    /// summed per-event `Δ`, read off the topology deltas.
    pub edge_churn: usize,
    /// Partition-quality counters when the phase ran on the resident
    /// executor; `None` on every other path. Excluded from `==` (like
    /// the lab's wall-clock fields) so resident and sequential runs of
    /// the same stream compare metric-identical.
    pub shard_health: Option<ShardHealth>,
}

impl PartialEq for PhaseMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.recodings == other.recodings
            && self.max_color == other.max_color
            && self.edge_churn == other.edge_churn
    }
}

/// Partition-quality counters of one resident run ([`Execution::
/// Resident`]): how many ownership shards are live, how big the
/// largest resident subnetwork is, and how much of the stream had to
/// serialize through the border pass. Everything except the
/// throughput is derived from routing and topology alone — never from
/// thread scheduling — so the counters are **workers-invariant**
/// (pinned by `tests/resident_equivalence.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardHealth {
    /// Shards owning at least one grid cell.
    pub shards: u32,
    /// Node count of the largest resident subnetwork at phase end.
    pub widest_shard: u32,
    /// Events that crossed a shard frontier (ran serialized).
    pub border_events: usize,
    /// Total events executed on the resident path.
    pub events: usize,
    /// Resident-path throughput (0 when unmeasurably fast). Excluded
    /// from `==` — timing is machine noise, not partition quality.
    pub events_per_sec: f64,
}

impl ShardHealth {
    /// Fraction of the stream serialized through the border pass —
    /// the resident executor's parallelism ceiling.
    pub fn border_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.border_events as f64 / self.events as f64
        }
    }

    /// Folds another run's counters into this one (counters sum,
    /// structure maxes, throughput duration-weight-averages) — how the
    /// lab accumulates health across the rounds of a phase.
    ///
    /// The merged rate is total events over total wall-clock, with
    /// each side's wall-clock recovered as `events / events_per_sec`.
    /// Weighting the *rates* by event counts instead would skew
    /// whenever rounds run unequal wall-clock: a fast burst with many
    /// events would outvote a slow round that dominated real time.
    /// Sides with an unmeasurable rate (`events_per_sec == 0`)
    /// contribute no time and no events to the quotient.
    pub fn absorb(&mut self, other: &ShardHealth) {
        let mut timed_events = 0.0f64;
        let mut secs = 0.0f64;
        for h in [&*self, other] {
            if h.events_per_sec > 0.0 && h.events > 0 {
                timed_events += h.events as f64;
                secs += h.events as f64 / h.events_per_sec;
            }
        }
        self.events_per_sec = if secs > 0.0 { timed_events / secs } else { 0.0 };
        self.shards = self.shards.max(other.shards);
        self.widest_shard = self.widest_shard.max(other.widest_shard);
        self.border_events += other.border_events;
        self.events += other.events;
    }
}

impl PartialEq for ShardHealth {
    fn eq(&self, other: &Self) -> bool {
        self.shards == other.shards
            && self.widest_shard == other.widest_shard
            && self.border_events == other.border_events
            && self.events == other.events
    }
}

/// How (and whether) the event loop checks CA1/CA2 after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// No per-event checking (the strategies' own debug assertions
    /// still run in debug builds).
    #[default]
    Off,
    /// `O(Δ)` per event: `conflict::validate_delta` over the event's
    /// touched nodes plus everything the strategy recoded.
    Delta,
    /// `O(E)` per event: full `conflict::validate` over the whole
    /// graph — the control arm the paper's locality claim beats.
    Full,
}

/// Applies `events` in order with `strategy`, returning the phase
/// metrics. Panics (via the strategies' debug assertions) if any event
/// leaves the network invalid.
pub fn run_events(
    strategy: &mut dyn RecodingStrategy,
    net: &mut Network,
    events: &[Event],
) -> PhaseMetrics {
    run_events_validated(strategy, net, events, ValidationMode::Off)
}

/// [`run_events`] with per-event CA1/CA2 checking in the chosen
/// [`ValidationMode`].
///
/// # Panics
/// Panics on the first event whose aftermath violates CA1/CA2.
pub fn run_events_validated(
    strategy: &mut dyn RecodingStrategy,
    net: &mut Network,
    events: &[Event],
    mode: ValidationMode,
) -> PhaseMetrics {
    let mut recodings = 0;
    let mut edge_churn = 0;
    for e in events {
        let (_, effect) = strategy.apply_delta(net, e);
        recodings += effect.outcome.recodings();
        edge_churn += effect.delta.edge_churn();
        match mode {
            ValidationMode::Off => {}
            ValidationMode::Delta => {
                minim_obs::counter!("sim.validate.delta", 1);
                let seeds = minim_core::validation_seeds(&effect.delta, &effect.outcome);
                if let Err(v) = conflict::validate_delta(net.graph(), net.assignment(), &seeds) {
                    panic!("event {e:?} left a CA1/CA2 violation: {v}");
                }
            }
            ValidationMode::Full => {
                minim_obs::counter!("sim.validate.full", 1);
                if let Err(v) = net.validate() {
                    panic!("event {e:?} left a CA1/CA2 violation: {v}");
                }
            }
        }
    }
    PhaseMetrics {
        recodings,
        max_color: net.max_color_index(),
        edge_churn,
        shard_health: None,
    }
}

/// How a scenario executes its per-replicate event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// One event at a time, in order — [`run_events`].
    #[default]
    Sequential,
    /// Conflict-free waves with concurrent recode planning —
    /// [`run_events_batched`] with the given worker count. Pinned
    /// bit-identical to [`Execution::Sequential`]; worthwhile for
    /// large-N single scenarios (the `metropolis` preset), where one
    /// replicate is itself the bottleneck.
    Batched {
        /// Planning worker threads per replicate.
        workers: usize,
    },
    /// Persistent spatial-ownership shards — a [`ResidentExecutor`]
    /// kept alive across slices, so steady-state churn routes events
    /// to long-lived resident subnetworks in `O(events)` instead of
    /// re-planning and re-extracting `O(N)` state per slice. Pinned
    /// bit-identical to [`Execution::Sequential`]
    /// (`tests/resident_equivalence.rs`).
    Resident {
        /// Wave worker threads per replicate.
        workers: usize,
    },
}

/// What one shard's isolated execution reports back for the merge.
struct ShardRun {
    /// The shard's subnetwork after all of its events ran.
    sub: Network,
    /// Recodings performed across the shard's events.
    recodings: usize,
    /// Summed per-event edge churn.
    edge_churn: usize,
}

/// Executes one shard's events end-to-end on its private subnetwork:
/// topology (with pinned join ids), recode planning through the same
/// `plan_batched` path the sequential handlers use, commit, and
/// optional delta validation.
fn run_shard(
    strategy: &(dyn RecodingStrategy + Sync),
    mut sub: Network,
    events: &[Event],
    shard: &[usize],
    plan: &BatchPlan,
    mode: ValidationMode,
) -> ShardRun {
    let mut recodings = 0usize;
    let mut edge_churn = 0usize;
    for &i in shard {
        let (applied, delta) = apply_topology_delta(&mut sub, &events[i], plan.join_id(i));
        let color_plan = strategy.plan_batched(&sub, &applied, &delta);
        let outcome = commit_plan(&mut sub, &color_plan);
        recodings += outcome.recodings();
        edge_churn += delta.edge_churn();
        if mode == ValidationMode::Delta {
            let seeds = minim_core::validation_seeds(&delta, &outcome);
            if let Err(v) = conflict::validate_delta(sub.graph(), sub.assignment(), &seeds) {
                panic!("event {applied:?} left a CA1/CA2 violation: {v}");
            }
        }
    }
    ShardRun {
        sub,
        recodings,
        edge_churn,
    }
}

/// [`run_events`] with intra-scenario parallelism — the sharded batch
/// executor. [`BatchPlan`] partitions `events` into spatially
/// independent shards; each shard then executes **end-to-end**
/// (topology, recode planning, commit, validation) on a private
/// subnetwork holding exactly the nodes inside the shard's claimed
/// region, with all shards running concurrently on `workers` threads.
/// Afterwards the main network is brought up to date: the event
/// topology is replayed in original order (cheap — `O(Δ)` per event)
/// and each shard's final colors are copied back (shards write
/// disjoint node sets, so the merge order is immaterial).
///
/// **Bit-identical to [`run_events_validated`]** for every strategy:
/// the shard partition is conservative (everything a shard's events
/// read or write lies inside its claimed region, and distinct shards'
/// regions are disjoint), events keep their relative order within a
/// shard, join ids are pre-assigned in sequential order, and the
/// batchable strategies' sequential handlers run through the same
/// `plan_batched` + `commit_plan` decomposition the shards use.
/// Strategies that declare [`BatchLocality::Global`] (BBB,
/// instrumentation wrappers), [`ValidationMode::Full`] runs, worker
/// counts ≤ 1, and single-shard plans (spatially inseparable batches,
/// e.g. global movement rounds) all fall back to the sequential path —
/// correctness never depends on the caller picking the right mode.
///
/// # Panics
/// Panics on the first event whose aftermath violates CA1/CA2 (when
/// validating), like the sequential runner.
pub fn run_events_batched(
    strategy: &mut (dyn RecodingStrategy + Sync),
    net: &mut Network,
    events: &[Event],
    mode: ValidationMode,
    workers: usize,
) -> PhaseMetrics {
    run_events_batched_with(
        strategy,
        net,
        events,
        mode,
        workers,
        &mut BatchScratch::default(),
    )
}

/// [`run_events_batched`] with caller-held planning buffers: repeated
/// slices recycle the union-find, shard vectors, and claim maps
/// through `scratch` instead of reallocating them per slice (the
/// legacy-path half of the allocation discipline;
/// `tests/alloc_smoke.rs` pins the planner side). The `events` bench's
/// `resident-vs-replan` arm runs the replan arm through this so the
/// comparison isolates the *architecture* (persistent shards vs
/// per-slice replanning), not allocator noise.
pub fn run_events_batched_with(
    strategy: &mut (dyn RecodingStrategy + Sync),
    net: &mut Network,
    events: &[Event],
    mode: ValidationMode,
    workers: usize,
    scratch: &mut BatchScratch,
) -> PhaseMetrics {
    if workers <= 1
        || events.len() <= 1
        || strategy.batch_locality() == BatchLocality::Global
        || mode == ValidationMode::Full
    {
        return run_events_validated(strategy, net, events, mode);
    }
    // Phase timings land on minim-obs spans (`batch.plan` /
    // `batch.extract` / `batch.shards` / `batch.merge`) — run the lab
    // with `--metrics-out` to see the profile tree.
    let plan = {
        let _span = minim_obs::span!("batch.plan");
        BatchPlan::new_with(scratch, net, events)
    };
    if plan.shard_count() <= 1 {
        plan.recycle(scratch);
        return run_events_validated(strategy, net, events, mode);
    }
    let strategy: &(dyn RecodingStrategy + Sync) = strategy;

    // Populate each shard's subnetwork with the present nodes inside
    // its claimed region (configuration + color). Everything a shard
    // reads or writes lives there; nodes outside every claim are
    // untouched by the whole batch.
    // `fresh_like` preserves the cell hint, the flat/stratified index
    // mode, and the obstacle set, so shards execute with the same
    // index behavior as the parent network.
    let extract_span = minim_obs::span!("batch.extract");
    let mut subs: Vec<Network> = (0..plan.shard_count()).map(|_| net.fresh_like()).collect();
    for id in net.iter_nodes().collect::<Vec<_>>() {
        let cfg = net.config(id).expect("listed node has a config");
        if let Some(s) = plan.shard_of_point(&cfg.pos) {
            subs[s].insert_node(id, cfg);
            if let Some(c) = net.assignment().get(id) {
                subs[s].set_color(id, c);
            }
        }
    }

    // Run every shard concurrently. Each job takes ownership of its
    // subnetwork; the shared state (strategy, events, plan) is
    // read-only.
    let jobs: Vec<(usize, Mutex<Option<Network>>)> = subs
        .drain(..)
        .map(|sub| Mutex::new(Some(sub)))
        .enumerate()
        .collect();
    drop(extract_span);
    let results = {
        let _span = minim_obs::span!("batch.shards");
        parallel_map(&jobs, workers, |(s, slot)| {
            let sub = slot
                .lock()
                .expect("subnet slot poisoned")
                .take()
                .expect("each shard job runs exactly once");
            run_shard(strategy, sub, events, &plan.shards()[*s], &plan, mode)
        })
    };

    // Merge: replay the topology on the main network in original event
    // order (identical deltas — each shard's subgraph is faithful),
    // then copy back each shard's colors. Shards write disjoint node
    // sets; unrecoded nodes are rewritten with their existing color.
    let merge_span = minim_obs::span!("batch.merge");
    for (i, e) in events.iter().enumerate() {
        apply_topology_delta(net, e, plan.join_id(i));
    }
    let mut recodings = 0usize;
    let mut edge_churn = 0usize;
    for r in &results {
        recodings += r.recodings;
        edge_churn += r.edge_churn;
        for (n, c) in r.sub.assignment().iter() {
            net.assignment_mut().set(n, c);
        }
    }
    drop(merge_span);
    plan.recycle(scratch);
    PhaseMetrics {
        recodings,
        max_color: net.max_color_index(),
        edge_churn,
        shard_health: None,
    }
}

/// Default resident shard count. Deliberately a constant rather than
/// the worker count: routing, annexation, and every [`ShardHealth`]
/// counter depend only on the shard set, so fixing it keeps the whole
/// resident data flow — and its health telemetry — bit-identical
/// across worker counts. Waves still scale to however many workers
/// the caller brings (shards are dealt across threads).
pub const DEFAULT_RESIDENT_SHARDS: usize = 8;

/// The tentpole of the resident path: long-lived spatial-ownership
/// shards that survive across event slices.
///
/// Where [`run_events_batched`] re-plans shards and re-extracts
/// subnetworks from scratch on **every** slice (`O(N)` per slice just
/// to start), a `ResidentExecutor` seeds a persistent
/// [`ShardMap`] once and keeps one **resident subnetwork per shard**
/// — configurations, colors, spatial index, and recycled rewire
/// scratch — alive between [`ResidentExecutor::run`] calls. Each
/// slice is only *routed* (`O(events · claim cells)`): interior
/// events run concurrently on their shard's resident state in waves,
/// frontier-crossing events serialize through a border pass on the
/// main network with the touched replicas refreshed in `O(Δ)`, and
/// the main network is kept current by an `O(Δ)`-per-event replay.
/// Steady-state churn therefore never touches `O(N)` state.
///
/// **Bit-identical to sequential execution.** The wave/border
/// schedule is conflict-serializable to the original event order
/// (`minim_net::shardmap` module docs give the argument), each
/// replica is a faithful restriction of the main network to its owned
/// region (the refresh rules in `refresh_after_border` maintain
/// exactly that invariant), and join ids are pre-assigned in routing
/// order — so every event observes the same local state it would have
/// seen sequentially. `tests/resident_equivalence.rs` pins this
/// across strategies × workers × adversarial frontier-crossing
/// streams.
///
/// The executor assumes it owns the network between runs: structural
/// drift from outside mutation (node/edge/id/color-watermark changes)
/// is detected by a fingerprint and triggers a transparent reseed;
/// callers that recolor nodes without changing any of those four
/// numbers must create a fresh executor. Runs that fall back to the
/// sequential path (≤ 1 worker, ≤ 1 event, globally-coupled
/// strategies, full validation) drop the shard state for the same
/// reason.
pub struct ResidentExecutor {
    workers: usize,
    shards: usize,
    state: Option<ResidentState>,
}

/// The persistent state: the ownership map, one resident subnetwork
/// per shard, and recycled routing/queue buffers.
struct ResidentState {
    map: ShardMap,
    /// `Mutex<Option<..>>` so wave jobs can take their shard's
    /// subnetwork by value across `parallel_map` and hand it back —
    /// the same idiom as the per-slice executor, but the networks
    /// live here across slices instead of being rebuilt.
    subs: Vec<Mutex<Option<Network>>>,
    route: SliceRoute,
    /// Per-shard queued event indices of the wave being accumulated.
    queues: Vec<Vec<usize>>,
    fingerprint: minim_net::NetworkFingerprint,
}

impl ResidentState {
    /// Seeds the ownership map from the current population and builds
    /// each shard's resident subnetwork: exactly the present nodes in
    /// its owned cells, with configuration and color — the
    /// region-faithfulness invariant every later refresh maintains.
    fn seed(net: &Network, shards: usize) -> ResidentState {
        let map = ShardMap::seed(net, shards);
        let mut subs: Vec<Network> = (0..map.shard_count()).map(|_| net.fresh_like()).collect();
        for id in net.iter_nodes() {
            let cfg = net.config(id).expect("listed node has a config");
            let s = map
                .owner_of(&cfg.pos)
                .expect("every populated cell is owned after seeding") as usize;
            let d = subs[s].insert_node(id, cfg);
            subs[s].recycle_delta(d);
            if let Some(c) = net.assignment().get(id) {
                subs[s].set_color(id, c);
            }
        }
        ResidentState {
            queues: vec![Vec::new(); map.shard_count()],
            subs: subs.into_iter().map(|s| Mutex::new(Some(s))).collect(),
            map,
            route: SliceRoute::default(),
            fingerprint: net.fingerprint(),
        }
    }

    /// The shard whose region contains `p`. Callers only ask about
    /// positions inside the current slice's claim footprint, which
    /// routing has fully annexed — so the cell is always owned.
    fn owner_shard(&self, p: &Point) -> usize {
        self.map
            .owner_of(p)
            .expect("refresh positions lie in the routed claim footprint") as usize
    }

    /// Exclusive access to shard `s`'s resident subnetwork (only valid
    /// between waves).
    fn sub_mut(&mut self, s: usize) -> &mut Network {
        self.subs[s]
            .get_mut()
            .expect("shard slot poisoned")
            .as_mut()
            .expect("resident subnetwork is home between waves")
    }

    /// Runs the accumulated interior waves (all queued events precede
    /// `replay` in slice order), merges them into the main network,
    /// and clears the queues. Returns `(recodings, edge_churn)`.
    ///
    /// Wave jobs run one shard each, concurrently: topology with
    /// pinned join ids, recode planning via the same `plan_batched`
    /// decomposition the sequential handlers use, commit, optional
    /// delta validation — all against the shard's resident
    /// subnetwork, which stays resident (and allocation-recycled)
    /// afterwards. The merge replays the events' topology on the main
    /// network in original order (`O(Δ)` each) and applies each
    /// shard's recoded colors — per-event *changes* only, never a full
    /// assignment copy, which is what keeps the merge `O(Δ)` instead
    /// of `O(population)`.
    fn flush_wave(
        &mut self,
        strategy: &(dyn RecodingStrategy + Sync),
        net: &mut Network,
        events: &[Event],
        replay: std::ops::Range<usize>,
        workers: usize,
        mode: ValidationMode,
    ) -> (usize, usize) {
        let jobs: Vec<usize> = (0..self.queues.len())
            .filter(|&s| !self.queues[s].is_empty())
            .collect();
        if jobs.is_empty() {
            return (0, 0);
        }
        let results = {
            let _span = minim_obs::span!("resident.interior_wave");
            let subs = &self.subs;
            let queues = &self.queues;
            let route = &self.route;
            parallel_map(&jobs, workers, |&s| {
                let mut sub = subs[s]
                    .lock()
                    .expect("shard slot poisoned")
                    .take()
                    .expect("each shard runs in one wave job at a time");
                let mut recodings = 0usize;
                let mut edge_churn = 0usize;
                // Per-event color *changes*, in event order. A leave
                // records an explicit unset: within a shard a later
                // leave must override an earlier recode of the same
                // node during the merge (last-write-wins), exactly as
                // it does sequentially.
                let mut writes: Vec<(minim_graph::NodeId, Option<minim_graph::Color>)> = Vec::new();
                for &i in &queues[s] {
                    if let Event::Leave { node } = &events[i] {
                        writes.push((*node, None));
                    }
                    let (applied, delta) =
                        apply_topology_delta(&mut sub, &events[i], route.join_ids[i]);
                    let color_plan = strategy.plan_batched(&sub, &applied, &delta);
                    let outcome = commit_plan(&mut sub, &color_plan);
                    recodings += outcome.recodings();
                    edge_churn += delta.edge_churn();
                    if mode == ValidationMode::Delta {
                        let seeds = minim_core::validation_seeds(&delta, &outcome);
                        if let Err(v) =
                            conflict::validate_delta(sub.graph(), sub.assignment(), &seeds)
                        {
                            panic!("event {applied:?} left a CA1/CA2 violation: {v}");
                        }
                    }
                    writes.extend(outcome.recoded.iter().map(|&(n, _, c)| (n, Some(c))));
                    sub.recycle_delta(delta);
                }
                *subs[s].lock().expect("shard slot poisoned") = Some(sub);
                (recodings, edge_churn, writes)
            })
        };

        // Bring the main network up to date: replay topology in
        // original order (all events in `replay` are interior — any
        // border event would have flushed first), then apply the
        // shards' color changes (disjoint node sets; within a shard
        // the writes are already in event order, so last-write-wins
        // matches sequential).
        let _span = minim_obs::span!("resident.merge");
        for i in replay {
            let (_, delta) = apply_topology_delta(net, &events[i], self.route.join_ids[i]);
            net.recycle_delta(delta);
        }
        for q in &mut self.queues {
            q.clear();
        }
        let mut recodings = 0usize;
        let mut edge_churn = 0usize;
        for (r, c, writes) in results {
            recodings += r;
            edge_churn += c;
            for (n, color) in writes {
                match color {
                    Some(color) => {
                        net.assignment_mut().set(n, color);
                    }
                    None => {
                        net.assignment_mut().unset(n);
                    }
                }
            }
        }
        (recodings, edge_churn)
    }

    /// Re-establishes region-faithfulness after a border event ran on
    /// the main network: the initiator's topology change is mirrored
    /// into the replica(s) owning its old/new cells, and every recoded
    /// color is written through to its owner's replica. All other
    /// replica state is untouched — a border event's edge changes are
    /// incident to the initiator, and an edge belongs to a replica's
    /// induced subgraph only when *both* endpoints live there, so
    /// replicas not housing the initiator see no topology change.
    fn refresh_after_border(
        &mut self,
        net: &Network,
        event: &Event,
        join_id: Option<minim_graph::NodeId>,
        prior: Option<NodeConfig>,
        outcome: &RecodeOutcome,
    ) {
        match event {
            Event::Join { cfg } => {
                let id = join_id.expect("joins carry a pre-assigned id");
                let s = self.owner_shard(&cfg.pos);
                let sub = self.sub_mut(s);
                let d = sub.insert_node(id, *cfg);
                sub.recycle_delta(d);
                // The joiner's first color arrives via `recoded` below.
            }
            Event::Leave { node } => {
                let p = prior.expect("leave initiator was present").pos;
                let s = self.owner_shard(&p);
                let sub = self.sub_mut(s);
                let d = sub.remove_node(*node);
                sub.recycle_delta(d);
            }
            Event::Move { node, to } => {
                let from = prior.expect("move initiator was present").pos;
                let s_from = self.owner_shard(&from);
                let s_to = self.owner_shard(to);
                if s_from == s_to {
                    let sub = self.sub_mut(s_from);
                    let d = sub.move_node(*node, *to);
                    sub.recycle_delta(d);
                } else {
                    // Migrate the resident copy across the frontier,
                    // color and all.
                    let sub = self.sub_mut(s_from);
                    let d = sub.remove_node(*node);
                    sub.recycle_delta(d);
                    let cfg = net.config(*node).expect("move initiator is present");
                    let color = net.assignment().get(*node);
                    let sub = self.sub_mut(s_to);
                    let d = sub.insert_node(*node, cfg);
                    sub.recycle_delta(d);
                    if let Some(c) = color {
                        sub.set_color(*node, c);
                    }
                }
            }
            Event::SetRange { node, range } => {
                let p = prior.expect("set-range initiator was present").pos;
                let s = self.owner_shard(&p);
                let sub = self.sub_mut(s);
                let d = sub.set_range(*node, *range);
                sub.recycle_delta(d);
            }
        }
        for &(n, _, c) in &outcome.recoded {
            let p = net.config(n).expect("recoded nodes are present").pos;
            let s = self.owner_shard(&p);
            self.sub_mut(s).set_color(n, c);
        }
    }

    /// Largest resident subnetwork, in nodes.
    fn widest_shard(&mut self) -> u32 {
        (0..self.subs.len())
            .map(|s| self.sub_mut(s).node_count() as u32)
            .max()
            .unwrap_or(0)
    }
}

impl ResidentExecutor {
    /// An executor with [`DEFAULT_RESIDENT_SHARDS`] ownership shards
    /// and `workers` wave threads.
    pub fn new(workers: usize) -> ResidentExecutor {
        ResidentExecutor::with_shards(workers, DEFAULT_RESIDENT_SHARDS)
    }

    /// An executor with an explicit shard count (tests and tuning; the
    /// shard count never affects results, only available parallelism).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(workers: usize, shards: usize) -> ResidentExecutor {
        assert!(shards >= 1, "resident executor needs at least one shard");
        ResidentExecutor {
            workers,
            shards,
            state: None,
        }
    }

    /// The wave worker count this executor runs with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one event slice on the resident path — the drop-in
    /// replacement for [`run_events_batched`] that keeps shard state
    /// alive across calls. Falls back to [`run_events_validated`]
    /// (dropping the shard state) under the same conditions as the
    /// per-slice executor.
    ///
    /// # Panics
    /// Panics on the first event whose aftermath violates CA1/CA2
    /// (when validating), like the sequential runner.
    pub fn run(
        &mut self,
        strategy: &mut (dyn RecodingStrategy + Sync),
        net: &mut Network,
        events: &[Event],
        mode: ValidationMode,
    ) -> PhaseMetrics {
        if self.workers <= 1
            || events.len() <= 1
            || strategy.batch_locality() == BatchLocality::Global
            || mode == ValidationMode::Full
        {
            // The sequential path mutates the network without
            // updating the replicas; drop them rather than leaving a
            // guaranteed-stale (fingerprint-failing) state around.
            self.state = None;
            return run_events_validated(strategy, net, events, mode);
        }
        let _slice_span = minim_obs::span!("resident.slice");
        let t0 = std::time::Instant::now();
        let workers = self.workers;
        let fp = net.fingerprint();
        let state = match &mut self.state {
            Some(s) if s.fingerprint == fp => s,
            _ => {
                self.state = Some(ResidentState::seed(net, self.shards));
                self.state.as_mut().expect("just seeded")
            }
        };
        let strategy: &(dyn RecodingStrategy + Sync) = strategy;

        {
            let _span = minim_obs::span!("resident.route");
            state.map.route(net, events, &mut state.route);
        }
        let mut recodings = 0usize;
        let mut edge_churn = 0usize;
        let mut wave_start = 0usize;
        for i in 0..events.len() {
            match state.route.disposition[i] {
                Disposition::Interior(s) => state.queues[s as usize].push(i),
                Disposition::Border { .. } => {
                    // Barrier: every earlier interior event lands
                    // before the frontier crossing runs.
                    let (r, c) =
                        state.flush_wave(strategy, net, events, wave_start..i, workers, mode);
                    recodings += r;
                    edge_churn += c;
                    wave_start = i + 1;

                    // The border event itself runs sequentially on
                    // the main network — same plan/commit
                    // decomposition as the wave path.
                    let _span = minim_obs::span!("resident.border_barrier");
                    let e = &events[i];
                    let join_id = state.route.join_ids[i];
                    let prior = match e {
                        Event::Leave { node }
                        | Event::Move { node, .. }
                        | Event::SetRange { node, .. } => net.config(*node),
                        Event::Join { .. } => None,
                    };
                    let (applied, delta) = apply_topology_delta(net, e, join_id);
                    let color_plan = strategy.plan_batched(net, &applied, &delta);
                    let outcome = commit_plan(net, &color_plan);
                    recodings += outcome.recodings();
                    edge_churn += delta.edge_churn();
                    if mode == ValidationMode::Delta {
                        let seeds = minim_core::validation_seeds(&delta, &outcome);
                        if let Err(v) =
                            conflict::validate_delta(net.graph(), net.assignment(), &seeds)
                        {
                            panic!("event {applied:?} left a CA1/CA2 violation: {v}");
                        }
                    }
                    state.refresh_after_border(net, e, join_id, prior, &outcome);
                    net.recycle_delta(delta);
                }
            }
        }
        let (r, c) = state.flush_wave(
            strategy,
            net,
            events,
            wave_start..events.len(),
            workers,
            mode,
        );
        recodings += r;
        edge_churn += c;
        state.fingerprint = net.fingerprint();

        let elapsed = t0.elapsed().as_secs_f64();
        let health = ShardHealth {
            shards: state.map.active_shards(),
            widest_shard: state.widest_shard(),
            border_events: state.route.border_events,
            events: events.len(),
            events_per_sec: if elapsed > 0.0 {
                events.len() as f64 / elapsed
            } else {
                0.0
            },
        };
        // Re-express the slice's health in the registry so shard
        // quality shows up next to every other subsystem's metrics.
        minim_obs::counter!("resident.events", health.events as u64);
        minim_obs::counter!("resident.border_events", health.border_events as u64);
        minim_obs::gauge!("resident.shards", health.shards as f64);
        minim_obs::gauge!("resident.widest_shard", health.widest_shard as f64);
        minim_obs::gauge!("resident.events_per_sec", health.events_per_sec);
        PhaseMetrics {
            recodings,
            max_color: net.max_color_index(),
            edge_churn,
            shard_health: Some(health),
        }
    }
}

/// Pre-generates `rounds` rounds of §5.3 movement events.
///
/// Positions evolve identically for every strategy (recoding never
/// moves nodes), so the rounds are simulated once on a colorless
/// *ghost* network and the same event lists are replayed against each
/// strategy — this keeps the comparison paired (identical randomness
/// per strategy), which is how the paper can plot Δ-metrics across
/// strategies for "the same" mobility.
pub fn pregenerate_movement_rounds<R: Rng + ?Sized>(
    base: &Network,
    workload: &MovementWorkload,
    rounds: usize,
    rng: &mut R,
) -> Vec<Vec<Event>> {
    let mut ghost = base.clone();
    let mut out = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let events = workload.generate_round(&ghost, rng);
        for e in &events {
            apply_topology(&mut ghost, e);
        }
        out.push(events);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_core::{Minim, StrategyKind};
    use minim_net::workload::JoinWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shard_health_absorb_is_duration_weighted() {
        // Hand-computed oracle: side A ran 100 events at 100 ev/s
        // (1.0 s of wall-clock), side B ran 300 events at 1200 ev/s
        // (0.25 s). Merged rate = 400 events / 1.25 s = 320 ev/s.
        // The old event-count weighting of the *rates* would claim
        // (100·100 + 1200·300) / 400 = 925 ev/s — dominated by the
        // burst that barely contributed wall-clock.
        let mut a = ShardHealth {
            shards: 4,
            widest_shard: 50,
            border_events: 3,
            events: 100,
            events_per_sec: 100.0,
        };
        let b = ShardHealth {
            shards: 6,
            widest_shard: 40,
            border_events: 7,
            events: 300,
            events_per_sec: 1200.0,
        };
        a.absorb(&b);
        assert_eq!(a.events, 400);
        assert_eq!(a.border_events, 10);
        assert_eq!(a.shards, 6);
        assert_eq!(a.widest_shard, 50);
        assert!(
            (a.events_per_sec - 320.0).abs() < 1e-9,
            "{}",
            a.events_per_sec
        );

        // An unmeasurable side contributes counters but neither time
        // nor events to the rate.
        let c = ShardHealth {
            events: 1000,
            events_per_sec: 0.0,
            ..ShardHealth::default()
        };
        a.absorb(&c);
        assert_eq!(a.events, 1400);
        assert!((a.events_per_sec - 320.0).abs() < 1e-9);

        // Two unmeasured sides merge to an unmeasured rate.
        let mut d = ShardHealth::default();
        d.absorb(&ShardHealth::default());
        assert_eq!(d.events_per_sec, 0.0);
    }

    #[test]
    fn run_events_counts_recodings() {
        let mut rng = StdRng::seed_from_u64(1);
        let events = JoinWorkload::paper(20).generate(&mut rng);
        let mut net = Network::new(25.0);
        let mut strategy = Minim::default();
        let metrics = run_events(&mut strategy, &mut net, &events);
        // Every join recodes at least the joiner.
        assert!(metrics.recodings >= 20);
        assert!(metrics.max_color >= 1);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn validated_modes_agree_and_count_churn() {
        for kind in StrategyKind::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let events = JoinWorkload::paper(30).generate(&mut rng);
            let mut results = Vec::new();
            for mode in [
                ValidationMode::Off,
                ValidationMode::Delta,
                ValidationMode::Full,
            ] {
                let mut net = Network::new(25.0);
                let mut s = kind.build();
                let m = run_events_validated(&mut *s, &mut net, &events, mode);
                assert!(m.edge_churn > 0, "joins wire edges");
                results.push(m);
            }
            assert_eq!(results[0], results[1], "{:?} delta mode", kind);
            assert_eq!(results[0], results[2], "{:?} full mode", kind);
        }
    }

    #[test]
    #[should_panic(expected = "CA1/CA2 violation")]
    fn delta_validation_catches_a_sabotaged_strategy() {
        /// A strategy that never colors anyone — every join leaves the
        /// joiner uncolored, which local validation must flag.
        struct Sloppy;
        impl minim_core::RecodingStrategy for Sloppy {
            fn name(&self) -> &'static str {
                "sloppy"
            }
            fn on_join_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
                cfg: minim_net::NodeConfig,
            ) -> minim_core::EventEffect {
                let delta = net.insert_node(id, cfg);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
            fn on_leave_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
            ) -> minim_core::EventEffect {
                let delta = net.remove_node(id);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
            fn on_move_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
                to: minim_geom::Point,
            ) -> minim_core::EventEffect {
                let delta = net.move_node(id, to);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
            fn on_set_range_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
                range: f64,
            ) -> minim_core::EventEffect {
                let delta = net.set_range(id, range);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let events = JoinWorkload::paper(5).generate(&mut rng);
        let mut net = Network::new(25.0);
        run_events_validated(&mut Sloppy, &mut net, &events, ValidationMode::Delta);
    }

    #[test]
    fn batched_matches_sequential_on_joins() {
        for kind in StrategyKind::ALL {
            let mut rng = StdRng::seed_from_u64(21);
            let events = JoinWorkload::paper(60).generate(&mut rng);
            let mut seq_net = Network::new(25.0);
            let mut s = kind.build();
            let seq = run_events(&mut *s, &mut seq_net, &events);
            for workers in [1usize, 4, 8] {
                let mut net = Network::new(25.0);
                let mut s = kind.build();
                let got =
                    run_events_batched(&mut *s, &mut net, &events, ValidationMode::Off, workers);
                assert_eq!(got, seq, "{kind:?} at {workers} workers");
                assert_eq!(net.snapshot_assignment(), seq_net.snapshot_assignment());
                assert_eq!(net.describe(), seq_net.describe());
            }
        }
    }

    #[test]
    fn resident_matches_sequential_across_slices() {
        for kind in StrategyKind::ALL {
            let mut rng = StdRng::seed_from_u64(21);
            let events = JoinWorkload::paper(60).generate(&mut rng);
            let mut seq_net = Network::new(25.0);
            let mut s = kind.build();
            let seq = run_events(&mut *s, &mut seq_net, &events);
            for workers in [1usize, 4, 8] {
                let mut net = Network::new(25.0);
                let mut s = kind.build();
                let mut exec = ResidentExecutor::new(workers);
                let mut got = PhaseMetrics::default();
                // Feed the stream in slices so shard state persists
                // (and is reused) across runs.
                for slice in events.chunks(20) {
                    let m = exec.run(&mut *s, &mut net, slice, ValidationMode::Off);
                    got.recodings += m.recodings;
                    got.edge_churn += m.edge_churn;
                    got.max_color = m.max_color;
                }
                assert_eq!(got, seq, "{kind:?} at {workers} workers");
                assert_eq!(net.snapshot_assignment(), seq_net.snapshot_assignment());
                assert_eq!(net.describe(), seq_net.describe());
            }
        }
    }

    #[test]
    fn resident_validates_deltas_and_reports_health() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = JoinWorkload::paper(40).generate(&mut rng);
        let mut net = Network::new(25.0);
        let mut s = Minim::default();
        let mut exec = ResidentExecutor::new(4);
        let m = exec.run(&mut s, &mut net, &events, ValidationMode::Delta);
        assert!(m.recodings >= 40);
        assert!(net.validate().is_ok());
        let h = m.shard_health.expect("resident runs report health");
        assert_eq!(h.events, 40);
        assert!(h.border_events <= h.events);
        assert!(h.shards >= 1);
        assert!(h.widest_shard >= 1);
    }

    #[test]
    fn batched_validates_deltas_like_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = JoinWorkload::paper(40).generate(&mut rng);
        let mut net = Network::new(25.0);
        let mut s = Minim::default();
        let m = run_events_batched(&mut s, &mut net, &events, ValidationMode::Delta, 4);
        assert!(m.recodings >= 40);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn movement_rounds_replay_identically_across_strategies() {
        let mut rng = StdRng::seed_from_u64(2);
        let join_events = JoinWorkload::paper(15).generate(&mut rng);
        let mut base = Network::new(25.0);
        let mut m = Minim::default();
        for e in &join_events {
            m.apply(&mut base, &e.clone());
        }
        let w = MovementWorkload::paper(30.0, 1);
        let rounds = pregenerate_movement_rounds(&base, &w, 3, &mut rng);
        assert_eq!(rounds.len(), 3);
        for r in &rounds {
            assert_eq!(r.len(), 15, "every node moves once per round");
        }

        // Replaying the same rounds against two strategies leaves both
        // networks with identical topology.
        let mut nets = Vec::new();
        for kind in [StrategyKind::Minim, StrategyKind::Cp] {
            let mut net = base.clone();
            let mut s = kind.build();
            for round in &rounds {
                run_events(&mut *s, &mut net, round);
            }
            assert!(net.validate().is_ok());
            nets.push(net);
        }
        let a = &nets[0];
        let b = &nets[1];
        for id in a.node_ids() {
            assert_eq!(a.config(id).unwrap().pos, b.config(id).unwrap().pos);
        }
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }
}
