//! Scenario runners: apply generated event sequences to a strategy and
//! accumulate the paper's two metrics.
//!
//! The event loop is **delta-driven**: every applied event yields a
//! [`minim_net::TopologyDelta`] (routed up from the `Network` mutators
//! through [`RecodingStrategy::apply_delta`]), and per-event
//! consistency checking — [`ValidationMode::Delta`] — runs
//! `conflict::validate_delta` on just the delta's affected
//! neighborhood, `O(Δ)` per event. [`ValidationMode::Full`] re-checks
//! the whole conflict graph after every event (`O(E)`), and exists as
//! the control arm: the `delta` bench in `crates/bench` measures the
//! two against each other on the Fig 10 join sweep.

use crate::par::parallel_map;
use minim_core::{commit_plan, BatchLocality, RecodingStrategy};
use minim_graph::conflict;
use minim_net::event::{apply_topology, apply_topology_delta, Event};
use minim_net::workload::MovementWorkload;
use minim_net::{BatchPlan, Network};
use rand::Rng;
use std::sync::Mutex;

/// Accumulated §5 metrics for one phase of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseMetrics {
    /// Total recodings performed during the phase.
    pub recodings: usize,
    /// Maximum color index assigned at phase end.
    pub max_color: u32,
    /// Total digraph edge insertions + removals over the phase — the
    /// summed per-event `Δ`, read off the topology deltas.
    pub edge_churn: usize,
}

/// How (and whether) the event loop checks CA1/CA2 after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// No per-event checking (the strategies' own debug assertions
    /// still run in debug builds).
    #[default]
    Off,
    /// `O(Δ)` per event: `conflict::validate_delta` over the event's
    /// touched nodes plus everything the strategy recoded.
    Delta,
    /// `O(E)` per event: full `conflict::validate` over the whole
    /// graph — the control arm the paper's locality claim beats.
    Full,
}

/// Applies `events` in order with `strategy`, returning the phase
/// metrics. Panics (via the strategies' debug assertions) if any event
/// leaves the network invalid.
pub fn run_events(
    strategy: &mut dyn RecodingStrategy,
    net: &mut Network,
    events: &[Event],
) -> PhaseMetrics {
    run_events_validated(strategy, net, events, ValidationMode::Off)
}

/// [`run_events`] with per-event CA1/CA2 checking in the chosen
/// [`ValidationMode`].
///
/// # Panics
/// Panics on the first event whose aftermath violates CA1/CA2.
pub fn run_events_validated(
    strategy: &mut dyn RecodingStrategy,
    net: &mut Network,
    events: &[Event],
    mode: ValidationMode,
) -> PhaseMetrics {
    let mut recodings = 0;
    let mut edge_churn = 0;
    for e in events {
        let (_, effect) = strategy.apply_delta(net, e);
        recodings += effect.outcome.recodings();
        edge_churn += effect.delta.edge_churn();
        match mode {
            ValidationMode::Off => {}
            ValidationMode::Delta => {
                let seeds = minim_core::validation_seeds(&effect.delta, &effect.outcome);
                if let Err(v) = conflict::validate_delta(net.graph(), net.assignment(), &seeds) {
                    panic!("event {e:?} left a CA1/CA2 violation: {v}");
                }
            }
            ValidationMode::Full => {
                if let Err(v) = net.validate() {
                    panic!("event {e:?} left a CA1/CA2 violation: {v}");
                }
            }
        }
    }
    PhaseMetrics {
        recodings,
        max_color: net.max_color_index(),
        edge_churn,
    }
}

/// How a scenario executes its per-replicate event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// One event at a time, in order — [`run_events`].
    #[default]
    Sequential,
    /// Conflict-free waves with concurrent recode planning —
    /// [`run_events_batched`] with the given worker count. Pinned
    /// bit-identical to [`Execution::Sequential`]; worthwhile for
    /// large-N single scenarios (the `metropolis` preset), where one
    /// replicate is itself the bottleneck.
    Batched {
        /// Planning worker threads per replicate.
        workers: usize,
    },
}

/// What one shard's isolated execution reports back for the merge.
struct ShardRun {
    /// The shard's subnetwork after all of its events ran.
    sub: Network,
    /// Recodings performed across the shard's events.
    recodings: usize,
    /// Summed per-event edge churn.
    edge_churn: usize,
}

/// Executes one shard's events end-to-end on its private subnetwork:
/// topology (with pinned join ids), recode planning through the same
/// `plan_batched` path the sequential handlers use, commit, and
/// optional delta validation.
fn run_shard(
    strategy: &(dyn RecodingStrategy + Sync),
    mut sub: Network,
    events: &[Event],
    shard: &[usize],
    plan: &BatchPlan,
    mode: ValidationMode,
) -> ShardRun {
    let mut recodings = 0usize;
    let mut edge_churn = 0usize;
    for &i in shard {
        let (applied, delta) = apply_topology_delta(&mut sub, &events[i], plan.join_id(i));
        let color_plan = strategy.plan_batched(&sub, &applied, &delta);
        let outcome = commit_plan(&mut sub, &color_plan);
        recodings += outcome.recodings();
        edge_churn += delta.edge_churn();
        if mode == ValidationMode::Delta {
            let seeds = minim_core::validation_seeds(&delta, &outcome);
            if let Err(v) = conflict::validate_delta(sub.graph(), sub.assignment(), &seeds) {
                panic!("event {applied:?} left a CA1/CA2 violation: {v}");
            }
        }
    }
    ShardRun {
        sub,
        recodings,
        edge_churn,
    }
}

/// [`run_events`] with intra-scenario parallelism — the sharded batch
/// executor. [`BatchPlan`] partitions `events` into spatially
/// independent shards; each shard then executes **end-to-end**
/// (topology, recode planning, commit, validation) on a private
/// subnetwork holding exactly the nodes inside the shard's claimed
/// region, with all shards running concurrently on `workers` threads.
/// Afterwards the main network is brought up to date: the event
/// topology is replayed in original order (cheap — `O(Δ)` per event)
/// and each shard's final colors are copied back (shards write
/// disjoint node sets, so the merge order is immaterial).
///
/// **Bit-identical to [`run_events_validated`]** for every strategy:
/// the shard partition is conservative (everything a shard's events
/// read or write lies inside its claimed region, and distinct shards'
/// regions are disjoint), events keep their relative order within a
/// shard, join ids are pre-assigned in sequential order, and the
/// batchable strategies' sequential handlers run through the same
/// `plan_batched` + `commit_plan` decomposition the shards use.
/// Strategies that declare [`BatchLocality::Global`] (BBB,
/// instrumentation wrappers), [`ValidationMode::Full`] runs, worker
/// counts ≤ 1, and single-shard plans (spatially inseparable batches,
/// e.g. global movement rounds) all fall back to the sequential path —
/// correctness never depends on the caller picking the right mode.
///
/// # Panics
/// Panics on the first event whose aftermath violates CA1/CA2 (when
/// validating), like the sequential runner.
pub fn run_events_batched(
    strategy: &mut (dyn RecodingStrategy + Sync),
    net: &mut Network,
    events: &[Event],
    mode: ValidationMode,
    workers: usize,
) -> PhaseMetrics {
    if workers <= 1
        || events.len() <= 1
        || strategy.batch_locality() == BatchLocality::Global
        || mode == ValidationMode::Full
    {
        return run_events_validated(strategy, net, events, mode);
    }
    let debug_timing = std::env::var_os("MINIM_BATCH_DEBUG").is_some();
    let t0 = std::time::Instant::now();
    let plan = BatchPlan::new(net, events);
    if plan.shard_count() <= 1 {
        return run_events_validated(strategy, net, events, mode);
    }
    let strategy: &(dyn RecodingStrategy + Sync) = strategy;
    if debug_timing {
        eprintln!("plan: {:?}", t0.elapsed());
    }
    let t0 = std::time::Instant::now();

    // Populate each shard's subnetwork with the present nodes inside
    // its claimed region (configuration + color). Everything a shard
    // reads or writes lives there; nodes outside every claim are
    // untouched by the whole batch.
    // `fresh_like` preserves the cell hint, the flat/stratified index
    // mode, and the obstacle set, so shards execute with the same
    // index behavior as the parent network.
    let mut subs: Vec<Network> = (0..plan.shard_count()).map(|_| net.fresh_like()).collect();
    for id in net.iter_nodes().collect::<Vec<_>>() {
        let cfg = net.config(id).expect("listed node has a config");
        if let Some(s) = plan.shard_of_point(&cfg.pos) {
            subs[s].insert_node(id, cfg);
            if let Some(c) = net.assignment().get(id) {
                subs[s].set_color(id, c);
            }
        }
    }

    // Run every shard concurrently. Each job takes ownership of its
    // subnetwork; the shared state (strategy, events, plan) is
    // read-only.
    let jobs: Vec<(usize, Mutex<Option<Network>>)> = subs
        .drain(..)
        .map(|sub| Mutex::new(Some(sub)))
        .enumerate()
        .collect();
    if debug_timing {
        eprintln!("extract: {:?}", t0.elapsed());
    }
    let t0 = std::time::Instant::now();
    let results = parallel_map(&jobs, workers, |(s, slot)| {
        let sub = slot
            .lock()
            .expect("subnet slot poisoned")
            .take()
            .expect("each shard job runs exactly once");
        run_shard(strategy, sub, events, &plan.shards()[*s], &plan, mode)
    });
    if debug_timing {
        eprintln!(
            "shards: {:?} ({} shards, largest {} events)",
            t0.elapsed(),
            plan.shard_count(),
            plan.max_shard_len()
        );
    }
    let t0 = std::time::Instant::now();

    // Merge: replay the topology on the main network in original event
    // order (identical deltas — each shard's subgraph is faithful),
    // then copy back each shard's colors. Shards write disjoint node
    // sets; unrecoded nodes are rewritten with their existing color.
    for (i, e) in events.iter().enumerate() {
        apply_topology_delta(net, e, plan.join_id(i));
    }
    let mut recodings = 0usize;
    let mut edge_churn = 0usize;
    for r in &results {
        recodings += r.recodings;
        edge_churn += r.edge_churn;
        for (n, c) in r.sub.assignment().iter() {
            net.assignment_mut().set(n, c);
        }
    }

    if debug_timing {
        eprintln!("merge: {:?}", t0.elapsed());
    }
    PhaseMetrics {
        recodings,
        max_color: net.max_color_index(),
        edge_churn,
    }
}

/// Pre-generates `rounds` rounds of §5.3 movement events.
///
/// Positions evolve identically for every strategy (recoding never
/// moves nodes), so the rounds are simulated once on a colorless
/// *ghost* network and the same event lists are replayed against each
/// strategy — this keeps the comparison paired (identical randomness
/// per strategy), which is how the paper can plot Δ-metrics across
/// strategies for "the same" mobility.
pub fn pregenerate_movement_rounds<R: Rng + ?Sized>(
    base: &Network,
    workload: &MovementWorkload,
    rounds: usize,
    rng: &mut R,
) -> Vec<Vec<Event>> {
    let mut ghost = base.clone();
    let mut out = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let events = workload.generate_round(&ghost, rng);
        for e in &events {
            apply_topology(&mut ghost, e);
        }
        out.push(events);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_core::{Minim, StrategyKind};
    use minim_net::workload::JoinWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn run_events_counts_recodings() {
        let mut rng = StdRng::seed_from_u64(1);
        let events = JoinWorkload::paper(20).generate(&mut rng);
        let mut net = Network::new(25.0);
        let mut strategy = Minim::default();
        let metrics = run_events(&mut strategy, &mut net, &events);
        // Every join recodes at least the joiner.
        assert!(metrics.recodings >= 20);
        assert!(metrics.max_color >= 1);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn validated_modes_agree_and_count_churn() {
        for kind in StrategyKind::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let events = JoinWorkload::paper(30).generate(&mut rng);
            let mut results = Vec::new();
            for mode in [
                ValidationMode::Off,
                ValidationMode::Delta,
                ValidationMode::Full,
            ] {
                let mut net = Network::new(25.0);
                let mut s = kind.build();
                let m = run_events_validated(&mut *s, &mut net, &events, mode);
                assert!(m.edge_churn > 0, "joins wire edges");
                results.push(m);
            }
            assert_eq!(results[0], results[1], "{:?} delta mode", kind);
            assert_eq!(results[0], results[2], "{:?} full mode", kind);
        }
    }

    #[test]
    #[should_panic(expected = "CA1/CA2 violation")]
    fn delta_validation_catches_a_sabotaged_strategy() {
        /// A strategy that never colors anyone — every join leaves the
        /// joiner uncolored, which local validation must flag.
        struct Sloppy;
        impl minim_core::RecodingStrategy for Sloppy {
            fn name(&self) -> &'static str {
                "sloppy"
            }
            fn on_join_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
                cfg: minim_net::NodeConfig,
            ) -> minim_core::EventEffect {
                let delta = net.insert_node(id, cfg);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
            fn on_leave_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
            ) -> minim_core::EventEffect {
                let delta = net.remove_node(id);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
            fn on_move_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
                to: minim_geom::Point,
            ) -> minim_core::EventEffect {
                let delta = net.move_node(id, to);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
            fn on_set_range_delta(
                &mut self,
                net: &mut Network,
                id: minim_graph::NodeId,
                range: f64,
            ) -> minim_core::EventEffect {
                let delta = net.set_range(id, range);
                minim_core::EventEffect {
                    delta,
                    outcome: minim_core::RecodeOutcome::default(),
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let events = JoinWorkload::paper(5).generate(&mut rng);
        let mut net = Network::new(25.0);
        run_events_validated(&mut Sloppy, &mut net, &events, ValidationMode::Delta);
    }

    #[test]
    fn batched_matches_sequential_on_joins() {
        for kind in StrategyKind::ALL {
            let mut rng = StdRng::seed_from_u64(21);
            let events = JoinWorkload::paper(60).generate(&mut rng);
            let mut seq_net = Network::new(25.0);
            let mut s = kind.build();
            let seq = run_events(&mut *s, &mut seq_net, &events);
            for workers in [1usize, 4, 8] {
                let mut net = Network::new(25.0);
                let mut s = kind.build();
                let got =
                    run_events_batched(&mut *s, &mut net, &events, ValidationMode::Off, workers);
                assert_eq!(got, seq, "{kind:?} at {workers} workers");
                assert_eq!(net.snapshot_assignment(), seq_net.snapshot_assignment());
                assert_eq!(net.describe(), seq_net.describe());
            }
        }
    }

    #[test]
    fn batched_validates_deltas_like_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = JoinWorkload::paper(40).generate(&mut rng);
        let mut net = Network::new(25.0);
        let mut s = Minim::default();
        let m = run_events_batched(&mut s, &mut net, &events, ValidationMode::Delta, 4);
        assert!(m.recodings >= 40);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn movement_rounds_replay_identically_across_strategies() {
        let mut rng = StdRng::seed_from_u64(2);
        let join_events = JoinWorkload::paper(15).generate(&mut rng);
        let mut base = Network::new(25.0);
        let mut m = Minim::default();
        for e in &join_events {
            m.apply(&mut base, &e.clone());
        }
        let w = MovementWorkload::paper(30.0, 1);
        let rounds = pregenerate_movement_rounds(&base, &w, 3, &mut rng);
        assert_eq!(rounds.len(), 3);
        for r in &rounds {
            assert_eq!(r.len(), 15, "every node moves once per round");
        }

        // Replaying the same rounds against two strategies leaves both
        // networks with identical topology.
        let mut nets = Vec::new();
        for kind in [StrategyKind::Minim, StrategyKind::Cp] {
            let mut net = base.clone();
            let mut s = kind.build();
            for round in &rounds {
                run_events(&mut *s, &mut net, round);
            }
            assert!(net.validate().is_ok());
            nets.push(net);
        }
        let a = &nets[0];
        let b = &nets[1];
        for id in a.node_ids() {
            assert_eq!(a.config(id).unwrap().pos, b.config(id).unwrap().pos);
        }
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }
}
