//! Scenario runners: apply generated event sequences to a strategy and
//! accumulate the paper's two metrics.

use minim_core::RecodingStrategy;
use minim_net::event::{apply_topology, Event};
use minim_net::workload::MovementWorkload;
use minim_net::Network;
use rand::Rng;

/// Accumulated §5 metrics for one phase of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseMetrics {
    /// Total recodings performed during the phase.
    pub recodings: usize,
    /// Maximum color index assigned at phase end.
    pub max_color: u32,
}

/// Applies `events` in order with `strategy`, returning the phase
/// metrics. Panics (via the strategies' debug assertions) if any event
/// leaves the network invalid.
pub fn run_events(
    strategy: &mut dyn RecodingStrategy,
    net: &mut Network,
    events: &[Event],
) -> PhaseMetrics {
    let mut recodings = 0;
    for e in events {
        let (_, outcome) = strategy.apply(net, e);
        recodings += outcome.recodings();
    }
    PhaseMetrics {
        recodings,
        max_color: net.max_color_index(),
    }
}

/// Pre-generates `rounds` rounds of §5.3 movement events.
///
/// Positions evolve identically for every strategy (recoding never
/// moves nodes), so the rounds are simulated once on a colorless
/// *ghost* network and the same event lists are replayed against each
/// strategy — this keeps the comparison paired (identical randomness
/// per strategy), which is how the paper can plot Δ-metrics across
/// strategies for "the same" mobility.
pub fn pregenerate_movement_rounds<R: Rng + ?Sized>(
    base: &Network,
    workload: &MovementWorkload,
    rounds: usize,
    rng: &mut R,
) -> Vec<Vec<Event>> {
    let mut ghost = base.clone();
    let mut out = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let events = workload.generate_round(&ghost, rng);
        for e in &events {
            apply_topology(&mut ghost, e);
        }
        out.push(events);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_core::{Minim, StrategyKind};
    use minim_net::workload::JoinWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn run_events_counts_recodings() {
        let mut rng = StdRng::seed_from_u64(1);
        let events = JoinWorkload::paper(20).generate(&mut rng);
        let mut net = Network::new(25.0);
        let mut strategy = Minim::default();
        let metrics = run_events(&mut strategy, &mut net, &events);
        // Every join recodes at least the joiner.
        assert!(metrics.recodings >= 20);
        assert!(metrics.max_color >= 1);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn movement_rounds_replay_identically_across_strategies() {
        let mut rng = StdRng::seed_from_u64(2);
        let join_events = JoinWorkload::paper(15).generate(&mut rng);
        let mut base = Network::new(25.0);
        let mut m = Minim::default();
        for e in &join_events {
            m.apply(&mut base, &e.clone());
        }
        let w = MovementWorkload::paper(30.0, 1);
        let rounds = pregenerate_movement_rounds(&base, &w, 3, &mut rng);
        assert_eq!(rounds.len(), 3);
        for r in &rounds {
            assert_eq!(r.len(), 15, "every node moves once per round");
        }

        // Replaying the same rounds against two strategies leaves both
        // networks with identical topology.
        let mut nets = Vec::new();
        for kind in [StrategyKind::Minim, StrategyKind::Cp] {
            let mut net = base.clone();
            let mut s = kind.build();
            for round in &rounds {
                run_events(&mut *s, &mut net, round);
            }
            assert!(net.validate().is_ok());
            nets.push(net);
        }
        let a = &nets[0];
        let b = &nets[1];
        for id in a.node_ids() {
            assert_eq!(a.config(id).unwrap().pos, b.config(id).unwrap().pos);
        }
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }
}
