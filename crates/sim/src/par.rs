//! Deterministic parallel job execution.
//!
//! Every sweep point — whether a paper figure or a scenario-lab spec —
//! averages many independent replicates, and replicates across points
//! are independent too, so a whole sweep is an embarrassingly parallel
//! bag of jobs. Both the scenario driver
//! ([`crate::scenario::Scenario::run`]) and the remaining hand-coded
//! studies in [`crate::experiments`] fan out through this worker pool:
//! a `std::thread::scope` where workers pull job indices from an
//! atomic counter and write results into a pre-sized slot vector
//! behind a mutex (taken once per job completion — the hot path, the
//! simulation itself, holds no locks).
//!
//! Determinism: the job function receives only its job description
//! (which embeds a [`minim_geom::sample::child_seed`]-derived seed), so
//! results are independent of scheduling and worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `jobs` on `workers` threads, preserving input order
/// in the output. `workers == 0` or `1` runs inline (useful for tests
/// and debugging).
pub fn parallel_map<T, R, F>(jobs: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = f(&jobs[i]);
                slots.lock().expect("slot lock poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("slot lock poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job filled its slot"))
        .collect()
}

/// A sensible worker count: available parallelism, capped at 16 to
/// avoid oversubscription on shared runners.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = parallel_map(&jobs, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let jobs: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| {
            // A job with some data dependence on the seed.
            let mut acc = x;
            for _ in 0..1000 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let serial = parallel_map(&jobs, 1, f);
        let parallel = parallel_map(&jobs, 8, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_jobs() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![1, 2, 3];
        assert_eq!(parallel_map(&jobs, 64, |&x| x), jobs);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(default_workers() <= 16);
    }
}
