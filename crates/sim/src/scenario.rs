//! The declarative scenario lab: [`ScenarioSpec`] describes an
//! experiment — topology family, range distribution, event phases,
//! strategy set, sweep axis — and [`Scenario::run`] lowers it onto the
//! delta-driven [`run_events`] / [`parallel_map`] machinery, returning a
//! typed [`SweepResult`] exportable as a [`Table`], CSV, or JSON.
//!
//! The paper's Fig 10–12 sweeps are presets of this subsystem (see
//! [`crate::presets`] and the thin wrappers in
//! [`crate::experiments`]); new regimes — clustered deployments,
//! heterogeneous ranges, interleaved join/leave/move churn, corridors
//! with obstacles — are specs too, so every future workload is a
//! declaration rather than a hand-coded driver.
//!
//! # Determinism
//!
//! A spec plus a master seed fully determines the result: replicate
//! `rep` of sweep point `pi` always runs with
//! `child_seed(seed, (pi << 32) | rep)`, whether it executes serially
//! or on a worker pool, so [`SweepResult`]s are bit-identical across
//! worker counts and repeated runs.

use crate::json::{self, Json};
use crate::metrics::{Stats, Table};
use crate::par::{default_workers, parallel_map};
use crate::runner::{
    run_events, run_events_batched, Execution, ResidentExecutor, ShardHealth, ValidationMode,
};
use minim_core::StrategyKind;
use minim_geom::sample::child_seed;
use minim_geom::{sample, Point, Rect, Segment};
use minim_net::event::{apply_topology, Event};
use minim_net::workload::{
    MixWorkload, MovementWorkload, Placement, PowerRaiseWorkload, RangeDist,
};
use minim_net::Network;
use minim_power::driver::ReceiverPolicy;
use minim_power::{PowerLadder, PowerLoop, PowerLoopConfig, PowerSession};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::time::{Duration, Instant};

/// Shared run parameters: replicate count, master seed, worker pool
/// size. The spec's own `runs`/`seed` are defaults; the caller (CLI,
/// tests, figure wrappers) builds one of these to actually execute.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Replicates per sweep point (paper: 100).
    pub runs: usize,
    /// Master seed; every replicate derives a child seed from it.
    pub seed: u64,
    /// Worker threads for the replicate fan-out.
    pub workers: usize,
    /// How each replicate's event stream executes. [`Execution::Batched`]
    /// parallelizes *within* one replicate (conflict-free event waves;
    /// bit-identical results) — the right knob when replicates are few
    /// and huge, as in the `metropolis` preset; the replicate fan-out
    /// above stays governed by `workers` either way.
    pub execution: Execution,
}

impl ExperimentConfig {
    /// The paper's protocol: 100 runs per point.
    pub fn paper() -> Self {
        ExperimentConfig {
            runs: 100,
            seed: 0x2001_0113, // January 2001, the TR date
            workers: default_workers(),
            execution: Execution::Sequential,
        }
    }

    /// A fast configuration for smoke tests and CI.
    pub fn quick() -> Self {
        ExperimentConfig {
            runs: 8,
            seed: 0x2001_0113,
            workers: default_workers(),
            execution: Execution::Sequential,
        }
    }

    /// This configuration with the given [`Execution`].
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// The replicate seed for `(point, rep)` — scheduling-independent,
    /// so parallel and serial sweeps agree bit for bit.
    pub fn replicate_seed(&self, point: usize, rep: usize) -> u64 {
        child_seed(self.seed, ((point as u64) << 32) | rep as u64)
    }
}

/// How node positions are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyFamily {
    /// Positions uniform over the arena — the paper's §5 deployment.
    Uniform,
    /// Poisson-clustered: `clusters` centers uniform in the arena per
    /// replicate, members gaussian around a random center with the
    /// given per-axis `spread`.
    Clustered {
        /// Number of cluster centers drawn per replicate.
        clusters: usize,
        /// Per-axis standard deviation of member scatter.
        spread: f64,
    },
    /// A corridor blocked by `walls` evenly spaced opaque walls, each
    /// pierced by one door of half-height `door` at a random height.
    /// Placement stays uniform; the walls sever line-of-sight links.
    Corridor {
        /// Number of interior walls.
        walls: usize,
        /// Door half-height (arena units).
        door: f64,
    },
}

impl TopologyFamily {
    /// Lowers the family to concrete obstacles plus a [`Placement`],
    /// consuming replicate randomness for cluster centers / door
    /// heights.
    fn deploy<R: rand::Rng + ?Sized>(
        &self,
        arena: &Rect,
        rng: &mut R,
    ) -> (Vec<Segment>, Placement) {
        match *self {
            TopologyFamily::Uniform => (Vec::new(), Placement::Uniform { arena: *arena }),
            TopologyFamily::Clustered { clusters, spread } => {
                let centers: Vec<Point> = (0..clusters)
                    .map(|_| sample::uniform_point(rng, arena))
                    .collect();
                (
                    Vec::new(),
                    Placement::Clustered {
                        centers,
                        spread,
                        arena: *arena,
                    },
                )
            }
            TopologyFamily::Corridor { walls, door } => {
                let mut segments = Vec::with_capacity(walls * 2);
                for i in 0..walls {
                    let x = arena.min_x + arena.width() * (i + 1) as f64 / (walls + 1) as f64;
                    let cy = rng.gen_range(arena.min_y + door..=arena.max_y - door);
                    segments.push(Segment::new(
                        Point::new(x, arena.min_y),
                        Point::new(x, cy - door),
                    ));
                    segments.push(Segment::new(
                        Point::new(x, cy + door),
                        Point::new(x, arena.max_y),
                    ));
                }
                (segments, Placement::Uniform { arena: *arena })
            }
        }
    }
}

/// One phase of a scenario: a homogeneous batch of events generated
/// against the evolving (ghost) topology and replayed identically
/// through every strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseSpec {
    /// `count` consecutive joins (positions from the spec's topology,
    /// ranges from its range distribution) — §5.1.
    Join {
        /// Number of joins.
        count: usize,
    },
    /// A fraction of the present nodes multiply their range — §5.2.
    PowerRaise {
        /// Fraction of nodes raised (paper: 0.5).
        fraction: f64,
        /// Multiplicative raise factor (≥ 1).
        factor: f64,
    },
    /// `rounds` movement rounds; each round moves every node once by a
    /// displacement uniform in `[0, maxdisp]` — §5.3.
    Movement {
        /// Number of rounds.
        rounds: usize,
        /// Maximum displacement per move.
        maxdisp: f64,
    },
    /// `steps` interleaved events: join / leave / single-node move,
    /// drawn per step — the churn regime the paper never measures.
    Mix {
        /// Number of steps.
        steps: usize,
        /// Probability a step is a join.
        join_prob: f64,
        /// Probability a step is a departure.
        leave_prob: f64,
        /// Maximum displacement of a move step.
        maxdisp: f64,
    },
    /// One closed-loop power-control pass (`minim-power`): every node
    /// drives its uplink to `target_sinr` via the Foschini–Miljanic
    /// iteration, and the converged powers are lowered to *endogenous*
    /// set-range events (plus leaves for infeasible nodes when
    /// `drop_infeasible`). The loop is deterministic — it consumes no
    /// replicate randomness.
    PowerControl {
        /// Target SINR `γ` (linear, > 0).
        target_sinr: f64,
        /// Discrete power-ladder rungs; `0` = continuous loop,
        /// otherwise ≥ 2 geometrically spaced levels.
        ladder: usize,
        /// Lower power-capped (infeasible) nodes to leave events
        /// instead of clamping them at the range cap.
        drop_infeasible: bool,
        /// Receiver policy: `0` = every node uplinks to its nearest
        /// neighbor (ad-hoc mesh); `k ≥ 1` = every `k`-th node is a
        /// shared sink (the cellular near-far regime, where powers
        /// couple hard and high targets go infeasible).
        sink_every: usize,
    },
    /// Interleaved join / leave / move churn with the power loop held
    /// *closed* throughout: a [`minim_power::PowerSession`] patches its
    /// SINR field per event and re-settles every `slice` steps, so the
    /// stream mixes exogenous topology churn with the endogenous
    /// set-range corrections the continuous Foschini–Miljanic loop
    /// emits while tracking its equilibrium.
    PowerChurn {
        /// Number of churn steps.
        steps: usize,
        /// Probability a step is a join.
        join_prob: f64,
        /// Probability a step is a departure.
        leave_prob: f64,
        /// Maximum displacement of a move step.
        maxdisp: f64,
        /// Target SINR `γ` (linear, > 0) of the continuous loop.
        target_sinr: f64,
        /// Steps between settles (≥ 1); the loop also settles once at
        /// the end of the phase.
        slice: usize,
        /// Worker threads for the session's island-parallel settles
        /// (≥ 1; `1` = inline). Any value produces bit-identical
        /// results — the knob trades wall-clock only, so sweeps stay
        /// reproducible across machines and thread counts.
        workers: usize,
    },
}

/// What the per-point metrics mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Report absolute end-of-measured-phase values (Fig 10 style):
    /// max color index and total recodings.
    Absolute,
    /// Report deltas against the state after the base phases
    /// (Fig 11/12 style): Δ max color index, recodings during the
    /// measured phases.
    DeltaFromBase,
}

impl Measure {
    fn color_metric(self, color: f64, base: f64) -> f64 {
        match self {
            Measure::Absolute => color,
            Measure::DeltaFromBase => color - base,
        }
    }

    fn color_label(self) -> &'static str {
        match self {
            Measure::Absolute => "max color index",
            Measure::DeltaFromBase => "delta max color index",
        }
    }

    fn recoding_label(self) -> &'static str {
        match self {
            Measure::Absolute => "total recodings",
            Measure::DeltaFromBase => "delta recodings",
        }
    }
}

/// The swept parameter: which knob varies across sweep points and the
/// values it takes.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Sweep the `count` of every measured [`PhaseSpec::Join`] phase.
    JoinCount(Vec<usize>),
    /// Sweep the average transmission range: each value `r` replaces
    /// the spec's range distribution by the paper's width-5 interval
    /// `((r − 2.5).max(0), r + 2.5)`.
    AvgRange(Vec<f64>),
    /// Sweep the `factor` of every measured [`PhaseSpec::PowerRaise`].
    RaiseFactor(Vec<f64>),
    /// Sweep the `maxdisp` of every measured [`PhaseSpec::Movement`].
    MaxDisp(Vec<f64>),
    /// Report after every round of the single measured
    /// [`PhaseSpec::Movement`] phase, overriding its round count: one
    /// replicate yields all points `1..=max` cumulatively (§5.3's
    /// `RoundNo` sweep).
    Rounds(usize),
    /// Sweep the `steps` of every measured [`PhaseSpec::Mix`] phase.
    MixSteps(Vec<usize>),
    /// Sweep the `long_fraction` of a heterogeneous range
    /// distribution.
    LongFraction(Vec<f64>),
    /// Sweep the `target_sinr` of every measured
    /// [`PhaseSpec::PowerControl`] and [`PhaseSpec::PowerChurn`] phase.
    TargetSinr(Vec<f64>),
    /// No sweep: a single point at `x = 0`.
    Single,
}

impl SweepAxis {
    /// The x-axis label used in tables and exports.
    pub fn x_label(&self) -> &'static str {
        match self {
            SweepAxis::JoinCount(_) => "N",
            SweepAxis::AvgRange(_) => "avgR",
            SweepAxis::RaiseFactor(_) => "raisefactor",
            SweepAxis::MaxDisp(_) => "maxdisp",
            SweepAxis::Rounds(_) => "RoundNo",
            SweepAxis::MixSteps(_) => "steps",
            SweepAxis::LongFraction(_) => "longfrac",
            SweepAxis::TargetSinr(_) => "targetSINR",
            SweepAxis::Single => "x",
        }
    }
}

/// A declarative experiment: *what* to run, not *how*.
///
/// Build one with the consuming setter methods, run it through
/// [`Scenario::run`], or serialize it to a JSON spec file for
/// `minim-lab`:
///
/// ```
/// use minim_sim::scenario::{
///     ExperimentConfig, Measure, PhaseSpec, Scenario, ScenarioSpec, SweepAxis,
/// };
///
/// let spec = ScenarioSpec::new("drift")
///     .summary("one movement round after a small join phase")
///     .base_phase(PhaseSpec::Join { count: 15 })
///     .measured_phase(PhaseSpec::Movement { rounds: 1, maxdisp: 20.0 })
///     .measure(Measure::DeltaFromBase)
///     .sweep(SweepAxis::MaxDisp(vec![10.0, 30.0]));
///
/// // Round-trips through JSON…
/// let same = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
/// assert_eq!(spec, same);
///
/// // …and runs deterministically.
/// let cfg = ExperimentConfig { runs: 2, seed: 7, ..ExperimentConfig::quick() };
/// let result = Scenario::new(spec).unwrap().run(&cfg);
/// assert_eq!(result.points.len(), 2);
/// assert_eq!(result.strategies, vec!["Minim", "CP", "BBB"]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Identifier (kebab-case by convention; used for filenames).
    pub name: String,
    /// One-line description for the preset catalog.
    pub summary: String,
    /// Deployment arena (paper default `[0,100]²`).
    pub arena: Rect,
    /// Node-position family.
    pub topology: TopologyFamily,
    /// Transmission-range distribution of joiners.
    pub ranges: RangeDist,
    /// Strategies to compare (paper order: Minim, CP, BBB).
    pub strategies: Vec<StrategyKind>,
    /// Unmeasured setup phases (e.g. the join phase Fig 11/12 build
    /// their base network with).
    pub base: Vec<PhaseSpec>,
    /// Measured phases; metrics cover exactly these.
    pub measured: Vec<PhaseSpec>,
    /// Whether metrics are absolute or deltas from the post-base state.
    pub measure: Measure,
    /// The swept parameter.
    pub sweep: SweepAxis,
    /// Default replicate count (overridable at run time).
    pub runs: usize,
    /// Default master seed (overridable at run time).
    pub seed: u64,
}

impl ScenarioSpec {
    /// A new spec with the paper's defaults: uniform topology over the
    /// `[0,100]²` arena, ranges uniform in `(20.5, 30.5)`, all three
    /// strategies, absolute measurement, no sweep, 100 runs.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            summary: String::new(),
            arena: Rect::paper_arena(),
            topology: TopologyFamily::Uniform,
            ranges: RangeDist::paper(),
            strategies: StrategyKind::ALL.to_vec(),
            base: Vec::new(),
            measured: Vec::new(),
            measure: Measure::Absolute,
            sweep: SweepAxis::Single,
            runs: 100,
            seed: 0x2001_0113,
        }
    }

    /// Sets the one-line description.
    pub fn summary(mut self, s: impl Into<String>) -> Self {
        self.summary = s.into();
        self
    }

    /// Sets the arena.
    pub fn arena(mut self, arena: Rect) -> Self {
        self.arena = arena;
        self
    }

    /// Sets the topology family.
    pub fn topology(mut self, t: TopologyFamily) -> Self {
        self.topology = t;
        self
    }

    /// Sets the range distribution.
    pub fn ranges(mut self, r: RangeDist) -> Self {
        self.ranges = r;
        self
    }

    /// Sets the strategy set.
    pub fn strategies(mut self, s: Vec<StrategyKind>) -> Self {
        self.strategies = s;
        self
    }

    /// Appends an unmeasured setup phase.
    pub fn base_phase(mut self, p: PhaseSpec) -> Self {
        self.base.push(p);
        self
    }

    /// Appends a measured phase.
    pub fn measured_phase(mut self, p: PhaseSpec) -> Self {
        self.measured.push(p);
        self
    }

    /// Sets the measurement mode.
    pub fn measure(mut self, m: Measure) -> Self {
        self.measure = m;
        self
    }

    /// Sets the sweep axis.
    pub fn sweep(mut self, s: SweepAxis) -> Self {
        self.sweep = s;
        self
    }

    /// Sets the default replicate count.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the default master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The run configuration this spec asks for by default.
    pub fn default_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            runs: self.runs,
            seed: self.seed,
            workers: default_workers(),
            execution: Execution::Sequential,
        }
    }
}

/// A spec rejected by [`Scenario::new`] or a failed spec-file parse,
/// with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn spec_err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// A validated, runnable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
}

/// Progress of a running sweep, reported after each resolved sweep
/// point completes.
#[derive(Debug, Clone, Copy)]
pub struct SweepProgress {
    /// Resolved points finished so far (1-based).
    pub done: usize,
    /// Total resolved points in the sweep.
    pub total: usize,
    /// The finished point's sweep value.
    pub x: f64,
    /// Replicates per point.
    pub replicates: usize,
    /// Wall-clock time since the sweep started.
    pub elapsed: Duration,
}

/// One sweep point with the measured event count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Sweep value (`N`, `avgR`, `raisefactor`, `maxdisp`, `RoundNo`, …).
    pub x: f64,
    /// Per-strategy color metric (absolute or Δ per the spec).
    pub colors: Vec<Stats>,
    /// Per-strategy recoding metric.
    pub recodings: Vec<Stats>,
    /// Events executed up to this report, summed over replicates.
    pub events: u64,
}

/// The typed result of a sweep.
///
/// Equality ignores [`SweepResult::wall_clock`] (profiling metadata,
/// the only nondeterministic field); everything else is bit-identical
/// across worker counts and repeated runs with the same seed.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Spec name.
    pub scenario: String,
    /// X-axis label from the sweep axis.
    pub x_label: String,
    /// Measurement mode.
    pub measure: Measure,
    /// Strategy display labels in column order.
    pub strategies: Vec<String>,
    /// Replicates per point.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// One entry per sweep point (per round for a `Rounds` sweep).
    pub points: Vec<SweepPoint>,
    /// Events executed across the whole sweep (all replicates).
    pub total_events: u64,
    /// Wall-clock duration of the sweep (not part of equality).
    pub wall_clock: Duration,
    /// Resident-path partition health, merged over every resident run
    /// of the sweep (all points × replicates × strategies); `None`
    /// when nothing ran on [`Execution::Resident`]. The counters are
    /// derived from routing and topology alone, so they are
    /// bit-identical across worker counts (`ShardHealth`'s equality
    /// already excludes the throughput field).
    pub shard_health: Option<ShardHealth>,
    /// A snapshot of the minim-obs registry taken when the sweep
    /// finished — counters, gauges, and latency histograms from every
    /// instrumented subsystem the sweep exercised. Observability
    /// metadata like [`SweepResult::wall_clock`]: excluded from
    /// equality (latencies are machine noise, and the process-global
    /// registry may carry counts from concurrent sweeps), and stripped
    /// by the determinism suites before byte comparison.
    pub metrics: minim_obs::MetricsSnapshot,
}

impl PartialEq for SweepResult {
    fn eq(&self, other: &Self) -> bool {
        self.scenario == other.scenario
            && self.x_label == other.x_label
            && self.measure == other.measure
            && self.strategies == other.strategies
            && self.runs == other.runs
            && self.seed == other.seed
            && self.points == other.points
            && self.total_events == other.total_events
    }
}

impl SweepResult {
    /// The color metric as a renderable [`Table`] with a custom title.
    pub fn color_table(&self, title: impl Into<String>) -> Table {
        let mut t = Table::new(title, self.x_label.clone(), self.strategies.clone());
        for p in &self.points {
            t.push_row(p.x, p.colors.clone());
        }
        t
    }

    /// The recoding metric as a renderable [`Table`] with a custom
    /// title.
    pub fn recoding_table(&self, title: impl Into<String>) -> Table {
        let mut t = Table::new(title, self.x_label.clone(), self.strategies.clone());
        for p in &self.points {
            t.push_row(p.x, p.recodings.clone());
        }
        t
    }

    /// Both metric tables with default titles derived from the spec.
    pub fn tables(&self) -> (Table, Table) {
        (
            self.color_table(format!(
                "{}: {} vs {}",
                self.scenario,
                self.measure.color_label(),
                self.x_label
            )),
            self.recoding_table(format!(
                "{}: {} vs {}",
                self.scenario,
                self.measure.recoding_label(),
                self.x_label
            )),
        )
    }

    /// One CSV covering both metrics:
    /// `x,<S> colors mean,<S> colors std,…,<S> recodings mean,…,events`.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.strategies {
            let _ = write!(out, ",{s} colors mean,{s} colors std");
        }
        for s in &self.strategies {
            let _ = write!(out, ",{s} recodings mean,{s} recodings std");
        }
        let _ = writeln!(out, ",events");
        for p in &self.points {
            let _ = write!(out, "{}", p.x);
            for v in &p.colors {
                let _ = write!(out, ",{},{}", v.mean, v.std);
            }
            for v in &p.recodings {
                let _ = write!(out, ",{},{}", v.mean, v.std);
            }
            let _ = writeln!(out, ",{}", p.events);
        }
        out
    }

    /// The result as a JSON document.
    pub fn to_json(&self) -> Json {
        fn stats(s: &Stats) -> Json {
            Json::obj(vec![
                ("mean", Json::Num(s.mean)),
                ("std", Json::Num(s.std)),
                ("min", Json::Num(s.min)),
                ("max", Json::Num(s.max)),
                ("n", Json::Num(s.n as f64)),
            ])
        }
        Json::obj(vec![
            ("scenario", Json::Str(self.scenario.clone())),
            ("x_label", Json::Str(self.x_label.clone())),
            (
                "measure",
                Json::Str(
                    match self.measure {
                        Measure::Absolute => "absolute",
                        Measure::DeltaFromBase => "delta-from-base",
                    }
                    .into(),
                ),
            ),
            (
                "strategies",
                Json::Arr(
                    self.strategies
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("runs", Json::Num(self.runs as f64)),
            ("seed", seed_to_json(self.seed)),
            ("total_events", Json::Num(self.total_events as f64)),
            (
                "wall_clock_ms",
                Json::Num(self.wall_clock.as_secs_f64() * 1e3),
            ),
            (
                "shard_health",
                match &self.shard_health {
                    None => Json::Null,
                    Some(h) => Json::obj(vec![
                        ("shards", Json::Num(h.shards as f64)),
                        ("widest_shard", Json::Num(h.widest_shard as f64)),
                        ("border_events", Json::Num(h.border_events as f64)),
                        ("events", Json::Num(h.events as f64)),
                        ("border_fraction", Json::Num(h.border_fraction())),
                        ("events_per_sec", Json::Num(h.events_per_sec)),
                    ]),
                },
            ),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("x", Json::Num(p.x)),
                                ("events", Json::Num(p.events as f64)),
                                ("colors", Json::Arr(p.colors.iter().map(stats).collect())),
                                (
                                    "recodings",
                                    Json::Arr(p.recodings.iter().map(stats).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics", crate::trace::metrics_to_json(&self.metrics)),
        ])
    }

    /// The result as a pretty-printed JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

/// One sweep point after axis substitution: the concrete phases to
/// generate and run.
#[derive(Debug, Clone)]
struct PointPlan {
    x: f64,
    ranges: RangeDist,
    base: Vec<PhaseSpec>,
    measured: Vec<PhaseSpec>,
}

/// Everything one replicate reports.
struct ReplicateOutcome {
    /// `[strategy][report] = (color metric, recodings)`.
    per_strategy: Vec<Vec<(f64, f64)>>,
    /// Events executed up to each report (base phases included).
    per_report_events: Vec<u64>,
    /// Events executed over the whole replicate.
    total_events: u64,
    /// Merged resident-path health across every strategy run of the
    /// replicate (`None` when nothing ran resident). Routing is
    /// color-blind, so the counters are identical across strategies —
    /// merging loses nothing.
    shard_health: Option<ShardHealth>,
}

impl Scenario {
    /// Validates a spec. Rejections name the offending field.
    pub fn new(spec: ScenarioSpec) -> Result<Scenario, SpecError> {
        if spec.name.is_empty() {
            return spec_err("name must be non-empty");
        }
        if spec.arena.width() <= 0.0 || spec.arena.height() <= 0.0 {
            return spec_err("arena must have positive extent");
        }
        if spec.strategies.is_empty() {
            return spec_err("strategy set must be non-empty");
        }
        if spec.measured.is_empty() {
            return spec_err("at least one measured phase is required");
        }
        if spec.runs == 0 {
            return spec_err("runs must be >= 1");
        }
        match spec.topology {
            TopologyFamily::Uniform => {}
            TopologyFamily::Clustered { clusters, spread } => {
                if clusters == 0 {
                    return spec_err("clustered topology needs >= 1 cluster");
                }
                if spread < 0.0 {
                    return spec_err("cluster spread must be non-negative");
                }
            }
            TopologyFamily::Corridor { walls, door } => {
                if walls == 0 {
                    return spec_err("corridor topology needs >= 1 wall");
                }
                if door <= 0.0 || 2.0 * door >= spec.arena.height() {
                    return spec_err("corridor door must fit inside the arena height");
                }
            }
        }
        match spec.ranges {
            RangeDist::Interval { minr, maxr } => {
                if !(0.0 <= minr && minr <= maxr) {
                    return spec_err(format!("invalid range interval ({minr}, {maxr})"));
                }
            }
            RangeDist::Heterogeneous {
                short,
                long,
                long_fraction,
            } => {
                for (lo, hi) in [short, long] {
                    if !(0.0 <= lo && lo <= hi) {
                        return spec_err(format!("invalid range interval ({lo}, {hi})"));
                    }
                }
                if !(0.0..=1.0).contains(&long_fraction) {
                    return spec_err("long_fraction must be in [0, 1]");
                }
            }
        }
        for phase in spec.base.iter().chain(&spec.measured) {
            match *phase {
                PhaseSpec::Join { .. } => {}
                PhaseSpec::PowerRaise { fraction, factor } => {
                    if !(0.0..=1.0).contains(&fraction) {
                        return spec_err("power-raise fraction must be in [0, 1]");
                    }
                    if factor < 1.0 {
                        return spec_err("power-raise factor must be >= 1");
                    }
                }
                PhaseSpec::Movement { rounds, maxdisp } => {
                    if rounds == 0 {
                        return spec_err("movement phase needs >= 1 round");
                    }
                    if maxdisp < 0.0 {
                        return spec_err("maxdisp must be non-negative");
                    }
                }
                PhaseSpec::Mix {
                    join_prob,
                    leave_prob,
                    maxdisp,
                    ..
                } => {
                    if join_prob < 0.0 || leave_prob < 0.0 || join_prob + leave_prob > 1.0 {
                        return spec_err("mix probabilities must be >= 0 and sum to <= 1");
                    }
                    if maxdisp < 0.0 {
                        return spec_err("maxdisp must be non-negative");
                    }
                }
                PhaseSpec::PowerControl {
                    target_sinr,
                    ladder,
                    ..
                } => {
                    if !(target_sinr.is_finite() && target_sinr > 0.0) {
                        return spec_err("power-control target SINR must be positive");
                    }
                    if ladder == 1 {
                        return spec_err(
                            "power-control ladder needs >= 2 levels (or 0 for continuous)",
                        );
                    }
                }
                PhaseSpec::PowerChurn {
                    join_prob,
                    leave_prob,
                    maxdisp,
                    target_sinr,
                    slice,
                    workers,
                    ..
                } => {
                    if join_prob < 0.0 || leave_prob < 0.0 || join_prob + leave_prob > 1.0 {
                        return spec_err("power-churn probabilities must be >= 0 and sum to <= 1");
                    }
                    if maxdisp < 0.0 {
                        return spec_err("maxdisp must be non-negative");
                    }
                    if !(target_sinr.is_finite() && target_sinr > 0.0) {
                        return spec_err("power-churn target SINR must be positive");
                    }
                    if slice == 0 {
                        return spec_err("power-churn slice must be >= 1");
                    }
                    if workers == 0 {
                        return spec_err("power-churn workers must be >= 1");
                    }
                }
            }
        }
        let has = |pred: fn(&PhaseSpec) -> bool| spec.measured.iter().any(pred);
        match &spec.sweep {
            SweepAxis::JoinCount(vs) => {
                if vs.is_empty() {
                    return spec_err("sweep needs >= 1 value");
                }
                if !has(|p| matches!(p, PhaseSpec::Join { .. })) {
                    return spec_err("join-count sweep needs a measured join phase");
                }
            }
            SweepAxis::AvgRange(vs) => {
                if vs.is_empty() {
                    return spec_err("sweep needs >= 1 value");
                }
                if vs.iter().any(|&v| v < 0.0) {
                    return spec_err("average ranges must be non-negative");
                }
            }
            SweepAxis::RaiseFactor(vs) => {
                if vs.is_empty() {
                    return spec_err("sweep needs >= 1 value");
                }
                if vs.iter().any(|&v| v < 1.0) {
                    return spec_err("raise factors must be >= 1");
                }
                if !has(|p| matches!(p, PhaseSpec::PowerRaise { .. })) {
                    return spec_err("raise-factor sweep needs a measured power-raise phase");
                }
            }
            SweepAxis::MaxDisp(vs) => {
                if vs.is_empty() {
                    return spec_err("sweep needs >= 1 value");
                }
                if vs.iter().any(|&v| v < 0.0) {
                    return spec_err("maxdisp values must be non-negative");
                }
                if !has(|p| matches!(p, PhaseSpec::Movement { .. })) {
                    return spec_err("max-disp sweep needs a measured movement phase");
                }
            }
            SweepAxis::Rounds(max) => {
                if *max == 0 {
                    return spec_err("rounds sweep needs max >= 1");
                }
                let movements = spec
                    .measured
                    .iter()
                    .filter(|p| matches!(p, PhaseSpec::Movement { .. }))
                    .count();
                if movements != 1 || spec.measured.len() != 1 {
                    return spec_err(
                        "rounds sweep needs exactly one measured phase, a movement phase",
                    );
                }
            }
            SweepAxis::MixSteps(vs) => {
                if vs.is_empty() {
                    return spec_err("sweep needs >= 1 value");
                }
                if !has(|p| matches!(p, PhaseSpec::Mix { .. })) {
                    return spec_err("mix-steps sweep needs a measured mix phase");
                }
            }
            SweepAxis::LongFraction(vs) => {
                if vs.is_empty() {
                    return spec_err("sweep needs >= 1 value");
                }
                if vs.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
                    return spec_err("long fractions must be in [0, 1]");
                }
                if !matches!(spec.ranges, RangeDist::Heterogeneous { .. }) {
                    return spec_err(
                        "long-fraction sweep needs a heterogeneous range distribution",
                    );
                }
            }
            SweepAxis::TargetSinr(vs) => {
                if vs.is_empty() {
                    return spec_err("sweep needs >= 1 value");
                }
                if vs.iter().any(|&v| !(v.is_finite() && v > 0.0)) {
                    return spec_err("target SINRs must be positive");
                }
                if !has(|p| {
                    matches!(
                        p,
                        PhaseSpec::PowerControl { .. } | PhaseSpec::PowerChurn { .. }
                    )
                }) {
                    return spec_err(
                        "target-SINR sweep needs a measured power-control or power-churn phase",
                    );
                }
            }
            SweepAxis::Single => {}
        }
        Ok(Scenario { spec })
    }

    /// The validated spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Runs the sweep.
    pub fn run(&self, cfg: &ExperimentConfig) -> SweepResult {
        self.run_with_progress(cfg, |_| {})
    }

    /// Runs the sweep, invoking `on_point` after each resolved sweep
    /// point completes (a `Rounds` sweep is one resolved point).
    pub fn run_with_progress(
        &self,
        cfg: &ExperimentConfig,
        mut on_point: impl FnMut(SweepProgress),
    ) -> SweepResult {
        assert!(cfg.runs >= 1, "need at least one replicate");
        let started = Instant::now();
        let spec = &self.spec;
        let plans = self.resolve_points();
        let per_round = matches!(spec.sweep, SweepAxis::Rounds(_));
        let mut points = Vec::new();
        let mut total_events = 0u64;
        let mut shard_health: Option<ShardHealth> = None;
        for (pi, plan) in plans.iter().enumerate() {
            let seeds: Vec<u64> = (0..cfg.runs)
                .map(|rep| cfg.replicate_seed(pi, rep))
                .collect();
            let outcomes = parallel_map(&seeds, cfg.workers, |&seed| {
                run_replicate(spec, plan, seed, per_round, cfg.execution)
            });
            let reports = outcomes[0].per_report_events.len();
            for r in 0..reports {
                let x = if per_round { (r + 1) as f64 } else { plan.x };
                let mut colors = Vec::with_capacity(spec.strategies.len());
                let mut recodings = Vec::with_capacity(spec.strategies.len());
                for si in 0..spec.strategies.len() {
                    let cs: Vec<f64> = outcomes.iter().map(|o| o.per_strategy[si][r].0).collect();
                    let rs: Vec<f64> = outcomes.iter().map(|o| o.per_strategy[si][r].1).collect();
                    colors.push(Stats::from_samples(&cs));
                    recodings.push(Stats::from_samples(&rs));
                }
                points.push(SweepPoint {
                    x,
                    colors,
                    recodings,
                    events: outcomes.iter().map(|o| o.per_report_events[r]).sum(),
                });
            }
            total_events += outcomes.iter().map(|o| o.total_events).sum::<u64>();
            for o in &outcomes {
                if let Some(h) = &o.shard_health {
                    shard_health
                        .get_or_insert_with(ShardHealth::default)
                        .absorb(h);
                }
            }
            on_point(SweepProgress {
                done: pi + 1,
                total: plans.len(),
                x: plan.x,
                replicates: cfg.runs,
                elapsed: started.elapsed(),
            });
        }
        SweepResult {
            scenario: spec.name.clone(),
            x_label: spec.sweep.x_label().to_string(),
            measure: spec.measure,
            strategies: spec.strategies.iter().map(|k| k.label().into()).collect(),
            runs: cfg.runs,
            seed: cfg.seed,
            points,
            total_events,
            wall_clock: started.elapsed(),
            shard_health,
            metrics: minim_obs::snapshot(),
        }
    }

    /// Substitutes each sweep value into the phases, yielding the
    /// concrete per-point plans.
    fn resolve_points(&self) -> Vec<PointPlan> {
        let spec = &self.spec;
        let plan = |x: f64| PointPlan {
            x,
            ranges: spec.ranges,
            base: spec.base.clone(),
            measured: spec.measured.clone(),
        };
        match &spec.sweep {
            SweepAxis::JoinCount(ns) => ns
                .iter()
                .map(|&n| {
                    let mut p = plan(n as f64);
                    for phase in &mut p.measured {
                        if let PhaseSpec::Join { count } = phase {
                            *count = n;
                        }
                    }
                    p
                })
                .collect(),
            SweepAxis::AvgRange(rs) => rs
                .iter()
                .map(|&r| {
                    let mut p = plan(r);
                    p.ranges = RangeDist::Interval {
                        minr: (r - 2.5).max(0.0),
                        maxr: r + 2.5,
                    };
                    p
                })
                .collect(),
            SweepAxis::RaiseFactor(fs) => fs
                .iter()
                .map(|&f| {
                    let mut p = plan(f);
                    for phase in &mut p.measured {
                        if let PhaseSpec::PowerRaise { factor, .. } = phase {
                            *factor = f;
                        }
                    }
                    p
                })
                .collect(),
            SweepAxis::MaxDisp(ds) => ds
                .iter()
                .map(|&d| {
                    let mut p = plan(d);
                    for phase in &mut p.measured {
                        if let PhaseSpec::Movement { maxdisp, .. } = phase {
                            *maxdisp = d;
                        }
                    }
                    p
                })
                .collect(),
            SweepAxis::Rounds(max) => {
                let mut p = plan(*max as f64);
                for phase in &mut p.measured {
                    if let PhaseSpec::Movement { rounds, .. } = phase {
                        *rounds = *max;
                    }
                }
                vec![p]
            }
            SweepAxis::MixSteps(ss) => ss
                .iter()
                .map(|&s| {
                    let mut p = plan(s as f64);
                    for phase in &mut p.measured {
                        if let PhaseSpec::Mix { steps, .. } = phase {
                            *steps = s;
                        }
                    }
                    p
                })
                .collect(),
            SweepAxis::LongFraction(fs) => fs
                .iter()
                .map(|&f| {
                    let mut p = plan(f);
                    if let RangeDist::Heterogeneous {
                        ref mut long_fraction,
                        ..
                    } = p.ranges
                    {
                        *long_fraction = f;
                    }
                    p
                })
                .collect(),
            SweepAxis::TargetSinr(gs) => gs
                .iter()
                .map(|&g| {
                    let mut p = plan(g);
                    for phase in &mut p.measured {
                        match phase {
                            PhaseSpec::PowerControl { target_sinr, .. }
                            | PhaseSpec::PowerChurn { target_sinr, .. } => *target_sinr = g,
                            _ => {}
                        }
                    }
                    p
                })
                .collect(),
            SweepAxis::Single => vec![plan(0.0)],
        }
    }
}

/// Generates one phase's events against the evolving ghost topology,
/// applying them as it goes. Movement phases yield one inner list per
/// round; everything else is a single round.
fn generate_phase(
    phase: &PhaseSpec,
    placement: &Placement,
    ranges: RangeDist,
    ghost: &mut Network,
    rng: &mut StdRng,
) -> Vec<Vec<Event>> {
    match *phase {
        PhaseSpec::Join { count } => {
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let e = Event::Join {
                    cfg: minim_net::NodeConfig::new(placement.sample(rng), ranges.sample(rng)),
                };
                apply_topology(ghost, &e);
                events.push(e);
            }
            vec![events]
        }
        PhaseSpec::PowerRaise { fraction, factor } => {
            let events = PowerRaiseWorkload {
                fraction,
                raisefactor: factor,
            }
            .generate(ghost, rng);
            for e in &events {
                apply_topology(ghost, e);
            }
            vec![events]
        }
        PhaseSpec::Movement { rounds, maxdisp } => {
            let workload = MovementWorkload {
                maxdisp,
                rounds: 1,
                arena: *placement.arena(),
            };
            (0..rounds)
                .map(|_| {
                    let events = workload.generate_round(ghost, rng);
                    for e in &events {
                        apply_topology(ghost, e);
                    }
                    events
                })
                .collect()
        }
        PhaseSpec::Mix {
            steps,
            join_prob,
            leave_prob,
            maxdisp,
        } => {
            let workload = MixWorkload {
                steps,
                join_prob,
                leave_prob,
                maxdisp,
                placement: placement.clone(),
                ranges,
            };
            let mut events = Vec::with_capacity(steps);
            for _ in 0..steps {
                let e = workload.next_event(ghost, rng);
                apply_topology(ghost, &e);
                events.push(e);
            }
            vec![events]
        }
        PhaseSpec::PowerControl {
            target_sinr,
            ladder,
            drop_infeasible,
            sink_every,
        } => {
            // The closed loop reads the ghost geometry and emits the
            // equilibrium as ordinary events — no randomness consumed,
            // so determinism across strategies/workers is structural.
            let mut cfg = PowerLoopConfig::for_range_scale(ranges.upper_bound().max(1.0));
            cfg.target_sinr = target_sinr;
            cfg.ladder = if ladder == 0 {
                PowerLadder::Continuous
            } else {
                PowerLadder::Geometric { levels: ladder }
            };
            cfg.drop_infeasible = drop_infeasible;
            cfg.receivers = if sink_every == 0 {
                ReceiverPolicy::NearestNeighbor
            } else {
                ReceiverPolicy::Sinks { every: sink_every }
            };
            let outcome = PowerLoop::new(cfg).run(ghost, &[]);
            for e in &outcome.events {
                apply_topology(ghost, e);
            }
            vec![outcome.events]
        }
        PhaseSpec::PowerChurn {
            steps,
            join_prob,
            leave_prob,
            maxdisp,
            target_sinr,
            slice,
            workers,
        } => {
            // Exogenous churn drawn like a Mix phase, but with the
            // continuous power loop held closed: an incremental
            // PowerSession patches its SINR field per event and every
            // `slice` steps re-settles from the warm equilibrium,
            // interleaving its set-range corrections into the stream.
            let workload = MixWorkload {
                steps,
                join_prob,
                leave_prob,
                maxdisp,
                placement: placement.clone(),
                ranges,
            };
            let mut cfg = PowerLoopConfig::for_range_scale(ranges.upper_bound().max(1.0));
            cfg.target_sinr = target_sinr;
            cfg.ladder = PowerLadder::Continuous;
            cfg.drop_infeasible = false;
            cfg.receivers = ReceiverPolicy::NearestNeighbor;
            let mut session = PowerSession::new(cfg, ghost);
            session.set_workers(workers);
            let mut events = Vec::with_capacity(steps);
            let settle =
                |session: &mut PowerSession, ghost: &mut Network, events: &mut Vec<Event>| {
                    let (corrections, _report) = session.settle();
                    for e in corrections {
                        apply_topology(ghost, e);
                        events.push(e.clone());
                    }
                };
            settle(&mut session, ghost, &mut events);
            for step in 0..steps {
                let e = workload.next_event(ghost, rng);
                match &e {
                    Event::Join { cfg } => {
                        let id = ghost.peek_next_id();
                        apply_topology(ghost, &e);
                        session.apply_join(id.0, cfg.pos, cfg.range);
                    }
                    Event::Leave { node } => {
                        apply_topology(ghost, &e);
                        session.apply_leave(node.0);
                    }
                    Event::Move { node, to } => {
                        apply_topology(ghost, &e);
                        session.apply_move(node.0, *to);
                    }
                    Event::SetRange { node, range } => {
                        apply_topology(ghost, &e);
                        session.note_range(node.0, *range);
                    }
                }
                events.push(e);
                if (step + 1) % slice == 0 {
                    settle(&mut session, ghost, &mut events);
                }
            }
            if steps % slice != 0 {
                settle(&mut session, ghost, &mut events);
            }
            vec![events]
        }
    }
}

/// Runs one round of events under the configured [`Execution`].
///
/// `resident` is the replicate's long-lived executor slot: it is
/// created on the first [`Execution::Resident`] round and reused for
/// every later round of the same strategy run, so shard state (and
/// its allocation discipline) survives across rounds and phases —
/// that persistence is the whole point of the resident path.
fn run_round(
    execution: Execution,
    resident: &mut Option<ResidentExecutor>,
    s: &mut (dyn minim_core::RecodingStrategy + Sync),
    net: &mut Network,
    round: &[Event],
) -> crate::runner::PhaseMetrics {
    match execution {
        Execution::Sequential => run_events(s, net, round),
        Execution::Batched { workers } => {
            run_events_batched(s, net, round, ValidationMode::Off, workers)
        }
        Execution::Resident { workers } => resident
            .get_or_insert_with(|| ResidentExecutor::new(workers))
            .run(s, net, round, ValidationMode::Off),
    }
}

/// Runs one replicate of one sweep point: generate every phase on a
/// ghost network (so all strategies replay identical randomness), then
/// run the phases through each strategy with a fresh strategy instance
/// per phase, reporting per the spec's measure.
fn run_replicate(
    spec: &ScenarioSpec,
    plan: &PointPlan,
    seed: u64,
    per_round: bool,
    execution: Execution,
) -> ReplicateOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let cell = plan.ranges.upper_bound().max(1.0);
    let (walls, placement) = spec.topology.deploy(&spec.arena, &mut rng);
    let mut ghost = Network::new(cell);
    for wall in &walls {
        ghost.add_obstacle(*wall);
    }
    let base_events: Vec<Vec<Vec<Event>>> = plan
        .base
        .iter()
        .map(|p| generate_phase(p, &placement, plan.ranges, &mut ghost, &mut rng))
        .collect();
    let measured_events: Vec<Vec<Vec<Event>>> = plan
        .measured
        .iter()
        .map(|p| generate_phase(p, &placement, plan.ranges, &mut ghost, &mut rng))
        .collect();

    let base_count: u64 = base_events
        .iter()
        .flatten()
        .map(|round| round.len() as u64)
        .sum();
    let mut per_report_events = Vec::new();
    let mut cum_events = base_count;
    for phase in &measured_events {
        for round in phase {
            cum_events += round.len() as u64;
            if per_round {
                per_report_events.push(cum_events);
            }
        }
    }
    if !per_round {
        per_report_events.push(cum_events);
    }

    let mut shard_health: Option<ShardHealth> = None;
    let absorb = |m: &crate::runner::PhaseMetrics, health: &mut Option<ShardHealth>| {
        if let Some(h) = &m.shard_health {
            health.get_or_insert_with(ShardHealth::default).absorb(h);
        }
    };
    let per_strategy: Vec<Vec<(f64, f64)>> = spec
        .strategies
        .iter()
        .map(|&kind| {
            let mut net = Network::new(cell);
            for wall in &walls {
                net.add_obstacle(*wall);
            }
            // One resident-executor slot per strategy run: the
            // network persists across phases, so the shard state can
            // too (strategy instances are rebuilt per phase, but the
            // executor only holds spatial state, never strategy
            // state).
            let mut resident: Option<ResidentExecutor> = None;
            for phase in &base_events {
                let mut s = kind.build();
                for round in phase {
                    let m = run_round(execution, &mut resident, &mut *s, &mut net, round);
                    absorb(&m, &mut shard_health);
                }
            }
            let base_color = net.max_color_index() as f64;
            let mut reports = Vec::new();
            let mut cum_recodings = 0.0;
            for phase in &measured_events {
                let mut s = kind.build();
                for round in phase {
                    let m = run_round(execution, &mut resident, &mut *s, &mut net, round);
                    absorb(&m, &mut shard_health);
                    cum_recodings += m.recodings as f64;
                    if per_round {
                        reports.push((
                            spec.measure.color_metric(m.max_color as f64, base_color),
                            cum_recodings,
                        ));
                    }
                }
            }
            if !per_round {
                reports.push((
                    spec.measure
                        .color_metric(net.max_color_index() as f64, base_color),
                    cum_recodings,
                ));
            }
            reports
        })
        .collect();

    ReplicateOutcome {
        per_strategy,
        per_report_events,
        total_events: cum_events,
        shard_health,
    }
}

// ---------------------------------------------------------------------
// JSON (de)serialization of specs
// ---------------------------------------------------------------------

fn strategy_name(kind: StrategyKind) -> &'static str {
    match kind {
        StrategyKind::Minim => "minim",
        StrategyKind::Cp => "cp",
        StrategyKind::Bbb => "bbb",
    }
}

fn strategy_from_name(name: &str) -> Result<StrategyKind, SpecError> {
    match name.to_ascii_lowercase().as_str() {
        "minim" => Ok(StrategyKind::Minim),
        "cp" => Ok(StrategyKind::Cp),
        "bbb" => Ok(StrategyKind::Bbb),
        other => spec_err(format!("unknown strategy {other:?} (minim|cp|bbb)")),
    }
}

fn phase_to_json(p: &PhaseSpec) -> Json {
    match *p {
        PhaseSpec::Join { count } => Json::obj(vec![
            ("phase", Json::Str("join".into())),
            ("count", Json::Num(count as f64)),
        ]),
        PhaseSpec::PowerRaise { fraction, factor } => Json::obj(vec![
            ("phase", Json::Str("power-raise".into())),
            ("fraction", Json::Num(fraction)),
            ("factor", Json::Num(factor)),
        ]),
        PhaseSpec::Movement { rounds, maxdisp } => Json::obj(vec![
            ("phase", Json::Str("movement".into())),
            ("rounds", Json::Num(rounds as f64)),
            ("maxdisp", Json::Num(maxdisp)),
        ]),
        PhaseSpec::Mix {
            steps,
            join_prob,
            leave_prob,
            maxdisp,
        } => Json::obj(vec![
            ("phase", Json::Str("mix".into())),
            ("steps", Json::Num(steps as f64)),
            ("join_prob", Json::Num(join_prob)),
            ("leave_prob", Json::Num(leave_prob)),
            ("maxdisp", Json::Num(maxdisp)),
        ]),
        PhaseSpec::PowerControl {
            target_sinr,
            ladder,
            drop_infeasible,
            sink_every,
        } => Json::obj(vec![
            ("phase", Json::Str("power-control".into())),
            ("target_sinr", Json::Num(target_sinr)),
            ("ladder", Json::Num(ladder as f64)),
            ("drop_infeasible", Json::Bool(drop_infeasible)),
            ("sink_every", Json::Num(sink_every as f64)),
        ]),
        PhaseSpec::PowerChurn {
            steps,
            join_prob,
            leave_prob,
            maxdisp,
            target_sinr,
            slice,
            workers,
        } => Json::obj(vec![
            ("phase", Json::Str("power-churn".into())),
            ("steps", Json::Num(steps as f64)),
            ("join_prob", Json::Num(join_prob)),
            ("leave_prob", Json::Num(leave_prob)),
            ("maxdisp", Json::Num(maxdisp)),
            ("target_sinr", Json::Num(target_sinr)),
            ("slice", Json::Num(slice as f64)),
            ("workers", Json::Num(workers as f64)),
        ]),
    }
}

fn get_num(v: &Json, key: &str) -> Result<f64, SpecError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| SpecError(format!("missing or non-numeric field {key:?}")))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, SpecError> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| SpecError(format!("field {key:?} must be a non-negative integer")))
}

fn phase_from_json(v: &Json) -> Result<PhaseSpec, SpecError> {
    let kind = v
        .get("phase")
        .and_then(Json::as_str)
        .ok_or_else(|| SpecError("phase object needs a \"phase\" string".into()))?;
    match kind {
        "join" => Ok(PhaseSpec::Join {
            count: get_usize(v, "count")?,
        }),
        "power-raise" => Ok(PhaseSpec::PowerRaise {
            fraction: get_num(v, "fraction")?,
            factor: get_num(v, "factor")?,
        }),
        "movement" => Ok(PhaseSpec::Movement {
            rounds: get_usize(v, "rounds")?,
            maxdisp: get_num(v, "maxdisp")?,
        }),
        "mix" => Ok(PhaseSpec::Mix {
            steps: get_usize(v, "steps")?,
            join_prob: get_num(v, "join_prob")?,
            leave_prob: get_num(v, "leave_prob")?,
            maxdisp: get_num(v, "maxdisp")?,
        }),
        "power-control" => Ok(PhaseSpec::PowerControl {
            target_sinr: get_num(v, "target_sinr")?,
            ladder: get_usize(v, "ladder")?,
            drop_infeasible: v
                .get("drop_infeasible")
                .map(|b| {
                    b.as_bool()
                        .ok_or_else(|| SpecError("drop_infeasible must be a boolean".into()))
                })
                .transpose()?
                .unwrap_or(false),
            sink_every: match v.get("sink_every") {
                Some(_) => get_usize(v, "sink_every")?,
                None => 0,
            },
        }),
        "power-churn" => Ok(PhaseSpec::PowerChurn {
            steps: get_usize(v, "steps")?,
            join_prob: get_num(v, "join_prob")?,
            leave_prob: get_num(v, "leave_prob")?,
            maxdisp: get_num(v, "maxdisp")?,
            target_sinr: get_num(v, "target_sinr")?,
            slice: match v.get("slice") {
                Some(_) => get_usize(v, "slice")?,
                None => 8,
            },
            workers: match v.get("workers") {
                Some(_) => get_usize(v, "workers")?,
                None => 1,
            },
        }),
        other => spec_err(format!(
            "unknown phase {other:?} (join|power-raise|movement|mix|power-control|power-churn)"
        )),
    }
}

fn values_f64(v: &Json) -> Result<Vec<f64>, SpecError> {
    let arr = v
        .get("values")
        .and_then(Json::as_arr)
        .filter(|a| !a.is_empty())
        .ok_or_else(|| SpecError("sweep needs a non-empty numeric \"values\" array".into()))?;
    arr.iter()
        .map(|entry| {
            entry.as_f64().ok_or_else(|| {
                SpecError(format!("non-numeric sweep value {entry:?} in \"values\""))
            })
        })
        .collect()
}

fn values_usize(v: &Json) -> Result<Vec<usize>, SpecError> {
    let arr = v
        .get("values")
        .and_then(Json::as_arr)
        .filter(|a| !a.is_empty())
        .ok_or_else(|| SpecError("sweep needs a non-empty integer \"values\" array".into()))?;
    arr.iter()
        .map(|entry| {
            entry.as_usize().ok_or_else(|| {
                SpecError(format!(
                    "sweep value {entry:?} in \"values\" is not a non-negative integer"
                ))
            })
        })
        .collect()
}

/// Serializes a `u64` seed: a JSON number when the double can hold it
/// exactly, a decimal string otherwise (doubles corrupt integers past
/// 2^53, and the whole determinism contract hangs off the seed).
fn seed_to_json(seed: u64) -> Json {
    if seed <= (1u64 << 53) {
        Json::Num(seed as f64)
    } else {
        Json::Str(seed.to_string())
    }
}

/// Parses a seed written by [`seed_to_json`] (number or decimal
/// string).
fn seed_from_json(v: &Json) -> Result<u64, SpecError> {
    match v {
        Json::Str(s) => s
            .parse::<u64>()
            .map_err(|_| SpecError(format!("seed string {s:?} is not a u64"))),
        _ => v
            .as_u64()
            .ok_or_else(|| SpecError("seed must be a non-negative integer".into())),
    }
}

impl ScenarioSpec {
    /// The spec as a JSON document (the `minim-lab` spec-file format).
    pub fn to_json(&self) -> Json {
        let topology = match self.topology {
            TopologyFamily::Uniform => Json::obj(vec![("family", Json::Str("uniform".into()))]),
            TopologyFamily::Clustered { clusters, spread } => Json::obj(vec![
                ("family", Json::Str("clustered".into())),
                ("clusters", Json::Num(clusters as f64)),
                ("spread", Json::Num(spread)),
            ]),
            TopologyFamily::Corridor { walls, door } => Json::obj(vec![
                ("family", Json::Str("corridor".into())),
                ("walls", Json::Num(walls as f64)),
                ("door", Json::Num(door)),
            ]),
        };
        let ranges = match self.ranges {
            RangeDist::Interval { minr, maxr } => Json::obj(vec![
                ("dist", Json::Str("interval".into())),
                ("minr", Json::Num(minr)),
                ("maxr", Json::Num(maxr)),
            ]),
            RangeDist::Heterogeneous {
                short,
                long,
                long_fraction,
            } => Json::obj(vec![
                ("dist", Json::Str("heterogeneous".into())),
                (
                    "short",
                    Json::Arr(vec![Json::Num(short.0), Json::Num(short.1)]),
                ),
                (
                    "long",
                    Json::Arr(vec![Json::Num(long.0), Json::Num(long.1)]),
                ),
                ("long_fraction", Json::Num(long_fraction)),
            ]),
        };
        let sweep = match &self.sweep {
            SweepAxis::JoinCount(vs) => Json::obj(vec![
                ("axis", Json::Str("join-count".into())),
                (
                    "values",
                    Json::Arr(vs.iter().map(|&v| Json::Num(v as f64)).collect()),
                ),
            ]),
            SweepAxis::AvgRange(vs) => Json::obj(vec![
                ("axis", Json::Str("avg-range".into())),
                (
                    "values",
                    Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()),
                ),
            ]),
            SweepAxis::RaiseFactor(vs) => Json::obj(vec![
                ("axis", Json::Str("raise-factor".into())),
                (
                    "values",
                    Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()),
                ),
            ]),
            SweepAxis::MaxDisp(vs) => Json::obj(vec![
                ("axis", Json::Str("max-disp".into())),
                (
                    "values",
                    Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()),
                ),
            ]),
            SweepAxis::Rounds(max) => Json::obj(vec![
                ("axis", Json::Str("rounds".into())),
                ("max", Json::Num(*max as f64)),
            ]),
            SweepAxis::MixSteps(vs) => Json::obj(vec![
                ("axis", Json::Str("mix-steps".into())),
                (
                    "values",
                    Json::Arr(vs.iter().map(|&v| Json::Num(v as f64)).collect()),
                ),
            ]),
            SweepAxis::LongFraction(vs) => Json::obj(vec![
                ("axis", Json::Str("long-fraction".into())),
                (
                    "values",
                    Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()),
                ),
            ]),
            SweepAxis::TargetSinr(vs) => Json::obj(vec![
                ("axis", Json::Str("target-sinr".into())),
                (
                    "values",
                    Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()),
                ),
            ]),
            SweepAxis::Single => Json::obj(vec![("axis", Json::Str("single".into()))]),
        };
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("summary", Json::Str(self.summary.clone())),
            (
                "arena",
                Json::Arr(vec![
                    Json::Num(self.arena.min_x),
                    Json::Num(self.arena.min_y),
                    Json::Num(self.arena.max_x),
                    Json::Num(self.arena.max_y),
                ]),
            ),
            ("topology", topology),
            ("ranges", ranges),
            (
                "strategies",
                Json::Arr(
                    self.strategies
                        .iter()
                        .map(|&k| Json::Str(strategy_name(k).into()))
                        .collect(),
                ),
            ),
            (
                "base",
                Json::Arr(self.base.iter().map(phase_to_json).collect()),
            ),
            (
                "measured",
                Json::Arr(self.measured.iter().map(phase_to_json).collect()),
            ),
            (
                "measure",
                Json::Str(
                    match self.measure {
                        Measure::Absolute => "absolute",
                        Measure::DeltaFromBase => "delta-from-base",
                    }
                    .into(),
                ),
            ),
            ("sweep", sweep),
            ("runs", Json::Num(self.runs as f64)),
            ("seed", seed_to_json(self.seed)),
        ])
    }

    /// The spec as a pretty-printed JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a spec from its JSON form. Missing optional fields fall
    /// back to the [`ScenarioSpec::new`] defaults; only `name` is
    /// required.
    pub fn from_json(v: &Json) -> Result<ScenarioSpec, SpecError> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError("spec needs a \"name\" string".into()))?;
        let mut spec = ScenarioSpec::new(name);
        if let Some(s) = v.get("summary").and_then(Json::as_str) {
            spec.summary = s.to_string();
        }
        if let Some(arena) = v.get("arena") {
            let coords = arena
                .as_arr()
                .filter(|a| a.len() == 4)
                .map(|a| a.iter().filter_map(Json::as_f64).collect::<Vec<f64>>())
                .filter(|c| c.len() == 4)
                .ok_or_else(|| SpecError("arena must be [min_x, min_y, max_x, max_y]".into()))?;
            if !(coords[0] < coords[2] && coords[1] < coords[3]) {
                return spec_err("arena must have positive extent");
            }
            spec.arena = Rect::new(coords[0], coords[1], coords[2], coords[3]);
        }
        if let Some(t) = v.get("topology") {
            let family = t
                .get("family")
                .and_then(Json::as_str)
                .ok_or_else(|| SpecError("topology needs a \"family\" string".into()))?;
            spec.topology = match family {
                "uniform" => TopologyFamily::Uniform,
                "clustered" => TopologyFamily::Clustered {
                    clusters: get_usize(t, "clusters")?,
                    spread: get_num(t, "spread")?,
                },
                "corridor" => TopologyFamily::Corridor {
                    walls: get_usize(t, "walls")?,
                    door: get_num(t, "door")?,
                },
                other => {
                    return spec_err(format!(
                        "unknown topology family {other:?} (uniform|clustered|corridor)"
                    ))
                }
            };
        }
        if let Some(r) = v.get("ranges") {
            let dist = r
                .get("dist")
                .and_then(Json::as_str)
                .ok_or_else(|| SpecError("ranges needs a \"dist\" string".into()))?;
            spec.ranges = match dist {
                "interval" => RangeDist::Interval {
                    minr: get_num(r, "minr")?,
                    maxr: get_num(r, "maxr")?,
                },
                "heterogeneous" => {
                    let pair = |key: &str| -> Result<(f64, f64), SpecError> {
                        r.get(key)
                            .and_then(Json::as_arr)
                            .filter(|a| a.len() == 2)
                            .and_then(|a| Some((a[0].as_f64()?, a[1].as_f64()?)))
                            .ok_or_else(|| SpecError(format!("field {key:?} must be [min, max]")))
                    };
                    RangeDist::Heterogeneous {
                        short: pair("short")?,
                        long: pair("long")?,
                        long_fraction: get_num(r, "long_fraction")?,
                    }
                }
                other => {
                    return spec_err(format!(
                        "unknown range dist {other:?} (interval|heterogeneous)"
                    ))
                }
            };
        }
        if let Some(s) = v.get("strategies") {
            let names = s
                .as_arr()
                .ok_or_else(|| SpecError("strategies must be an array".into()))?;
            spec.strategies = names
                .iter()
                .map(|n| {
                    n.as_str()
                        .ok_or_else(|| SpecError("strategy entries must be strings".into()))
                        .and_then(strategy_from_name)
                })
                .collect::<Result<_, _>>()?;
        }
        for (key, out) in [("base", true), ("measured", false)] {
            if let Some(list) = v.get(key) {
                let phases = list
                    .as_arr()
                    .ok_or_else(|| SpecError(format!("{key} must be an array")))?
                    .iter()
                    .map(phase_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                if out {
                    spec.base = phases;
                } else {
                    spec.measured = phases;
                }
            }
        }
        if let Some(m) = v.get("measure").and_then(Json::as_str) {
            spec.measure = match m {
                "absolute" => Measure::Absolute,
                "delta-from-base" | "delta" => Measure::DeltaFromBase,
                other => {
                    return spec_err(format!(
                        "unknown measure {other:?} (absolute|delta-from-base)"
                    ))
                }
            };
        }
        if let Some(s) = v.get("sweep") {
            let axis = s
                .get("axis")
                .and_then(Json::as_str)
                .ok_or_else(|| SpecError("sweep needs an \"axis\" string".into()))?;
            spec.sweep = match axis {
                "join-count" => SweepAxis::JoinCount(values_usize(s)?),
                "avg-range" => SweepAxis::AvgRange(values_f64(s)?),
                "raise-factor" => SweepAxis::RaiseFactor(values_f64(s)?),
                "max-disp" => SweepAxis::MaxDisp(values_f64(s)?),
                "rounds" => SweepAxis::Rounds(get_usize(s, "max")?),
                "mix-steps" => SweepAxis::MixSteps(values_usize(s)?),
                "long-fraction" => SweepAxis::LongFraction(values_f64(s)?),
                "target-sinr" => SweepAxis::TargetSinr(values_f64(s)?),
                "single" => SweepAxis::Single,
                other => return spec_err(format!("unknown sweep axis {other:?}")),
            };
        }
        if let Some(r) = v.get("runs") {
            spec.runs = r
                .as_usize()
                .ok_or_else(|| SpecError("runs must be a non-negative integer".into()))?;
        }
        if let Some(s) = v.get("seed") {
            spec.seed = seed_from_json(s)?;
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json_str(text: &str) -> Result<ScenarioSpec, SpecError> {
        let v = json::parse(text).map_err(|e| SpecError(format!("spec is not valid JSON: {e}")))?;
        ScenarioSpec::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            runs: 3,
            seed: 42,
            workers: 2,
            execution: Execution::Sequential,
        }
    }

    fn mix_spec() -> ScenarioSpec {
        ScenarioSpec::new("mix-lab")
            .topology(TopologyFamily::Clustered {
                clusters: 3,
                spread: 5.0,
            })
            .ranges(RangeDist::Heterogeneous {
                short: (10.0, 14.0),
                long: (25.0, 32.0),
                long_fraction: 0.2,
            })
            .base_phase(PhaseSpec::Join { count: 20 })
            .measured_phase(PhaseSpec::Mix {
                steps: 30,
                join_prob: 0.3,
                leave_prob: 0.3,
                maxdisp: 15.0,
            })
            .measure(Measure::DeltaFromBase)
            .sweep(SweepAxis::MixSteps(vec![10, 30]))
    }

    #[test]
    fn sweep_result_has_expected_shape() {
        let r = Scenario::new(mix_spec()).unwrap().run(&tiny_cfg());
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.x_label, "steps");
        assert_eq!(r.strategies.len(), 3);
        for p in &r.points {
            assert_eq!(p.colors.len(), 3);
            assert_eq!(p.recodings.len(), 3);
            assert_eq!(p.colors[0].n, 3);
            assert!(p.events > 0);
        }
        // 20 base joins + steps, times 3 replicates.
        assert_eq!(r.points[0].events, 3 * 30);
        assert_eq!(r.points[1].events, 3 * 50);
        assert_eq!(r.total_events, 3 * 30 + 3 * 50);
        assert!(r.points[0].recodings[0].mean <= r.points[1].recodings[0].mean + 1e-9);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let scenario = Scenario::new(mix_spec()).unwrap();
        let a = scenario.run(&ExperimentConfig {
            workers: 1,
            ..tiny_cfg()
        });
        let b = scenario.run(&ExperimentConfig {
            workers: 8,
            ..tiny_cfg()
        });
        assert_eq!(a, b);
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn rounds_sweep_reports_per_round() {
        let spec = ScenarioSpec::new("rounds")
            .base_phase(PhaseSpec::Join { count: 15 })
            .measured_phase(PhaseSpec::Movement {
                rounds: 1,
                maxdisp: 30.0,
            })
            .measure(Measure::DeltaFromBase)
            .sweep(SweepAxis::Rounds(3));
        let r = Scenario::new(spec).unwrap().run(&tiny_cfg());
        assert_eq!(r.points.len(), 3);
        assert_eq!(
            r.points.iter().map(|p| p.x).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
        // Cumulative recodings never decrease round over round.
        for si in 0..3 {
            assert!(r.points[0].recodings[si].mean <= r.points[2].recodings[si].mean + 1e-9);
        }
        // Events accumulate: 15 joins + 15 moves per round, per replicate.
        assert_eq!(r.points[0].events, 3 * 30);
        assert_eq!(r.points[2].events, 3 * 60);
    }

    #[test]
    fn corridor_topology_runs_and_walls_constrain_nothing_invalid() {
        let spec = ScenarioSpec::new("corridor")
            .topology(TopologyFamily::Corridor {
                walls: 2,
                door: 10.0,
            })
            .measured_phase(PhaseSpec::Join { count: 25 });
        let r = Scenario::new(spec).unwrap().run(&tiny_cfg());
        assert_eq!(r.points.len(), 1);
        assert!(r.points[0].colors[0].mean >= 1.0);
    }

    #[test]
    fn progress_fires_once_per_resolved_point() {
        let mut seen = Vec::new();
        let scenario = Scenario::new(mix_spec()).unwrap();
        scenario.run_with_progress(&tiny_cfg(), |p| seen.push((p.done, p.total, p.x)));
        assert_eq!(seen, vec![(1, 2, 10.0), (2, 2, 30.0)]);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let no_measured = ScenarioSpec::new("x");
        assert!(Scenario::new(no_measured).is_err());

        let bad_sweep = ScenarioSpec::new("x")
            .measured_phase(PhaseSpec::Join { count: 5 })
            .sweep(SweepAxis::MaxDisp(vec![10.0]));
        assert!(Scenario::new(bad_sweep).is_err());

        let zero_runs = ScenarioSpec::new("x")
            .measured_phase(PhaseSpec::Join { count: 5 })
            .runs(0);
        assert!(Scenario::new(zero_runs).is_err());

        let bad_probs = ScenarioSpec::new("x").measured_phase(PhaseSpec::Mix {
            steps: 5,
            join_prob: 0.8,
            leave_prob: 0.8,
            maxdisp: 5.0,
        });
        assert!(Scenario::new(bad_probs).is_err());

        let bad_factor = ScenarioSpec::new("x").measured_phase(PhaseSpec::PowerRaise {
            fraction: 0.5,
            factor: 0.5,
        });
        assert!(Scenario::new(bad_factor).is_err());

        let rounds_needs_movement = ScenarioSpec::new("x")
            .measured_phase(PhaseSpec::Join { count: 5 })
            .sweep(SweepAxis::Rounds(3));
        assert!(Scenario::new(rounds_needs_movement).is_err());
    }

    fn power_spec() -> ScenarioSpec {
        ScenarioSpec::new("power-lab")
            .topology(TopologyFamily::Clustered {
                clusters: 3,
                spread: 4.0,
            })
            .base_phase(PhaseSpec::Join { count: 30 })
            .measured_phase(PhaseSpec::PowerControl {
                target_sinr: 4.0,
                ladder: 0,
                drop_infeasible: false,
                sink_every: 6,
            })
            .measure(Measure::DeltaFromBase)
            .sweep(SweepAxis::TargetSinr(vec![2.0, 8.0]))
    }

    #[test]
    fn power_control_phase_emits_endogenous_events() {
        let r = Scenario::new(power_spec()).unwrap().run(&tiny_cfg());
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.x_label, "targetSINR");
        // Every replicate executes the 30 base joins plus at least one
        // endogenous set-range event per point (the loop always moves
        // ranges off the sampled seed).
        for p in &r.points {
            assert!(p.events > 3 * 30, "endogenous events missing: {}", p.events);
        }
        // A harder target costs at least as many recodings.
        for si in 0..r.strategies.len() {
            assert!(
                r.points[0].recodings[si].mean <= r.points[1].recodings[si].mean + 1e-9,
                "strategy {si}"
            );
        }
    }

    #[test]
    fn power_control_results_are_worker_invariant() {
        let scenario = Scenario::new(power_spec().measured_phase(PhaseSpec::PowerControl {
            target_sinr: 6.0,
            ladder: 8,
            drop_infeasible: true,
            sink_every: 6,
        }))
        .unwrap();
        let a = scenario.run(&ExperimentConfig {
            workers: 1,
            ..tiny_cfg()
        });
        let b = scenario.run(&ExperimentConfig {
            workers: 8,
            ..tiny_cfg()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn power_control_validation_rejects_bad_knobs() {
        let bad_target = ScenarioSpec::new("x").measured_phase(PhaseSpec::PowerControl {
            target_sinr: 0.0,
            ladder: 0,
            drop_infeasible: false,
            sink_every: 6,
        });
        assert!(Scenario::new(bad_target).is_err());

        let one_rung = ScenarioSpec::new("x").measured_phase(PhaseSpec::PowerControl {
            target_sinr: 4.0,
            ladder: 1,
            drop_infeasible: false,
            sink_every: 6,
        });
        assert!(Scenario::new(one_rung).is_err());

        let sweep_without_phase = ScenarioSpec::new("x")
            .measured_phase(PhaseSpec::Join { count: 5 })
            .sweep(SweepAxis::TargetSinr(vec![4.0]));
        assert!(Scenario::new(sweep_without_phase).is_err());

        let negative_sweep = power_spec().sweep(SweepAxis::TargetSinr(vec![4.0, -1.0]));
        assert!(Scenario::new(negative_sweep).is_err());
    }

    fn churn_spec() -> ScenarioSpec {
        ScenarioSpec::new("churn-lab")
            .topology(TopologyFamily::Clustered {
                clusters: 3,
                spread: 4.0,
            })
            .base_phase(PhaseSpec::Join { count: 25 })
            .measured_phase(PhaseSpec::PowerChurn {
                steps: 24,
                join_prob: 0.3,
                leave_prob: 0.3,
                maxdisp: 15.0,
                target_sinr: 4.0,
                slice: 8,
                workers: 1,
            })
            .measure(Measure::DeltaFromBase)
            .sweep(SweepAxis::TargetSinr(vec![2.0, 8.0]))
    }

    #[test]
    fn power_churn_phase_interleaves_corrections() {
        let r = Scenario::new(churn_spec()).unwrap().run(&tiny_cfg());
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.x_label, "targetSINR");
        // Every replicate executes the 25 base joins, the 24 churn
        // steps, and at least one endogenous correction per settle
        // (the closed loop always moves ranges off the sampled seed).
        for p in &r.points {
            assert!(
                p.events > 3 * (25 + 24),
                "endogenous corrections missing: {}",
                p.events
            );
        }
    }

    #[test]
    fn power_churn_results_are_worker_invariant() {
        let scenario = Scenario::new(churn_spec()).unwrap();
        let a = scenario.run(&ExperimentConfig {
            workers: 1,
            ..tiny_cfg()
        });
        let b = scenario.run(&ExperimentConfig {
            workers: 8,
            ..tiny_cfg()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn power_churn_validation_rejects_bad_knobs() {
        let churn = |join_prob, leave_prob, target_sinr, slice, workers| {
            ScenarioSpec::new("x").measured_phase(PhaseSpec::PowerChurn {
                steps: 10,
                join_prob,
                leave_prob,
                maxdisp: 10.0,
                target_sinr,
                slice,
                workers,
            })
        };
        assert!(Scenario::new(churn(0.7, 0.7, 4.0, 8, 1)).is_err());
        assert!(Scenario::new(churn(0.3, 0.3, 0.0, 8, 1)).is_err());
        assert!(Scenario::new(churn(0.3, 0.3, 4.0, 0, 1)).is_err());
        assert!(Scenario::new(churn(0.3, 0.3, 4.0, 8, 0)).is_err());
        assert!(Scenario::new(churn(0.3, 0.3, 4.0, 8, 1)).is_ok());
        // A churn phase satisfies the target-SINR sweep requirement.
        assert!(Scenario::new(churn_spec()).is_ok());
    }

    #[test]
    fn spec_json_roundtrip_covers_every_variant() {
        let specs = [
            mix_spec(),
            power_spec(),
            churn_spec(),
            ScenarioSpec::new("power-discrete")
                .base_phase(PhaseSpec::Join { count: 10 })
                .measured_phase(PhaseSpec::PowerControl {
                    target_sinr: 6.5,
                    ladder: 12,
                    drop_infeasible: true,
                    sink_every: 6,
                }),
            ScenarioSpec::new("corridor")
                .topology(TopologyFamily::Corridor {
                    walls: 3,
                    door: 8.0,
                })
                .arena(Rect::new(0.0, 0.0, 200.0, 50.0))
                .measured_phase(PhaseSpec::Join { count: 40 })
                .sweep(SweepAxis::JoinCount(vec![20, 40])),
            ScenarioSpec::new("raise")
                .base_phase(PhaseSpec::Join { count: 30 })
                .measured_phase(PhaseSpec::PowerRaise {
                    fraction: 0.5,
                    factor: 2.0,
                })
                .measure(Measure::DeltaFromBase)
                .sweep(SweepAxis::RaiseFactor(vec![1.0, 2.0])),
            ScenarioSpec::new("rounds")
                .base_phase(PhaseSpec::Join { count: 10 })
                .measured_phase(PhaseSpec::Movement {
                    rounds: 2,
                    maxdisp: 40.0,
                })
                .sweep(SweepAxis::Rounds(4))
                .strategies(vec![StrategyKind::Minim, StrategyKind::Cp]),
            ScenarioSpec::new("hetero")
                .ranges(RangeDist::Heterogeneous {
                    short: (8.0, 12.0),
                    long: (30.0, 40.0),
                    long_fraction: 0.25,
                })
                .measured_phase(PhaseSpec::Join { count: 20 })
                .sweep(SweepAxis::LongFraction(vec![0.0, 0.5])),
        ];
        for spec in specs {
            let text = spec.to_json_string();
            let parsed = ScenarioSpec::from_json_str(&text).unwrap();
            assert_eq!(spec, parsed, "roundtrip failed for {}", spec.name);
        }
    }

    #[test]
    fn from_json_defaults_optional_fields() {
        let spec = ScenarioSpec::from_json_str(
            "{\"name\": \"bare\", \"measured\": [{\"phase\": \"join\", \"count\": 5}]}",
        )
        .unwrap();
        assert_eq!(spec.arena, Rect::paper_arena());
        assert_eq!(spec.ranges, RangeDist::paper());
        assert_eq!(spec.strategies.len(), 3);
        assert!(Scenario::new(spec).is_ok());
    }

    #[test]
    fn big_seeds_roundtrip_exactly() {
        // Doubles corrupt integers past 2^53; the seed must survive
        // anyway (it is the whole determinism contract).
        let spec = mix_spec().seed(u64::MAX - 12345);
        let parsed = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(parsed.seed, u64::MAX - 12345);
        // Small seeds stay plain JSON numbers.
        let small = mix_spec().seed(42);
        assert!(small.to_json_string().contains("\"seed\": 42"));
        assert_eq!(
            ScenarioSpec::from_json_str(&small.to_json_string())
                .unwrap()
                .seed,
            42
        );
    }

    #[test]
    fn malformed_sweep_values_are_rejected_not_dropped() {
        for values in ["[40, 60.5, 80]", "[40, \"60\", 80]"] {
            let text = format!(
                "{{\"name\":\"x\",\"measured\":[{{\"phase\":\"join\",\"count\":5}}],\
                 \"sweep\":{{\"axis\":\"join-count\",\"values\":{values}}}}}"
            );
            let err = ScenarioSpec::from_json_str(&text).unwrap_err();
            assert!(err.to_string().contains("values"), "{values} -> {err}");
        }
    }

    #[test]
    fn from_json_reports_field_errors() {
        for (text, needle) in [
            ("{}", "name"),
            (
                "{\"name\":\"x\",\"sweep\":{\"axis\":\"bogus\"}}",
                "sweep axis",
            ),
            (
                "{\"name\":\"x\",\"strategies\":[\"nope\"]}",
                "unknown strategy",
            ),
            ("not json", "valid JSON"),
        ] {
            let err = ScenarioSpec::from_json_str(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?} -> {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn result_json_parses_back() {
        let r = Scenario::new(mix_spec()).unwrap().run(&tiny_cfg());
        let v = json::parse(&r.to_json_string()).unwrap();
        assert_eq!(v.get("scenario").unwrap().as_str(), Some("mix-lab"));
        assert_eq!(
            v.get("points").unwrap().as_arr().unwrap().len(),
            r.points.len()
        );
    }
}
