//! Sample statistics and renderable result tables.

use std::fmt::Write as _;

/// Summary statistics over replicate samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Computes statistics over `samples`. Empty input yields zeros.
    pub fn from_samples(samples: &[f64]) -> Stats {
        let n = samples.len();
        if n == 0 {
            return Stats {
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Stats {
            mean,
            std: var.sqrt(),
            min,
            max,
            n,
        }
    }
}

/// One row of a result table: the sweep value plus one [`Stats`] per
/// series.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Sweep parameter value (N, avg range, raisefactor, …).
    pub x: f64,
    /// Per-series statistics, aligned with [`Table::series`].
    pub values: Vec<Stats>,
}

/// A figure's data: a parameter sweep with one series per strategy.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure identifier, e.g. `"Fig 10(a) max color index vs N"`.
    pub title: String,
    /// Name of the sweep parameter, e.g. `"N"`.
    pub x_label: String,
    /// Series names in column order, e.g. `["Minim", "CP", "BBB"]`.
    pub series: Vec<String>,
    /// Rows in sweep order.
    pub rows: Vec<TableRow>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, series: Vec<String>) -> Table {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the value count does not match the series count.
    pub fn push_row(&mut self, x: f64, values: Vec<Stats>) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "row width must match series count"
        );
        self.rows.push(TableRow { x, values });
    }

    /// The series' mean values as `(x, mean)` pairs — what the paper
    /// plots.
    pub fn series_means(&self, series_idx: usize) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .map(|r| (r.x, r.values[series_idx].mean))
            .collect()
    }

    /// Renders an aligned text table (mean ± std per cell).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let mut header = format!("{:>10}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {s:>18}");
        }
        let _ = writeln!(out, "{header}");
        for row in &self.rows {
            let _ = write!(out, "{:>10.2}", row.x);
            for v in &row.values {
                let cell = format!("{:.2} ± {:.2}", v.mean, v.std);
                let _ = write!(out, " {cell:>18}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV: `x,<series> mean,<series> std,...` with one header
    /// line.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{s} mean,{s} std");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{}", row.x);
            for v in &row.values {
                let _ = write!(out, ",{},{}", v.mean, v.std);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_samples() {
        let s = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with n−1: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn stats_degenerate_cases() {
        let empty = Stats::from_samples(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Stats::from_samples(&[3.5]);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.min, 3.5);
        assert_eq!(single.max, 3.5);
    }

    #[test]
    fn table_rendering_and_csv() {
        let mut t = Table::new("Fig X", "N", vec!["Minim".into(), "CP".into()]);
        t.push_row(
            40.0,
            vec![
                Stats::from_samples(&[1.0, 2.0, 3.0]),
                Stats::from_samples(&[4.0, 5.0, 6.0]),
            ],
        );
        let text = t.render();
        assert!(text.contains("Fig X"));
        assert!(text.contains("Minim"));
        assert!(text.contains("2.00"));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("N,Minim mean,Minim std,CP mean,CP std"));
        assert!(lines.next().unwrap().starts_with("40,2,"));
    }

    #[test]
    fn series_means_extract_plot_data() {
        let mut t = Table::new("t", "x", vec!["a".into(), "b".into()]);
        t.push_row(
            1.0,
            vec![Stats::from_samples(&[10.0]), Stats::from_samples(&[20.0])],
        );
        t.push_row(
            2.0,
            vec![Stats::from_samples(&[30.0]), Stats::from_samples(&[40.0])],
        );
        assert_eq!(t.series_means(0), vec![(1.0, 10.0), (2.0, 30.0)]);
        assert_eq!(t.series_means(1), vec![(1.0, 20.0), (2.0, 40.0)]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t", "x", vec!["a".into()]);
        t.push_row(1.0, vec![]);
    }
}
