//! `minim-trace/1` — JSON export of the minim-obs registry.
//!
//! `minim-obs` is dependency-free by design, so its snapshot and
//! profile types know nothing about serialisation; this module lowers
//! them onto the workspace's own [`crate::json`] values. The document
//! schema:
//!
//! ```json
//! {
//!   "schema": "minim-trace/1",
//!   "metrics": {
//!     "counters": {"net.apply.move": 1200, ...},
//!     "gauges": {"resident.shards": 8.0, ...},
//!     "histograms": [
//!       {"name": "power.settle_ns", "count": 40, "sum_ns": ...,
//!        "min_ns": ..., "max_ns": ..., "mean_ns": ...,
//!        "buckets": [[11, 7], ...]}
//!     ],
//!     "spans_recorded": 512,
//!     "spans_dropped": 0
//!   },
//!   "profile": {
//!     "recorded": 512, "dropped": 0,
//!     "roots": [
//!       {"name": "resident.slice", "count": 40, "total_ns": ...,
//!        "self_ns": ..., "children": [...]}
//!     ]
//!   }
//! }
//! ```
//!
//! Histogram `buckets` are `[bucket_exponent, count]` pairs — bucket
//! `b` counted observations in `[2^(b-1), 2^b)` nanoseconds. A
//! non-zero `spans_dropped` means the drop-oldest rings overwrote
//! records and the profile undercounts.

use crate::json::Json;
use minim_obs::{HistogramSnapshot, MetricsSnapshot, Profile, ProfileNode};

/// The schema tag written into every trace document.
pub const TRACE_SCHEMA: &str = "minim-trace/1";

/// Lowers a metrics snapshot to JSON (the `metrics` block).
pub fn metrics_to_json(snap: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(
                snap.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                snap.gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Arr(snap.histograms.iter().map(histogram_to_json).collect()),
        ),
        ("spans_recorded", Json::Num(snap.spans_recorded as f64)),
        ("spans_dropped", Json::Num(snap.spans_dropped as f64)),
    ])
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    Json::obj(vec![
        ("name", Json::Str(h.name.clone())),
        ("count", Json::Num(h.count as f64)),
        ("sum_ns", Json::Num(h.sum_ns as f64)),
        ("min_ns", Json::Num(h.min_ns as f64)),
        ("max_ns", Json::Num(h.max_ns as f64)),
        ("mean_ns", Json::Num(h.mean_ns())),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(b, c)| Json::Arr(vec![Json::Num(b as f64), Json::Num(c as f64)]))
                    .collect(),
            ),
        ),
    ])
}

/// Lowers an aggregated span profile to JSON (the `profile` block).
pub fn profile_to_json(prof: &Profile) -> Json {
    Json::obj(vec![
        ("recorded", Json::Num(prof.recorded as f64)),
        ("dropped", Json::Num(prof.dropped as f64)),
        (
            "roots",
            Json::Arr(prof.roots.iter().map(node_to_json).collect()),
        ),
    ])
}

fn node_to_json(n: &ProfileNode) -> Json {
    Json::obj(vec![
        ("name", Json::Str(n.name.clone())),
        ("count", Json::Num(n.count as f64)),
        ("total_ns", Json::Num(n.total_ns as f64)),
        ("self_ns", Json::Num(n.self_ns as f64)),
        (
            "children",
            Json::Arr(n.children.iter().map(node_to_json).collect()),
        ),
    ])
}

/// The full `minim-trace/1` document for the registry's current state:
/// metrics snapshot plus aggregated span profile.
pub fn trace_document() -> Json {
    Json::obj(vec![
        ("schema", Json::Str(TRACE_SCHEMA.to_string())),
        ("metrics", metrics_to_json(&minim_obs::snapshot())),
        ("profile", profile_to_json(&minim_obs::profile())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_document_round_trips_through_the_parser() {
        minim_obs::counter!("test.trace.counter", 5);
        minim_obs::observe_ns!("test.trace.hist", 100);
        {
            let _g = minim_obs::span!("test.trace.span");
        }
        let doc = trace_document();
        let text = doc.to_string_pretty();
        let parsed = crate::json::parse(&text).expect("trace document parses");
        match &parsed {
            Json::Obj(fields) => {
                assert_eq!(
                    fields.iter().find(|(k, _)| k == "schema").map(|(_, v)| v),
                    Some(&Json::Str(TRACE_SCHEMA.to_string()))
                );
                assert!(fields.iter().any(|(k, _)| k == "metrics"));
                assert!(fields.iter().any(|(k, _)| k == "profile"));
            }
            other => panic!("expected object, got {other:?}"),
        }
        if minim_obs::COMPILED {
            assert!(text.contains("test.trace.counter"));
            assert!(text.contains("test.trace.hist"));
            assert!(text.contains("test.trace.span"));
        }
    }
}
