//! The paper's §5 figures as thin wrappers over the scenario lab,
//! plus the ablation and extension studies from DESIGN.md.
//!
//! Since the scenario-lab refactor the figure drivers no longer own
//! their event loops: each `fig*` function instantiates the matching
//! [`crate::presets`] entry, runs it through
//! [`Scenario::run`](crate::scenario::Scenario::run), and re-labels
//! the resulting tables with the paper's figure titles. The presets
//! are pinned point-for-point to the original hand-coded drivers by
//! `tests/preset_equivalence.rs`.
//!
//! Every figure point is the average of [`ExperimentConfig::runs`]
//! replicates (the paper uses 100) on freshly generated random
//! networks. Replicates are *paired* across strategies: each replicate
//! generates one event sequence and feeds the identical sequence to
//! Minim, CP, and BBB, which reduces comparison variance (topology is
//! strategy-independent, so this is sound).
//!
//! Figure → preset map:
//!
//! | Figure | Function | Preset | Sweep |
//! |---|---|---|---|
//! | 10(a,b,c) | [`fig10_vs_n`] | `fig10-vs-n` | `N` joins, `minr=20.5, maxr=30.5` |
//! | 10(d,e,f) | [`fig10_vs_avg_range`] | `fig10-vs-avg-range` | avg range, `N=100`, width 5 |
//! | 11(a,b,c) | [`fig11_power_increase`] | `fig11-power-increase` | `raisefactor`, `N=100` |
//! | 12(a) | [`fig12_vs_maxdisp`] | `fig12-vs-maxdisp` | `maxdisp`, `N=40`, 1 round |
//! | 12(b,c,d) | [`fig12_vs_rounds`] | `fig12-vs-rounds` | `RoundNo`, `N=40`, `maxdisp=40` |
//!
//! The ablation and extension studies below predate the lab and still
//! drive [`parallel_map`] directly; they are the next candidates for
//! spec-ification.

pub use crate::scenario::ExperimentConfig;

use crate::metrics::{Stats, Table};
use crate::par::parallel_map;
use crate::runner::{pregenerate_movement_rounds, run_events};
use crate::scenario::Scenario;
use crate::{presets, scenario};
use minim_core::gossip::GossipCompactor;
use minim_core::{Cp, Minim, StrategyKind};
use minim_net::workload::{JoinWorkload, MovementWorkload};
use minim_net::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Results for a join-phase figure: absolute max color and total
/// recodings per strategy.
#[derive(Debug, Clone)]
pub struct JoinFigures {
    /// Fig 10(a)/(d): max color index assigned.
    pub colors: Table,
    /// Fig 10(b,c)/(e,f): total number of recodings.
    pub recodings: Table,
}

/// Results for a Δ-phase figure (power increase / movement).
#[derive(Debug, Clone)]
pub struct DeltaFigures {
    /// Δ(max color index) relative to the strategy's own base network.
    pub dcolors: Table,
    /// Δ(total recodings) — recodings performed during the phase.
    pub drecodings: Table,
}

fn all_labels() -> Vec<String> {
    StrategyKind::ALL.iter().map(|k| k.label().into()).collect()
}

fn run_preset(spec: scenario::ScenarioSpec, cfg: &ExperimentConfig) -> scenario::SweepResult {
    Scenario::new(spec)
        .expect("figure presets are valid by construction")
        .run(cfg)
}

/// An empty-sweep figure result (zero rows, correct headers) — what
/// the pre-lab drivers returned for an empty sweep-value slice, which
/// `Scenario::new` would otherwise reject.
fn empty_figures(title_colors: &str, title_recodings: &str, x_label: &str) -> JoinFigures {
    JoinFigures {
        colors: Table::new(title_colors, x_label, all_labels()),
        recodings: Table::new(title_recodings, x_label, all_labels()),
    }
}

/// Fig 10(a–c): `N` nodes join consecutively; sweep `N`.
pub fn fig10_vs_n(cfg: &ExperimentConfig, ns: &[usize]) -> JoinFigures {
    let (tc, tr) = (
        "Fig 10(a) max color index vs N",
        "Fig 10(b,c) total recodings vs N",
    );
    if ns.is_empty() {
        return empty_figures(tc, tr, "N");
    }
    let r = run_preset(presets::fig10_vs_n(ns.to_vec()), cfg);
    JoinFigures {
        colors: r.color_table(tc),
        recodings: r.recoding_table(tr),
    }
}

/// The paper's Fig 10(a–c) sweep values.
pub fn paper_fig10_ns() -> Vec<usize> {
    (40..=120).step_by(10).collect()
}

/// Fig 10(d–f): `N = 100` joins; sweep the average transmission range
/// with a width-5 interval.
pub fn fig10_vs_avg_range(cfg: &ExperimentConfig, avg_rs: &[f64], n: usize) -> JoinFigures {
    let (tc, tr) = (
        "Fig 10(d) max color index vs avg range",
        "Fig 10(e,f) total recodings vs avg range",
    );
    if avg_rs.is_empty() {
        return empty_figures(tc, tr, "avgR");
    }
    let r = run_preset(presets::fig10_vs_avg_range(avg_rs.to_vec(), n), cfg);
    JoinFigures {
        colors: r.color_table(tc),
        recodings: r.recoding_table(tr),
    }
}

/// The paper's Fig 10(d–f) sweep values (5 .. 65).
pub fn paper_fig10_avg_ranges() -> Vec<f64> {
    (1..=13).map(|k| k as f64 * 5.0).collect()
}

/// Fig 11(a–c): power-increase phase after an `N = 100` join phase;
/// sweep `raisefactor`.
pub fn fig11_power_increase(cfg: &ExperimentConfig, factors: &[f64], n: usize) -> DeltaFigures {
    let (tc, tr) = (
        "Fig 11(a) delta max color index vs raisefactor",
        "Fig 11(b,c) delta recodings vs raisefactor",
    );
    if factors.is_empty() {
        let f = empty_figures(tc, tr, "raisefactor");
        return DeltaFigures {
            dcolors: f.colors,
            drecodings: f.recodings,
        };
    }
    let r = run_preset(presets::fig11_power_increase(factors.to_vec(), n), cfg);
    DeltaFigures {
        dcolors: r.color_table(tc),
        drecodings: r.recoding_table(tr),
    }
}

/// The paper's Fig 11 sweep values (raisefactor 1 .. 6).
pub fn paper_fig11_factors() -> Vec<f64> {
    vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0]
}

/// Fig 12(a): one movement round, sweep `maxdisp` (`N = 40`).
pub fn fig12_vs_maxdisp(cfg: &ExperimentConfig, maxdisps: &[f64], n: usize) -> DeltaFigures {
    let (tc, tr) = (
        "Fig 12(a aux) delta max color index vs maxdisp",
        "Fig 12(a) delta recodings vs maxdisp",
    );
    if maxdisps.is_empty() {
        let f = empty_figures(tc, tr, "maxdisp");
        return DeltaFigures {
            dcolors: f.colors,
            drecodings: f.recodings,
        };
    }
    let r = run_preset(presets::fig12_vs_maxdisp(maxdisps.to_vec(), n), cfg);
    DeltaFigures {
        dcolors: r.color_table(tc),
        drecodings: r.recoding_table(tr),
    }
}

/// The paper's Fig 12(a) sweep values (maxdisp 5 .. 75).
pub fn paper_fig12_maxdisps() -> Vec<f64> {
    (1..=15).map(|k| k as f64 * 5.0).collect()
}

/// Fig 12(b–d): `maxdisp = 40`, sweep `RoundNo` 1..=`max_rounds`
/// (`N = 40`). One replicate runs all rounds cumulatively.
pub fn fig12_vs_rounds(
    cfg: &ExperimentConfig,
    max_rounds: usize,
    n: usize,
    maxdisp: f64,
) -> DeltaFigures {
    let (tc, tr) = (
        "Fig 12(b) delta max color index vs RoundNo",
        "Fig 12(c,d) delta recodings vs RoundNo",
    );
    if max_rounds == 0 {
        let f = empty_figures(tc, tr, "RoundNo");
        return DeltaFigures {
            dcolors: f.colors,
            drecodings: f.recodings,
        };
    }
    let r = run_preset(presets::fig12_vs_rounds(max_rounds, n, maxdisp), cfg);
    DeltaFigures {
        dcolors: r.color_table(tc),
        drecodings: r.recoding_table(tr),
    }
}

/// Ablation: Minim's keep-edge weight. For each weight, the total
/// recodings and max color over a join sequence. Weight 1 is the
/// weight-blind (pure max-cardinality) policy; the paper's choice is 3.
pub fn ablation_keep_weight(cfg: &ExperimentConfig, weights: &[i64], n: usize) -> Table {
    let jobs: Vec<(usize, i64, u64)> = weights
        .iter()
        .enumerate()
        .flat_map(|(pi, &w)| (0..cfg.runs).map(move |rep| (pi, w, cfg.replicate_seed(pi, rep))))
        .collect();
    let results = parallel_map(&jobs, cfg.workers, |&(pi, w, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = JoinWorkload::paper(n);
        let events = workload.generate(&mut rng);
        let mut net = Network::new(workload.maxr.max(1.0));
        let mut s = Minim::with_keep_weight(w);
        let m = run_events(&mut s, &mut net, &events);
        (pi, m.recodings as f64, m.max_color as f64)
    });

    let mut table = Table::new(
        "Ablation: keep-edge weight (Minim join phase)",
        "keep weight",
        vec!["recodings".into(), "max color".into()],
    );
    for (pi, &w) in weights.iter().enumerate() {
        let recs: Vec<f64> = results
            .iter()
            .filter(|(rpi, _, _)| *rpi == pi)
            .map(|&(_, r, _)| r)
            .collect();
        let cols: Vec<f64> = results
            .iter()
            .filter(|(rpi, _, _)| *rpi == pi)
            .map(|&(_, _, c)| c)
            .collect();
        table.push_row(
            w as f64,
            vec![Stats::from_samples(&recs), Stats::from_samples(&cols)],
        );
    }
    table
}

/// Ablation: CP's color pick — conservative 2-hop avoidance vs exact
/// constraints — over a join sequence sweep in `N`.
pub fn ablation_cp_pick(cfg: &ExperimentConfig, ns: &[usize]) -> Table {
    let jobs: Vec<(usize, usize, u64)> = ns
        .iter()
        .enumerate()
        .flat_map(|(pi, &n)| (0..cfg.runs).map(move |rep| (pi, n, cfg.replicate_seed(pi, rep))))
        .collect();
    let results = parallel_map(&jobs, cfg.workers, |&(pi, n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = JoinWorkload::paper(n);
        let events = workload.generate(&mut rng);
        let run = |mut s: Cp| {
            let mut net = Network::new(workload.maxr.max(1.0));
            let m = run_events(&mut s, &mut net, &events);
            (m.max_color as f64, m.recodings as f64)
        };
        let cons = run(Cp::default());
        let exact = run(Cp::with_exact_constraints());
        (pi, cons, exact)
    });

    let mut table = Table::new(
        "Ablation: CP color pick (2-hop conservative vs exact constraints)",
        "N",
        vec![
            "CP-2hop colors".into(),
            "CP-exact colors".into(),
            "CP-2hop recodings".into(),
            "CP-exact recodings".into(),
        ],
    );
    for (pi, &n) in ns.iter().enumerate() {
        let mut cols = vec![Vec::new(); 4];
        for &(rpi, (cc, cr), (ec, er)) in &results {
            if rpi == pi {
                cols[0].push(cc);
                cols[1].push(ec);
                cols[2].push(cr);
                cols[3].push(er);
            }
        }
        table.push_row(
            n as f64,
            cols.iter().map(|s| Stats::from_samples(s)).collect(),
        );
    }
    table
}

/// Extension study (§6 future work): after a join phase and `churn`
/// movement rounds under Minim, run the gossip compactor to a fixpoint
/// and report max color before/after plus migrations.
pub fn gossip_study(cfg: &ExperimentConfig, churn_rounds: &[usize], n: usize) -> Table {
    let jobs: Vec<(usize, usize, u64)> = churn_rounds
        .iter()
        .enumerate()
        .flat_map(|(pi, &c)| (0..cfg.runs).map(move |rep| (pi, c, cfg.replicate_seed(pi, rep))))
        .collect();
    let results = parallel_map(&jobs, cfg.workers, |&(pi, churn, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = JoinWorkload::paper(n);
        let events = workload.generate(&mut rng);
        let mut net = Network::new(workload.maxr.max(1.0));
        let mut s = Minim::default();
        run_events(&mut s, &mut net, &events);
        let move_w = MovementWorkload::paper(40.0, churn);
        for round in pregenerate_movement_rounds(&net, &move_w, churn, &mut rng) {
            run_events(&mut s, &mut net, &round);
        }
        let stats = GossipCompactor.run(&mut net, 1000);
        (
            pi,
            stats.max_color_before as f64,
            stats.max_color_after as f64,
            stats.migrations as f64,
        )
    });

    let mut table = Table::new(
        "Extension: gossip compaction after churn (Minim, N joins + movement rounds)",
        "churn rounds",
        vec![
            "max color before".into(),
            "max color after".into(),
            "migrations".into(),
        ],
    );
    for (pi, &c) in churn_rounds.iter().enumerate() {
        let mut cols = vec![Vec::new(); 3];
        for &(rpi, b, a, m) in &results {
            if rpi == pi {
                cols[0].push(b);
                cols[1].push(a);
                cols[2].push(m);
            }
        }
        table.push_row(
            c as f64,
            cols.iter().map(|s| Stats::from_samples(s)).collect(),
        );
    }
    table
}

/// Extension study: does Minim's mobility advantage survive
/// *correlated* motion? The paper's §5.3 teleports nodes by random
/// displacements; real mobility is temporally correlated. One replicate
/// builds each strategy's base (`n` joins) and then applies the same
/// total motion two ways — `rounds` teleport rounds (maxdisp 40) vs an
/// equivalent random-waypoint schedule — counting recodings for each.
/// Rows: x = 0 (teleport) and x = 1 (waypoint).
pub fn mobility_model_study(cfg: &ExperimentConfig, n: usize, rounds: usize) -> Table {
    use minim_net::event::apply_topology;
    use minim_net::mobility::RandomWaypoint;

    let jobs: Vec<u64> = (0..cfg.runs)
        .map(|rep| cfg.replicate_seed(0, rep))
        .collect();
    let results = parallel_map(&jobs, cfg.workers, |&seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = JoinWorkload::paper(n);
        let join_events = workload.generate(&mut rng);

        let mut bases: Vec<Network> = Vec::new();
        for kind in StrategyKind::ALL {
            let mut net = Network::new(workload.maxr.max(1.0));
            let mut s = kind.build();
            run_events(&mut *s, &mut net, &join_events);
            bases.push(net);
        }

        // Teleport schedule (§5.3) and an equal-duration waypoint
        // schedule, both pre-generated on ghosts so every strategy sees
        // identical motion.
        let teleport = pregenerate_movement_rounds(
            &bases[0],
            &MovementWorkload::paper(40.0, rounds),
            rounds,
            &mut rng,
        );
        let waypoint: Vec<Vec<minim_net::event::Event>> = {
            let mut ghost = bases[0].clone();
            let mut model = RandomWaypoint::new(minim_geom::Rect::paper_arena(), 2.0, 6.0);
            (0..rounds * 5) // 5 small ticks per teleport round: same order of total motion
                .map(|_| {
                    let events = model.tick(&ghost, 1.0, &mut rng);
                    for e in &events {
                        apply_topology(&mut ghost, e);
                    }
                    events
                })
                .collect()
        };

        let run_schedule =
            |kind: StrategyKind, base: &Network, schedule: &[Vec<minim_net::event::Event>]| {
                let mut net = base.clone();
                let mut s = kind.build();
                schedule
                    .iter()
                    .map(|events| run_events(&mut *s, &mut net, events).recodings as f64)
                    .sum::<f64>()
            };

        let mut out = Vec::new(); // [model][strategy]
        for schedule in [&teleport, &waypoint] {
            let per_strategy: Vec<f64> = StrategyKind::ALL
                .iter()
                .zip(&bases)
                .map(|(&kind, base)| run_schedule(kind, base, schedule))
                .collect();
            out.push(per_strategy);
        }
        out
    });

    let mut table = Table::new(
        "Extension: recodings under teleport (x=0) vs random-waypoint (x=1) mobility",
        "model",
        all_labels(),
    );
    for (model, x) in [(0usize, 0.0f64), (1, 1.0)] {
        let mut cols = vec![Vec::new(); StrategyKind::ALL.len()];
        for rep in &results {
            for (si, &v) in rep[model].iter().enumerate() {
                cols[si].push(v);
            }
        }
        table.push_row(x, cols.iter().map(|s| Stats::from_samples(s)).collect());
        let _ = model;
    }
    table
}

/// Extension study: the §6 hybrid. Under sustained join/leave churn,
/// compare plain Minim against [`minim_core::MinimWithGossip`] at
/// several gossip periods: final max color and total recodings
/// (gossip migrations included — honesty first).
pub fn hybrid_gossip_study(
    cfg: &ExperimentConfig,
    periods: &[usize],
    n: usize,
    churn_steps: usize,
) -> Table {
    use minim_core::MinimWithGossip;
    use minim_net::event::apply_topology;
    use minim_net::workload::ChurnWorkload;

    let jobs: Vec<(usize, usize, u64)> = periods
        .iter()
        .enumerate()
        .flat_map(|(pi, &p)| (0..cfg.runs).map(move |rep| (pi, p, cfg.replicate_seed(pi, rep))))
        .collect();
    let results = parallel_map(&jobs, cfg.workers, |&(pi, period, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let join_events = JoinWorkload::paper(n).generate(&mut rng);
        // Pre-generate the churn on a ghost so both strategies see the
        // identical event list (leave targets depend only on topology,
        // which is strategy-independent).
        let churn = ChurnWorkload::paper(churn_steps, 0.5);
        let mut ghost = Network::new(30.5);
        for e in &join_events {
            apply_topology(&mut ghost, e);
        }
        let churn_events: Vec<minim_net::event::Event> = (0..churn.steps)
            .map(|_| {
                let e = churn.next_event(&ghost, &mut rng);
                apply_topology(&mut ghost, &e);
                e
            })
            .collect();

        let run = |strategy: &mut dyn minim_core::RecodingStrategy| {
            let mut net = Network::new(30.5);
            let mut recodings = 0usize;
            for e in join_events.iter().chain(&churn_events) {
                recodings += strategy.apply(&mut net, e).1.recodings();
            }
            (net.max_color_index() as f64, recodings as f64)
        };
        let (plain_c, plain_r) = run(&mut Minim::default());
        let (hyb_c, hyb_r) = run(&mut MinimWithGossip::new(period));
        (pi, plain_c, plain_r, hyb_c, hyb_r)
    });

    let mut table = Table::new(
        "Extension: Minim vs Minim+Gossip under join/leave churn",
        "gossip period",
        vec![
            "Minim max color".into(),
            "hybrid max color".into(),
            "Minim recodings".into(),
            "hybrid recodings".into(),
        ],
    );
    for (pi, &p) in periods.iter().enumerate() {
        let mut cols = vec![Vec::new(); 4];
        for &(rpi, pc, pr, hc, hr) in &results {
            if rpi == pi {
                cols[0].push(pc);
                cols[1].push(hc);
                cols[2].push(pr);
                cols[3].push(hr);
            }
        }
        table.push_row(
            p as f64,
            cols.iter().map(|s| Stats::from_samples(s)).collect(),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            runs: 3,
            seed: 42,
            workers: 2,
            execution: crate::runner::Execution::Sequential,
        }
    }

    /// One join-phase replicate, the way the pre-lab driver ran it:
    /// the same event list through all three strategies. Returns
    /// `(max_color, recodings)` per strategy.
    fn join_replicate(workload: &JoinWorkload, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let events = workload.generate(&mut rng);
        StrategyKind::ALL
            .iter()
            .map(|kind| {
                let mut net = Network::new(workload.maxr.max(1.0));
                let mut s = kind.build();
                let m = run_events(&mut *s, &mut net, &events);
                (m.max_color as f64, m.recodings as f64)
            })
            .collect()
    }

    #[test]
    fn fig10_shapes_hold_on_small_config() {
        // Minim is provably minimal per event but the three strategies
        // evolve different assignments, so sequence totals are compared
        // with statistical slack at this small replicate count (the
        // paper's full 100-run protocol runs in the repro binary).
        let cfg = ExperimentConfig {
            runs: 12,
            seed: 42,
            workers: 4,
            execution: crate::runner::Execution::Sequential,
        };
        let figs = fig10_vs_n(&cfg, &[40, 80]);
        assert_eq!(figs.colors.rows.len(), 2);
        assert_eq!(figs.recodings.rows.len(), 2);
        for row in &figs.recodings.rows {
            let (minim, cp, bbb) = (row.values[0].mean, row.values[1].mean, row.values[2].mean);
            assert!(
                minim <= cp * 1.10 + 2.0,
                "Minim ({minim}) must not exceed CP ({cp}) beyond noise"
            );
            assert!(cp < bbb, "CP ({cp}) < BBB ({bbb})");
        }
        for row in &figs.colors.rows {
            let (minim, bbb) = (row.values[0].mean, row.values[2].mean);
            assert!(bbb <= minim + 1.0, "BBB colors <= Minim colors (+noise)");
        }
        // Recodings grow with N for every strategy.
        for si in 0..3 {
            let m = figs.recodings.series_means(si);
            assert!(m[1].1 > m[0].1);
        }
    }

    #[test]
    fn fig10_is_deterministic_and_worker_independent() {
        let a = fig10_vs_n(
            &ExperimentConfig {
                runs: 3,
                seed: 7,
                workers: 1,
                execution: crate::runner::Execution::Sequential,
            },
            &[15],
        );
        let b = fig10_vs_n(
            &ExperimentConfig {
                runs: 3,
                seed: 7,
                workers: 8,
                execution: crate::runner::Execution::Sequential,
            },
            &[15],
        );
        assert_eq!(a.colors.rows[0].values, b.colors.rows[0].values);
        assert_eq!(a.recodings.rows[0].values, b.recodings.rows[0].values);
    }

    #[test]
    fn fig11_minim_recodes_least() {
        let figs = fig11_power_increase(&tiny(), &[3.0], 30);
        let row = &figs.drecodings.rows[0];
        let (minim, cp, bbb) = (row.values[0].mean, row.values[1].mean, row.values[2].mean);
        assert!(minim <= cp + 1e-9, "Minim ({minim}) <= CP ({cp})");
        assert!(minim <= bbb, "Minim ({minim}) <= BBB ({bbb})");
    }

    #[test]
    fn fig12_rounds_are_cumulative_and_ordered() {
        let figs = fig12_vs_rounds(&tiny(), 3, 15, 40.0);
        assert_eq!(figs.drecodings.rows.len(), 3);
        for si in 0..3 {
            let m = figs.drecodings.series_means(si);
            assert!(m[0].1 <= m[1].1 && m[1].1 <= m[2].1, "cumulative recodings");
        }
        let last = figs.drecodings.rows.last().unwrap();
        assert!(
            last.values[0].mean <= last.values[1].mean + 1e-9,
            "Minim <= CP on movement recodings"
        );
    }

    #[test]
    fn fig12_maxdisp_row_per_value() {
        let figs = fig12_vs_maxdisp(&tiny(), &[10.0, 40.0], 12);
        assert_eq!(figs.drecodings.rows.len(), 2);
        assert!(figs.drecodings.rows[0].values[0].n == 3);
    }

    #[test]
    fn ablation_keep_weight_blind_is_no_better() {
        let t = ablation_keep_weight(&tiny(), &[1, 3], 25);
        let blind_recodings = t.rows[0].values[0].mean;
        let weighted_recodings = t.rows[1].values[0].mean;
        assert!(weighted_recodings <= blind_recodings + 1e-9);
    }

    #[test]
    fn gossip_study_reduces_or_keeps_colors() {
        let t = gossip_study(&tiny(), &[2], 20);
        let before = t.rows[0].values[0].mean;
        let after = t.rows[0].values[1].mean;
        assert!(after <= before + 1e-9);
    }

    #[test]
    fn mobility_model_study_runs_and_orders() {
        let t = mobility_model_study(&tiny(), 15, 2);
        assert_eq!(t.rows.len(), 2);
        // Under either model, Minim <= CP (with generous noise slack at
        // this tiny replicate count).
        for row in &t.rows {
            assert!(row.values[0].mean <= row.values[1].mean * 1.3 + 3.0);
        }
    }

    #[test]
    fn hybrid_gossip_study_compacts_colors() {
        let t = hybrid_gossip_study(&tiny(), &[5], 20, 30);
        let row = &t.rows[0];
        let (plain_c, hybrid_c) = (row.values[0].mean, row.values[1].mean);
        assert!(hybrid_c <= plain_c + 1e-9, "gossip must not inflate colors");
        let (plain_r, hybrid_r) = (row.values[2].mean, row.values[3].mean);
        assert!(hybrid_r >= plain_r, "gossip migrations are charged");
    }

    #[test]
    fn paired_compare_integrates_with_experiment_outputs() {
        use crate::compare::paired_compare;
        let cfg = tiny();
        // Per-replicate paired samples for Minim vs CP at one point.
        let workload = JoinWorkload::paper(25);
        let samples: Vec<(f64, f64)> = (0..cfg.runs)
            .map(|rep| {
                let rec = join_replicate(&workload, cfg.replicate_seed(0, rep));
                (rec[0].1, rec[1].1) // (minim recodings, cp recodings)
            })
            .collect();
        let a: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let b: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let cmp = paired_compare(&a, &b);
        assert_eq!(cmp.n, cfg.runs);
        assert!(cmp.wins_b <= cmp.n, "sanity");
    }

    #[test]
    fn empty_sweeps_return_empty_tables_not_panics() {
        // The pre-lab drivers tolerated empty sweep inputs; the preset
        // adapters must too (Scenario::new itself rejects empty sweeps,
        // so the wrappers short-circuit).
        let cfg = tiny();
        assert!(fig10_vs_n(&cfg, &[]).colors.rows.is_empty());
        assert!(fig10_vs_avg_range(&cfg, &[], 40).recodings.rows.is_empty());
        assert!(fig11_power_increase(&cfg, &[], 40).dcolors.rows.is_empty());
        assert!(fig12_vs_maxdisp(&cfg, &[], 20).drecodings.rows.is_empty());
        let rounds = fig12_vs_rounds(&cfg, 0, 20, 40.0);
        assert!(rounds.dcolors.rows.is_empty());
        assert_eq!(rounds.dcolors.x_label, "RoundNo");
    }

    #[test]
    fn paper_sweeps_have_expected_sizes() {
        assert_eq!(
            paper_fig10_ns(),
            vec![40, 50, 60, 70, 80, 90, 100, 110, 120]
        );
        assert_eq!(paper_fig10_avg_ranges().len(), 13);
        assert_eq!(paper_fig11_factors().len(), 11);
        assert_eq!(paper_fig12_maxdisps().len(), 15);
    }
}
