//! Terminal line plots for result tables.
//!
//! The paper communicates its results as plots; `repro` reproduces the
//! *data*, and this module renders each table's series means as an
//! ASCII chart so the shapes (orderings, crossovers, saturation) are
//! visible straight from the terminal without external tooling.

use crate::metrics::Table;
use std::fmt::Write as _;

/// Per-series marker characters, cycled.
const MARKERS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// Renders the table's series means as a `width × height` character
/// plot with axis labels and a legend. Returns a plain string ending
/// in a newline.
///
/// # Panics
/// Panics if `width < 16` or `height < 4` (too small to draw anything).
pub fn ascii_plot(table: &Table, width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot area too small");
    let mut out = String::new();
    let _ = writeln!(out, "{}", table.title);
    if table.rows.is_empty() || table.series.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }

    // Data ranges.
    let xs: Vec<f64> = table.rows.iter().map(|r| r.x).collect();
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for row in &table.rows {
        for v in &row.values {
            y_min = y_min.min(v.mean);
            y_max = y_max.max(v.mean);
        }
    }
    let x_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let x_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let x_span = if (x_max - x_min).abs() < 1e-12 {
        1.0
    } else {
        x_max - x_min
    };
    let y_span = if (y_max - y_min).abs() < 1e-12 {
        1.0
    } else {
        y_max - y_min
    };

    // Canvas.
    let mut canvas = vec![vec![' '; width]; height];
    for (si, _) in table.series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for row in &table.rows {
            let cx = ((row.x - x_min) / x_span * (width - 1) as f64).round() as usize;
            let cy =
                ((row.values[si].mean - y_min) / y_span * (height - 1) as f64).round() as usize;
            let r = height - 1 - cy; // y grows upward
                                     // Later series overwrite on collision; the legend
                                     // disambiguates close curves well enough for shape checks.
            canvas[r][cx.min(width - 1)] = marker;
        }
    }

    // Render with a y-axis gutter.
    let y_label_top = format!("{y_max:>10.1}");
    let y_label_bot = format!("{y_min:>10.1}");
    for (r, line) in canvas.iter().enumerate() {
        let gutter = if r == 0 {
            &y_label_top
        } else if r == height - 1 {
            &y_label_bot
        } else {
            &"          ".to_string()
        };
        let _ = writeln!(out, "{gutter} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>10} +{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>10}  {:<width$}",
        "",
        format!("{} = {:.6} .. {:.6}", table.x_label, x_min, x_max),
        width = width
    );
    let legend: Vec<String> = table
        .series
        .iter()
        .enumerate()
        .map(|(si, name)| format!("{} {}", MARKERS[si % MARKERS.len()], name))
        .collect();
    let _ = writeln!(out, "{:>10}  legend: {}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Stats;

    fn table_with(series: Vec<&str>, rows: Vec<(f64, Vec<f64>)>) -> Table {
        let mut t = Table::new("T", "x", series.into_iter().map(String::from).collect());
        for (x, means) in rows {
            t.push_row(
                x,
                means
                    .into_iter()
                    .map(|m| Stats::from_samples(&[m]))
                    .collect(),
            );
        }
        t
    }

    #[test]
    fn renders_title_axis_and_legend() {
        let t = table_with(
            vec!["Minim", "CP"],
            vec![(1.0, vec![1.0, 2.0]), (2.0, vec![2.0, 4.0])],
        );
        let plot = ascii_plot(&t, 40, 10);
        assert!(plot.contains("T\n"));
        assert!(plot.contains("legend: * Minim   + CP"));
        assert!(plot.contains("x = 1"));
        assert!(plot.contains('*'));
        assert!(plot.contains('+'));
    }

    #[test]
    fn increasing_series_puts_marker_higher_on_the_right() {
        let t = table_with(vec!["s"], vec![(0.0, vec![0.0]), (10.0, vec![10.0])]);
        let plot = ascii_plot(&t, 20, 8);
        let lines: Vec<&str> = plot.lines().collect();
        // First canvas line (top) holds the max-value marker at the
        // right; the bottom canvas line holds the min at the left.
        let top = lines[1];
        let bottom = lines[8];
        assert!(top.trim_end().ends_with('*'), "top: {top:?}");
        assert!(bottom.contains("|*"), "bottom: {bottom:?}");
    }

    #[test]
    fn empty_table_renders_placeholder() {
        let t = Table::new("E", "x", vec!["a".into()]);
        let plot = ascii_plot(&t, 30, 6);
        assert!(plot.contains("(no data)"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let t = table_with(vec!["flat"], vec![(1.0, vec![5.0]), (2.0, vec![5.0])]);
        let plot = ascii_plot(&t, 24, 6);
        assert!(plot.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let t = table_with(vec!["a"], vec![(0.0, vec![1.0])]);
        let _ = ascii_plot(&t, 4, 2);
    }
}
