//! Paired strategy comparison.
//!
//! The §5 experiments are *paired*: each replicate runs the identical
//! event trace through every strategy, so differences can be tested on
//! the per-replicate deltas instead of the (much noisier) pooled
//! means. This module computes the paired summary the EXPERIMENTS.md
//! claims rest on: win/loss counts, mean difference with a normal 95%
//! confidence interval, and the mean ratio.

/// Summary of a paired comparison between strategies A and B.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedComparison {
    /// Replicates where A < B (A "wins" when lower is better).
    pub wins_a: usize,
    /// Replicates where B < A.
    pub wins_b: usize,
    /// Exact ties.
    pub ties: usize,
    /// Mean of (A − B).
    pub mean_diff: f64,
    /// Normal-approximation 95% CI for the mean difference.
    pub ci95_diff: (f64, f64),
    /// Mean of A / mean of B (0 when B's mean is 0).
    pub ratio_of_means: f64,
    /// Number of pairs.
    pub n: usize,
}

impl PairedComparison {
    /// Whether the CI excludes zero (a significant difference under
    /// the normal approximation; fine at the paper's n = 100).
    pub fn significant(&self) -> bool {
        self.ci95_diff.0 > 0.0 || self.ci95_diff.1 < 0.0
    }
}

/// Compares paired samples. Panics if lengths differ or are empty.
pub fn paired_compare(a: &[f64], b: &[f64]) -> PairedComparison {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    assert!(!a.is_empty(), "need at least one pair");
    let n = a.len();
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean_diff = diffs.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        diffs.iter().map(|d| (d - mean_diff).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let se = (var / n as f64).sqrt();
    let half = 1.96 * se;
    let mean_a = a.iter().sum::<f64>() / n as f64;
    let mean_b = b.iter().sum::<f64>() / n as f64;
    PairedComparison {
        wins_a: diffs.iter().filter(|&&d| d < 0.0).count(),
        wins_b: diffs.iter().filter(|&&d| d > 0.0).count(),
        ties: diffs.iter().filter(|&&d| d == 0.0).count(),
        mean_diff,
        ci95_diff: (mean_diff - half, mean_diff + half),
        ratio_of_means: if mean_b == 0.0 { 0.0 } else { mean_a / mean_b },
        n,
    }
}

impl std::fmt::Display for PairedComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "A<B {} / A>B {} / ties {} of {}; mean diff {:.2} \
             (95% CI {:.2}..{:.2}{}); ratio {:.3}",
            self.wins_a,
            self.wins_b,
            self.ties,
            self.n,
            self.mean_diff,
            self.ci95_diff.0,
            self.ci95_diff.1,
            if self.significant() {
                ", significant"
            } else {
                ""
            },
            self.ratio_of_means,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_paired_difference_is_significant() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 5.0).collect();
        let c = paired_compare(&a, &b);
        assert_eq!(c.wins_a, 50);
        assert_eq!(c.wins_b, 0);
        assert!((c.mean_diff + 5.0).abs() < 1e-12);
        assert!(c.significant());
        assert!(c.ratio_of_means < 1.0);
        assert!(c.to_string().contains("significant"));
    }

    #[test]
    fn identical_samples_tie() {
        let a = vec![3.0; 20];
        let c = paired_compare(&a, &a);
        assert_eq!(c.ties, 20);
        assert_eq!(c.mean_diff, 0.0);
        assert!(!c.significant());
        assert_eq!(c.ratio_of_means, 1.0);
    }

    #[test]
    fn noisy_equal_means_are_not_significant() {
        // Alternating ±1 differences cancel.
        let a: Vec<f64> = (0..40).map(|i| 10.0 + (i % 2) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| 10.0 + ((i + 1) % 2) as f64).collect();
        let c = paired_compare(&a, &b);
        assert_eq!(c.mean_diff, 0.0);
        assert!(!c.significant());
        assert_eq!(c.wins_a + c.wins_b, 40);
    }

    #[test]
    fn single_pair_has_degenerate_ci() {
        let c = paired_compare(&[2.0], &[5.0]);
        assert_eq!(c.mean_diff, -3.0);
        assert_eq!(c.ci95_diff, (-3.0, -3.0));
        assert!(c.significant());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = paired_compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn zero_denominator_ratio() {
        let c = paired_compare(&[1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(c.ratio_of_means, 0.0);
    }
}
