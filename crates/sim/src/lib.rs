//! Experiment harness — §5 of the paper, generalized into a
//! declarative scenario lab.
//!
//! The paper evaluates Minim against CP and BBB on randomly generated
//! ad-hoc networks (nodes uniform in `[0,100]²`, ranges uniform in
//! `(minr, maxr)`), averaging every plotted point over **100 runs**.
//! This crate reproduces that pipeline and opens it to arbitrary
//! regimes:
//!
//! * [`scenario`] — the lab's core: [`ScenarioSpec`] declares an
//!   experiment (topology family, range distribution, event phases,
//!   strategy set, sweep axis) and [`scenario::Scenario::run`] lowers
//!   it onto the delta-driven event machinery, returning a typed
//!   [`scenario::SweepResult`] exportable as text tables, CSV, or
//!   JSON.
//! * [`presets`] — the named catalog: the paper's Fig 10–12 sweeps
//!   plus clustered, heterogeneous-range, churn, and corridor
//!   scenarios. The `minim-lab` binary in `crates/bench` lists and
//!   runs these.
//! * [`experiments`] — the figure wrappers (`fig10_vs_n`, …) as thin
//!   preset adapters, plus the ablation and extension studies.
//! * [`metrics`] — sample statistics, series, and renderable tables
//!   (aligned text + CSV).
//! * [`runner`] — applies generated event sequences to a strategy and
//!   accumulates the two §5 metrics: *maximum color index assigned*
//!   and *total number of recodings*.
//! * [`par`] — a `std::thread::scope` worker pool mapping replicate
//!   jobs to results; per-replicate seeds are derived with
//!   [`minim_geom::sample::child_seed`], so parallel and serial
//!   execution produce bit-identical tables.
//! * [`json`] — a dependency-free JSON value/parser/writer backing the
//!   spec-file format and result exports.
//! * [`trace`] — the `minim-trace/1` export: lowers `minim-obs`
//!   metric snapshots and span profiles onto [`json`] values.

#![deny(missing_docs)]

pub mod compare;
pub mod experiments;
pub mod json;
pub mod metrics;
pub mod par;
pub mod plot;
pub mod presets;
pub mod runner;
pub mod scenario;
pub mod trace;

pub use compare::{paired_compare, PairedComparison};
pub use metrics::{Stats, Table};
pub use plot::ascii_plot;
pub use runner::{run_events, run_events_batched, Execution, ResidentExecutor, ShardHealth};
pub use scenario::{
    ExperimentConfig, Measure, PhaseSpec, Scenario, ScenarioSpec, SweepAxis, SweepResult,
    TopologyFamily,
};
