//! Experiment harness — §5 of the paper.
//!
//! The paper evaluates Minim against CP and BBB on randomly generated
//! ad-hoc networks (nodes uniform in `[0,100]²`, ranges uniform in
//! `(minr, maxr)`), averaging every plotted point over **100 runs**.
//! This crate reproduces that pipeline:
//!
//! * [`metrics`] — sample statistics, series, and renderable tables
//!   (aligned text + CSV).
//! * [`runner`] — applies generated event sequences to a strategy and
//!   accumulates the two §5 metrics: *maximum color index assigned*
//!   and *total number of recodings*.
//! * [`par`] — a crossbeam-based worker pool mapping replicate jobs to
//!   results; per-replicate seeds are derived with
//!   [`minim_geom::sample::child_seed`], so parallel and serial
//!   execution produce bit-identical tables.
//! * [`experiments`] — one function per figure: Fig 10 (node join),
//!   Fig 11 (power increase), Fig 12 (movement), plus the ablation and
//!   extension studies promised in DESIGN.md.

pub mod compare;
pub mod experiments;
pub mod metrics;
pub mod par;
pub mod plot;
pub mod runner;

pub use compare::{paired_compare, PairedComparison};
pub use experiments::ExperimentConfig;
pub use metrics::{Stats, Table};
pub use plot::ascii_plot;
