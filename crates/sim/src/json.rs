//! A minimal JSON value type, parser, and writer.
//!
//! The build environment has no crates-io mirror, so `serde` is not
//! available; this module supplies the small JSON subset the scenario
//! lab needs — [`ScenarioSpec`](crate::scenario::ScenarioSpec) spec
//! files and [`SweepResult`](crate::scenario::SweepResult) exports.
//! It parses the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) and writes deterministic output:
//! object keys keep insertion order and `f64`s render with Rust's
//! shortest round-trip formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved for stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as `u64`, if numeric and integral.
    ///
    /// Values above 2^53 lose precision in transit (JSON numbers are
    /// doubles); seeds that matter should stay below that.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's Debug for f64 is shortest-roundtrip and is
                    // valid JSON for finite values.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Infinity
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// What class of failure a [`ParseError`] is. Callers that need to
/// react differently to different failures (the journal recovery
/// scanner treats any kind as frame corruption, but tests pin the
/// specific rejection) match on this instead of parsing the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed syntax: unexpected character, bad literal, bad
    /// escape, unterminated string, missing separator.
    Syntax,
    /// Input ended inside a value.
    UnexpectedEof,
    /// A complete value was followed by non-whitespace bytes.
    TrailingGarbage,
    /// An object repeated a key.
    DuplicateKey,
    /// A number token parsed to a non-finite `f64` (e.g. `1e999`) —
    /// JSON has no `Infinity`, so silently accepting it would create
    /// values the writer cannot round-trip.
    NonFiniteNumber,
    /// Arrays/objects nested beyond [`MAX_DEPTH`] (a depth bomb would
    /// otherwise overflow the recursive parser's stack).
    TooDeep,
}

/// Maximum array/object nesting depth [`parse`] accepts.
pub const MAX_DEPTH: usize = 128;

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The failure class.
    pub kind: ParseErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document. The whole input must be one value (trailing
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err_kind(
            ParseErrorKind::TrailingGarbage,
            "trailing characters after JSON value",
        ));
    }
    Ok(v)
}

/// Streaming variant of [`parse`]: parses **one** JSON value from the
/// front of `input` (leading whitespace allowed) and returns it with
/// the byte offset just past the value. Callers consuming a stream of
/// concatenated documents — journal frame payloads, line-delimited
/// exports — loop on the returned offset instead of pre-splitting the
/// input.
pub fn parse_prefix(input: &str) -> Result<(Json, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    Ok((v, p.pos))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current array/object nesting depth (depth-bomb guard).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        let kind = if self.pos >= self.bytes.len() {
            ParseErrorKind::UnexpectedEof
        } else {
            ParseErrorKind::Syntax
        };
        self.err_kind(kind, message)
    }

    fn err_kind(&self, kind: ParseErrorKind, message: &str) -> ParseError {
        ParseError {
            kind,
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Bumps the nesting depth on container entry, failing on a depth
    /// bomb. The matching decrement happens in `object`/`array` on
    /// their (sole) successful exits.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err_kind(
                ParseErrorKind::TooDeep,
                "arrays/objects nested deeper than MAX_DEPTH",
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        let mut keys = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if keys.insert(key.clone(), ()).is_some() {
                return Err(ParseError {
                    kind: ParseErrorKind::DuplicateKey,
                    message: format!("duplicate key {key:?}"),
                    at: key_at,
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the lab's
                            // identifiers; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is a surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        let n = text
            .parse::<f64>()
            .map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            // `"1e999".parse::<f64>()` is `Ok(inf)` in Rust — reject
            // rather than admit a value the writer renders as `null`.
            return Err(self.err_kind(
                ParseErrorKind::NonFiniteNumber,
                "number overflows to a non-finite f64",
            ));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fig10-vs-n".into())),
            ("runs", Json::Num(100.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "values",
                Json::Arr(vec![Json::Num(40.0), Json::Num(20.5), Json::Num(-1.25)]),
            ),
            (
                "nested",
                Json::obj(vec![("k", Json::Str("a \"quoted\"\nline".into()))]),
            ),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5e1 ] , \"b\" : \"x\\u0041\\t\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(25.0));
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "xA\t");
    }

    #[test]
    fn integral_accessors_guard_fractions() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("12345678901").unwrap().as_u64(), Some(12345678901));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Duplicate keys are a spec-file authoring error, not silently
        // last-wins.
        assert!(parse("{\"a\":1,\"a\":2}").is_err());
    }

    #[test]
    fn typed_error_kinds() {
        let kind = |input: &str| parse(input).unwrap_err().kind;
        assert_eq!(kind("1 2"), ParseErrorKind::TrailingGarbage);
        assert_eq!(kind("[1] x"), ParseErrorKind::TrailingGarbage);
        assert_eq!(kind("{\"a\":1,\"a\":2}"), ParseErrorKind::DuplicateKey);
        assert_eq!(kind("{"), ParseErrorKind::UnexpectedEof);
        assert_eq!(kind("\"unterminated"), ParseErrorKind::UnexpectedEof);
        assert_eq!(kind("[1,]"), ParseErrorKind::Syntax);
        assert_eq!(kind("tru"), ParseErrorKind::Syntax);
    }

    #[test]
    fn rejects_numbers_that_overflow_to_infinity() {
        for bad in ["1e999", "-1e999", "123456789e307"] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::NonFiniteNumber, "{bad:?}");
        }
        // The largest finite doubles still parse.
        assert!(parse("1.7976931348623157e308").is_ok());
        assert!(parse("-1.7976931348623157e308").is_ok());
    }

    #[test]
    fn rejects_depth_bombs_without_overflowing() {
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep);
        let bomb = "[".repeat(200_000);
        let err = parse(&bomb).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep);
        // ...and exactly MAX_DEPTH is fine (siblings don't count:
        // depth is nesting, not total containers).
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        assert!(parse("[[1],[2],[3],[{},{}]]").is_ok());
    }

    #[test]
    fn parse_prefix_streams_concatenated_documents() {
        let stream = " {\"a\":1} [2,3]\n\"tail\" ";
        let mut at = 0;
        let mut values = Vec::new();
        while !stream[at..].trim_start().is_empty() {
            let (v, used) = parse_prefix(&stream[at..]).unwrap();
            values.push(v);
            at += used;
        }
        assert_eq!(
            values,
            vec![
                Json::obj(vec![("a", Json::Num(1.0))]),
                Json::Arr(vec![Json::Num(2.0), Json::Num(3.0)]),
                Json::Str("tail".into()),
            ]
        );
        // A torn tail surfaces as an error, not a panic.
        assert!(parse_prefix("{\"a\":").is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn shortest_roundtrip_float_formatting() {
        let n = 46.666666666666664f64;
        let text = Json::Num(n).to_string_compact();
        assert_eq!(parse(&text).unwrap().as_f64(), Some(n));
    }
}
