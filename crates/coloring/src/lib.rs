//! Global graph-coloring heuristics.
//!
//! The paper's BBB baseline (\[7\], Battiti–Bertossi–Bonuccelli) recolors
//! the **entire network** with a centralized near-optimal heuristic at
//! every event (§5: "a strategy that uses a centralized coloring
//! heuristic: the BBB algorithm of \[7\], to recolor the entire network
//! at every event"). We do not have the text of \[7\]; per DESIGN.md we
//! realize BBB as **DSATUR** (Brélaz \[9\], which the paper itself cites
//! for the coloring mapping) applied to the TOCA conflict graph — the
//! canonical near-optimal heuristic of this family — and additionally
//! provide greedy and smallest-last (degeneracy) orderings for
//! comparison and ablation.
//!
//! Colors here are dense `u32` indices starting at 1 so they plug
//! directly into [`minim_graph::Color`].
//!
//! * [`greedy_coloring`] — first-fit in a caller-given order.
//! * [`dsatur`] — Brélaz's saturation-degree heuristic.
//! * [`smallest_last`] — degeneracy ordering + first-fit.
//! * [`exact_chromatic`] — exponential branch-and-bound, for validating
//!   heuristic quality on small graphs in tests.
//! * [`validate_coloring`] — proper-coloring check.

#![deny(missing_docs)]

use minim_graph::UGraph;

/// A coloring of a dense [`UGraph`]: `colors[v]` is the color of vertex
/// `v`, with colors in `1..=max`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Per-vertex colors, 1-based values.
    pub colors: Vec<u32>,
}

impl Coloring {
    /// The number of colors used (the maximum color index, since all
    /// heuristics here use consecutive colors from 1).
    pub fn color_count(&self) -> u32 {
        self.colors.iter().copied().max().unwrap_or(0)
    }
}

/// Checks that `c` is a proper coloring of `g` (adjacent vertices get
/// different colors and every vertex is colored).
pub fn validate_coloring(g: &UGraph, c: &Coloring) -> Result<(), String> {
    if c.colors.len() != g.vertex_count() {
        return Err(format!(
            "coloring covers {} of {} vertices",
            c.colors.len(),
            g.vertex_count()
        ));
    }
    for (i, &col) in c.colors.iter().enumerate() {
        if col == 0 {
            return Err(format!("vertex {i} uncolored"));
        }
    }
    for (u, v) in g.edges() {
        if c.colors[u] == c.colors[v] {
            return Err(format!(
                "edge ({u},{v}) monochromatic with color {}",
                c.colors[u]
            ));
        }
    }
    Ok(())
}

/// First-fit (lowest available color) coloring in the given vertex
/// `order`, which must be a permutation of `0..g.vertex_count()`.
///
/// # Panics
/// Panics if `order` is not a permutation.
pub fn greedy_coloring(g: &UGraph, order: &[usize]) -> Coloring {
    let n = g.vertex_count();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(v < n && !seen[v], "order must be a permutation");
        seen[v] = true;
    }

    let mut colors = vec![0u32; n];
    // Scratch buffer: forbidden[c] == stamp means color c+1 is taken by
    // a neighbor in this round. Stamping avoids clearing per vertex.
    let mut forbidden = vec![0u32; n + 1];
    let mut stamp = 0u32;
    for &v in order {
        stamp += 1;
        for &u in g.neighbors(v) {
            let cu = colors[u];
            if cu != 0 && (cu as usize) <= n {
                forbidden[cu as usize - 1] = stamp;
            }
        }
        let mut c = 0usize;
        while forbidden[c] == stamp {
            c += 1;
        }
        colors[v] = (c + 1) as u32;
    }
    Coloring { colors }
}

/// Identity order `0..n` — the simplest greedy baseline.
pub fn greedy_identity(g: &UGraph) -> Coloring {
    let order: Vec<usize> = (0..g.vertex_count()).collect();
    greedy_coloring(g, &order)
}

/// DSATUR (Brélaz 1979): repeatedly color the vertex with the highest
/// *saturation degree* (number of distinct colors among its neighbors),
/// breaking ties by degree then by index, assigning the lowest legal
/// color. Near-optimal on geometric/sparse graphs; this is the engine
/// of the BBB baseline.
pub fn dsatur(g: &UGraph) -> Coloring {
    let n = g.vertex_count();
    let mut colors = vec![0u32; n];
    if n == 0 {
        return Coloring { colors };
    }
    // Per-vertex sets of neighbor colors, as sorted vecs (small degrees
    // in geometric graphs make this faster than hash sets).
    let mut neighbor_colors: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut uncolored = n;
    while uncolored > 0 {
        // Pick max (saturation, degree, -index).
        let mut best: Option<usize> = None;
        for v in 0..n {
            if colors[v] != 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let sv = neighbor_colors[v].len();
                    let sb = neighbor_colors[b].len();
                    sv > sb || (sv == sb && g.degree(v) > g.degree(b))
                }
            };
            if better {
                best = Some(v);
            }
        }
        let v = best.expect("an uncolored vertex exists");
        // Lowest color not among neighbors.
        let mut c = 1u32;
        for &nc in &neighbor_colors[v] {
            if nc > c {
                break;
            }
            if nc == c {
                c += 1;
            }
        }
        colors[v] = c;
        for &u in g.neighbors(v) {
            if colors[u] == 0 {
                let list = &mut neighbor_colors[u];
                if let Err(i) = list.binary_search(&c) {
                    list.insert(i, c);
                }
            }
        }
        uncolored -= 1;
    }
    Coloring { colors }
}

/// Recursive Largest First (Leighton 1979): peel off one color class
/// at a time. Each class starts from the highest-degree uncolored
/// vertex; subsequent members maximize the number of neighbors among
/// the vertices already *excluded* from the class (so the class packs
/// tightly against its boundary). Usually the strongest of the classic
/// constructive heuristics on dense graphs, at `O(n³)` worst case —
/// provided as a third BBB engine and for the coloring ablation.
pub fn rlf(g: &UGraph) -> Coloring {
    let n = g.vertex_count();
    let mut colors = vec![0u32; n];
    let mut uncolored = n;
    let mut color = 0u32;
    // Scratch:  0 = candidate, 1 = excluded (adjacent to class), 2 = colored.
    while uncolored > 0 {
        color += 1;
        let mut state: Vec<u8> = colors.iter().map(|&c| if c == 0 { 0 } else { 2 }).collect();
        // Seed: max degree among candidates (ties by index).
        let seed = (0..n)
            .filter(|&v| state[v] == 0)
            .max_by_key(|&v| {
                (
                    g.neighbors(v).iter().filter(|&&u| state[u] == 0).count(),
                    n - v,
                )
            })
            .expect("uncolored vertices remain");
        colors[seed] = color;
        uncolored -= 1;
        state[seed] = 2;
        for &u in g.neighbors(seed) {
            if state[u] == 0 {
                state[u] = 1;
            }
        }
        loop {
            // Next member: candidate with the most excluded neighbors;
            // ties by fewest candidate neighbors, then index.
            let next = (0..n).filter(|&v| state[v] == 0).max_by_key(|&v| {
                let excluded = g.neighbors(v).iter().filter(|&&u| state[u] == 1).count();
                let candidates = g.neighbors(v).iter().filter(|&&u| state[u] == 0).count();
                (excluded, n - candidates, n - v)
            });
            let Some(v) = next else { break };
            colors[v] = color;
            uncolored -= 1;
            state[v] = 2;
            for &u in g.neighbors(v) {
                if state[u] == 0 {
                    state[u] = 1;
                }
            }
        }
    }
    Coloring { colors }
}

/// Smallest-last (degeneracy) ordering + first-fit: repeatedly remove a
/// minimum-degree vertex; color in reverse removal order. Guarantees at
/// most `degeneracy + 1` colors.
pub fn smallest_last(g: &UGraph) -> Coloring {
    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| (deg[v], v))
            .expect("vertices remain");
        removed[v] = true;
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u] {
                deg[u] -= 1;
            }
        }
    }
    order.reverse();
    greedy_coloring(g, &order)
}

/// Iterated greedy improvement (Culberson & Luo): reordering vertices
/// so that each existing color class is contiguous and re-running
/// first-fit never increases the color count, and often decreases it.
/// Runs `iterations` passes, alternating class orderings (reverse,
/// largest-first, smallest-first), keeping the best coloring seen.
///
/// Used by the coloring ablation to show how far a cheap local search
/// can push the global heuristics — context for how near-optimal the
/// BBB engines already are on these geometric conflict graphs.
pub fn iterated_greedy(g: &UGraph, start: &Coloring, iterations: usize) -> Coloring {
    assert_eq!(
        start.colors.len(),
        g.vertex_count(),
        "start coloring must cover the graph"
    );
    debug_assert!(validate_coloring(g, start).is_ok());
    let mut best = start.clone();
    let mut current = start.clone();
    for round in 0..iterations {
        // Group vertices by color class.
        let k = current.color_count() as usize;
        let mut classes: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (v, &c) in current.colors.iter().enumerate() {
            classes[c as usize - 1].push(v);
        }
        // Alternate class orders across rounds.
        match round % 3 {
            0 => classes.reverse(),
            1 => classes.sort_by_key(|c| std::cmp::Reverse(c.len())),
            _ => classes.sort_by_key(Vec::len),
        }
        let order: Vec<usize> = classes.into_iter().flatten().collect();
        current = greedy_coloring(g, &order);
        debug_assert!(
            current.color_count() <= best.color_count().max(current.color_count()),
            "grouped re-greedy never worsens"
        );
        if current.color_count() < best.color_count() {
            best = current.clone();
        }
    }
    best
}

/// The exact chromatic number by branch and bound with clique seeding.
/// Exponential — only for validation on small graphs (tests cap at
/// ~12 vertices).
pub fn exact_chromatic(g: &UGraph) -> u32 {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    // Upper bound from DSATUR, lower bound from the exact clique.
    let ub = dsatur(g).color_count();
    let lb = g.max_clique_exact() as u32;
    if lb == ub {
        return ub;
    }

    // Order vertices by degree descending for better pruning.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));

    fn feasible(g: &UGraph, order: &[usize], idx: usize, k: u32, colors: &mut Vec<u32>) -> bool {
        if idx == order.len() {
            return true;
        }
        let v = order[idx];
        // Symmetry breaking: only allow colors up to (max used so far)+1.
        let max_used = colors.iter().copied().max().unwrap_or(0);
        let cap = k.min(max_used + 1);
        'cand: for c in 1..=cap {
            for &u in g.neighbors(v) {
                if colors[u] == c {
                    continue 'cand;
                }
            }
            colors[v] = c;
            if feasible(g, order, idx + 1, k, colors) {
                colors[v] = 0;
                return true;
            }
            colors[v] = 0;
        }
        false
    }

    for k in lb..ub {
        let mut colors = vec![0u32; n];
        if feasible(g, &order, 0, k, &mut colors) {
            return k;
        }
    }
    ub
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cycle(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn complete(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    fn random_graph(n: usize, p: f64, seed: u64) -> UGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = UGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    #[test]
    fn known_chromatic_numbers() {
        assert_eq!(exact_chromatic(&complete(5)), 5);
        assert_eq!(exact_chromatic(&cycle(6)), 2, "even cycle");
        assert_eq!(exact_chromatic(&cycle(7)), 3, "odd cycle");
        assert_eq!(exact_chromatic(&UGraph::new(4)), 1, "independent set");
        assert_eq!(exact_chromatic(&UGraph::new(0)), 0);
    }

    #[test]
    fn dsatur_is_exact_on_easy_families() {
        // DSATUR is provably exact on bipartite graphs.
        let mut g = UGraph::new(6); // K_{3,3}
        for i in 0..3 {
            for j in 3..6 {
                g.add_edge(i, j);
            }
        }
        let c = dsatur(&g);
        assert!(validate_coloring(&g, &c).is_ok());
        assert_eq!(c.color_count(), 2);

        let c = dsatur(&complete(6));
        assert_eq!(c.color_count(), 6);

        let c = dsatur(&cycle(9));
        assert_eq!(c.color_count(), 3);
    }

    #[test]
    fn smallest_last_respects_degeneracy_bound() {
        // A tree has degeneracy 1 → at most 2 colors.
        let mut g = UGraph::new(7);
        for i in 1..7 {
            g.add_edge(i, (i - 1) / 2); // complete binary tree
        }
        let c = smallest_last(&g);
        assert!(validate_coloring(&g, &c).is_ok());
        assert_eq!(c.color_count(), 2);
    }

    #[test]
    fn greedy_coloring_rejects_bad_orders() {
        let g = cycle(4);
        let r = std::panic::catch_unwind(|| greedy_coloring(&g, &[0, 1, 2]));
        assert!(r.is_err(), "short order must panic");
        let r = std::panic::catch_unwind(|| greedy_coloring(&g, &[0, 1, 2, 2]));
        assert!(r.is_err(), "duplicate order must panic");
    }

    #[test]
    fn validate_coloring_detects_problems() {
        let g = cycle(4);
        let good = Coloring {
            colors: vec![1, 2, 1, 2],
        };
        assert!(validate_coloring(&g, &good).is_ok());
        let mono = Coloring {
            colors: vec![1, 1, 1, 1],
        };
        assert!(validate_coloring(&g, &mono).is_err());
        let uncolored = Coloring {
            colors: vec![1, 2, 1, 0],
        };
        assert!(validate_coloring(&g, &uncolored).is_err());
        let short = Coloring {
            colors: vec![1, 2, 1],
        };
        assert!(validate_coloring(&g, &short).is_err());
    }

    #[test]
    fn heuristics_bounded_by_max_degree_plus_one() {
        for seed in 0..10 {
            let g = random_graph(24, 0.3, seed);
            let bound = g.max_degree() as u32 + 1;
            for c in [greedy_identity(&g), dsatur(&g), smallest_last(&g), rlf(&g)] {
                assert!(validate_coloring(&g, &c).is_ok());
                assert!(c.color_count() <= bound);
            }
        }
    }

    #[test]
    fn rlf_is_exact_on_easy_families() {
        assert_eq!(rlf(&complete(6)).color_count(), 6);
        assert_eq!(rlf(&cycle(8)).color_count(), 2);
        assert_eq!(rlf(&cycle(9)).color_count(), 3);
        assert_eq!(rlf(&UGraph::new(5)).color_count(), 1);
        // K_{3,3}: one side per class.
        let mut g = UGraph::new(6);
        for i in 0..3 {
            for j in 3..6 {
                g.add_edge(i, j);
            }
        }
        let c = rlf(&g);
        assert!(validate_coloring(&g, &c).is_ok());
        assert_eq!(c.color_count(), 2);
    }

    #[test]
    fn iterated_greedy_never_worsens_and_sometimes_improves() {
        let mut improved = 0;
        for seed in 0..20 {
            let g = random_graph(30, 0.3, 3000 + seed);
            let start = greedy_identity(&g);
            let better = iterated_greedy(&g, &start, 12);
            assert!(validate_coloring(&g, &better).is_ok());
            assert!(better.color_count() <= start.color_count());
            if better.color_count() < start.color_count() {
                improved += 1;
            }
        }
        assert!(
            improved >= 5,
            "iterated greedy should improve naive greedy regularly, got {improved}/20"
        );
    }

    #[test]
    fn iterated_greedy_zero_iterations_is_identity() {
        let g = random_graph(15, 0.3, 99);
        let start = dsatur(&g);
        let same = iterated_greedy(&g, &start, 0);
        assert_eq!(same.colors, start.colors);
    }

    #[test]
    fn rlf_competitive_with_dsatur_on_random_graphs() {
        let mut rlf_within_one = 0;
        let trials = 25;
        for seed in 0..trials {
            let g = random_graph(28, 0.35, 2000 + seed);
            let a = rlf(&g).color_count();
            let b = dsatur(&g).color_count();
            if a <= b + 1 {
                rlf_within_one += 1;
            }
        }
        assert!(
            rlf_within_one >= trials * 8 / 10,
            "RLF within one color of DSATUR only {rlf_within_one}/{trials}"
        );
    }

    #[test]
    fn dsatur_usually_beats_or_ties_identity_greedy_on_random_graphs() {
        let mut dsatur_wins_or_ties = 0;
        let trials = 30;
        for seed in 0..trials {
            let g = random_graph(30, 0.25, 1000 + seed);
            if dsatur(&g).color_count() <= greedy_identity(&g).color_count() {
                dsatur_wins_or_ties += 1;
            }
        }
        // DSATUR should dominate the naive order nearly always.
        assert!(
            dsatur_wins_or_ties >= trials * 8 / 10,
            "DSATUR won/tied only {dsatur_wins_or_ties}/{trials}"
        );
    }

    proptest! {
        #[test]
        fn all_heuristics_produce_proper_colorings(
            edges in proptest::collection::vec((0usize..12, 0usize..12), 0..50)
        ) {
            let mut g = UGraph::new(12);
            for (u, v) in edges {
                if u != v {
                    g.add_edge(u, v);
                }
            }
            for c in [greedy_identity(&g), dsatur(&g), smallest_last(&g), rlf(&g)] {
                prop_assert!(validate_coloring(&g, &c).is_ok());
            }
        }

        #[test]
        fn heuristics_are_sandwiched_by_exact(
            edges in proptest::collection::vec((0usize..9, 0usize..9), 0..25)
        ) {
            let mut g = UGraph::new(9);
            for (u, v) in edges {
                if u != v {
                    g.add_edge(u, v);
                }
            }
            let chi = exact_chromatic(&g);
            let clique = g.max_clique_exact() as u32;
            prop_assert!(clique <= chi);
            for c in [dsatur(&g), smallest_last(&g), greedy_identity(&g), rlf(&g)] {
                prop_assert!(c.color_count() >= chi);
            }
        }
    }
}
