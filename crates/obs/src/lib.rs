//! # minim-obs — the observability spine
//!
//! A dependency-free metrics registry and span tracer built for the
//! engine's hot paths: steady-state instrumentation is
//! **zero-allocation** (pinned by the workspace `alloc_smoke` test)
//! and **inert** — observation never feeds back into control flow, so
//! every bit-identity determinism contract holds with instrumentation
//! compiled in.
//!
//! Three primitives, addressed by interned static keys:
//!
//! * **counters** — sharded relaxed atomics ([`counter!`]);
//! * **gauges** — last-write-wins `f64` ([`gauge!`]);
//! * **histograms** — log2-bucketed latencies ([`observe_ns!`]);
//!
//! plus **spans** ([`span!`]): RAII enter/exit pairs recorded into
//! fixed-capacity drop-oldest ring buffers and aggregated post-run
//! into a self/total-time [`Profile`] tree.
//!
//! ## Cost model
//!
//! | state | per-site cost |
//! |---|---|
//! | recording (default) | TLS read + relaxed `fetch_add` |
//! | disabled ([`set_enabled`]`(false)`) | one relaxed load + branch |
//! | feature `off` | nothing — sites are const-folded away |
//!
//! The `off` cargo feature (exposed as `obs-off` by dependent crates)
//! flips the [`COMPILED`] constant to `false`; every macro guards its
//! body with it, so instrumentation sites compile to no-ops while the
//! API (and types like [`MetricsSnapshot`]) remain, returning empties.
//!
//! ## Serialisation
//!
//! The registry is dependency-free by design; JSON export of
//! [`MetricsSnapshot`] / [`Profile`] (the `minim-trace/1` document)
//! lives in `minim-sim`, next to the workspace's own `json` module.

#![deny(missing_docs)]

mod registry;
pub mod span;

pub use registry::{
    counter_add, enabled, gauge_set, intern, observe_ns, reset, set_enabled, snapshot,
    HistogramSnapshot, Key, Kind, MetricsSnapshot, HIST_BUCKETS, MAX_COUNTERS, MAX_GAUGES,
    MAX_HISTOGRAMS, MAX_SPANS, SHARDS,
};
pub use span::{
    profile, Profile, ProfileNode, SpanGuard, SpanRecord, MAX_DEPTH, MAX_RINGS, RING_CAP,
};

/// `false` when the `off` feature compiled instrumentation out. The
/// site macros guard on this constant so the optimiser deletes their
/// bodies (statics included) in `off` builds.
#[cfg(not(feature = "off"))]
pub const COMPILED: bool = true;
/// `false` when the `off` feature compiled instrumentation out.
#[cfg(feature = "off")]
pub const COMPILED: bool = false;

/// Interns a key once per call site and evaluates to the cached
/// [`Key`]. Used by the site macros; useful directly when a site
/// wants to pre-resolve a key outside a loop.
#[macro_export]
macro_rules! obs_key {
    ($kind:ident, $name:expr) => {{
        static KEY: ::std::sync::OnceLock<$crate::Key> = ::std::sync::OnceLock::new();
        *KEY.get_or_init(|| $crate::intern($name, $crate::Kind::$kind))
    }};
}

/// Adds to a counter: `counter!("net.apply.join", 1)`. The name must
/// be a `&'static str`; the key is interned once per site.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        if $crate::COMPILED {
            $crate::counter_add($crate::obs_key!(Counter, $name), $n);
        }
    };
}

/// Sets a gauge: `gauge!("resident.shards", shards as f64)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        if $crate::COMPILED {
            $crate::gauge_set($crate::obs_key!(Gauge, $name), $v);
        }
    };
}

/// Records a nanosecond latency observation:
/// `observe_ns!("serve.append_ns", t.elapsed().as_nanos() as u64)`.
#[macro_export]
macro_rules! observe_ns {
    ($name:expr, $ns:expr) => {
        if $crate::COMPILED {
            $crate::observe_ns($crate::obs_key!(Histogram, $name), $ns);
        }
    };
}

/// Opens a span over the enclosing scope:
/// `let _span = minim_obs::span!("resident.route");`. Evaluates to a
/// [`SpanGuard`] that records on drop.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::COMPILED {
            $crate::SpanGuard::enter($crate::obs_key!(Span, $name))
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and the test harness is
    // multi-threaded, so tests here use unique key names and never
    // assert global totals someone else could bump.

    #[test]
    fn counters_accumulate_across_shards() {
        counter!("test.obs.counter", 2);
        counter!("test.obs.counter", 3);
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| counter!("test.obs.counter", 10)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = snapshot();
        if COMPILED {
            assert_eq!(snap.counter("test.obs.counter"), Some(45));
        } else {
            assert_eq!(snap.counter("test.obs.counter"), None);
        }
    }

    #[test]
    fn gauges_last_write_wins() {
        gauge!("test.obs.gauge", 1.5);
        gauge!("test.obs.gauge", 2.5);
        if COMPILED {
            assert_eq!(snapshot().gauge("test.obs.gauge"), Some(2.5));
        }
    }

    #[test]
    fn histogram_buckets_and_totals() {
        observe_ns!("test.obs.hist", 0);
        observe_ns!("test.obs.hist", 1);
        observe_ns!("test.obs.hist", 7);
        observe_ns!("test.obs.hist", 1024);
        if !COMPILED {
            return;
        }
        let snap = snapshot();
        let h = snap.histogram("test.obs.hist").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum_ns, 1032);
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, 1024);
        // 0 → bucket 0, 1 → bucket 1, 7 → bucket 3, 1024 → bucket 11.
        for (b, c) in [(0, 1), (1, 1), (3, 1), (11, 1)] {
            assert_eq!(
                h.buckets.iter().find(|&&(eb, _)| eb == b).map(|&(_, c)| c),
                Some(c),
                "bucket {b}"
            );
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        if !COMPILED {
            return;
        }
        counter!("test.obs.disabled", 1);
        set_enabled(false);
        counter!("test.obs.disabled", 100);
        let _span = span!("test.obs.disabled.span");
        drop(_span);
        set_enabled(true);
        counter!("test.obs.disabled", 1);
        assert_eq!(snapshot().counter("test.obs.disabled"), Some(2));
    }

    #[test]
    fn spans_nest_into_a_profile_tree() {
        if !COMPILED {
            return;
        }
        {
            let _outer = span!("test.obs.outer");
            for _ in 0..3 {
                let _inner = span!("test.obs.inner");
            }
        }
        let prof = profile();
        let outer = prof
            .roots
            .iter()
            .find(|n| n.name == "test.obs.outer")
            .expect("outer span aggregated");
        assert_eq!(outer.count, 1);
        let inner = outer
            .children
            .iter()
            .find(|n| n.name == "test.obs.inner")
            .expect("inner nested under outer");
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(
            outer.self_ns,
            outer.total_ns - outer.children.iter().map(|c| c.total_ns).sum::<u64>()
        );
    }

    #[test]
    fn depth_overflow_is_counted_not_recorded() {
        if !COMPILED {
            return;
        }
        fn nest(d: usize) {
            if d == 0 {
                return;
            }
            let _g = span!("test.obs.deep");
            nest(d - 1);
        }
        nest(MAX_DEPTH + 3);
        let snap = snapshot();
        assert!(snap.spans_dropped >= 3, "deep spans counted as dropped");
    }
}
