//! Enter/exit span tracing into fixed-capacity per-thread rings.
//!
//! Ring policy
//! -----------
//! A fixed pool of [`MAX_RINGS`] rings lives in the registry; a thread
//! claims a ring slot round-robin on first span exit and keeps it for
//! life (slots are reused modulo the pool, so records survive
//! short-lived worker threads — the resident executor's wave workers
//! land in a bounded set of rings instead of losing their spans on
//! thread exit). Each ring holds [`RING_CAP`] fixed-size records; when
//! full, the **oldest record is overwritten** and the overwrite is
//! counted — [`crate::MetricsSnapshot::spans_dropped`] surfaces the
//! total, so a truncated profile is always visibly truncated.
//!
//! A record carries the full key path from the root span down
//! ([`MAX_DEPTH`] deep at most; deeper nestings are counted as
//! dropped), its start offset from the registry epoch, and its
//! duration. Records are self-contained, so interleaving threads in a
//! shared ring loses nothing.
//!
//! The post-run [`profile`] aggregator groups records by path into a
//! tree of `{count, total_ns, self_ns}` nodes, where self-time is
//! total minus the recorded children's total.

use crate::registry::{registry, Key, Kind};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Ring pool size (threads map round-robin onto these).
pub const MAX_RINGS: usize = 32;
/// Span records per ring.
pub const RING_CAP: usize = 2048;
/// Maximum span nesting depth a record can carry.
pub const MAX_DEPTH: usize = 8;

/// One completed span: the interned-key path from the root enclosing
/// span down to this one, plus wall-clock placement.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Span-key ids, root first; only `path[..depth]` is meaningful.
    pub path: [u16; MAX_DEPTH],
    /// Number of valid entries in `path` (≥ 1).
    pub depth: u8,
    /// Start offset from the registry epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

pub(crate) struct RingInner {
    recs: Vec<SpanRecord>,
    head: usize,
    /// Records ever written (≥ `recs.len()`); the excess over
    /// `RING_CAP` is the drop-oldest overwrite count.
    total: u64,
    /// Spans discarded for exceeding `MAX_DEPTH`.
    depth_dropped: u64,
}

/// A fixed-capacity drop-oldest span ring.
pub(crate) struct Ring {
    inner: Mutex<RingInner>,
}

impl Ring {
    pub(crate) fn new() -> Self {
        Ring {
            inner: Mutex::new(RingInner {
                recs: Vec::new(),
                head: 0,
                total: 0,
                depth_dropped: 0,
            }),
        }
    }
}

/// Per-thread span state: the claimed ring slot and a fixed-depth
/// stack of open spans. `Copy` so it lives in a const-initialised
/// TLS `Cell` — no lazy TLS allocation, no destructor.
#[derive(Clone, Copy)]
struct ThreadSpans {
    ring: u16,
    depth: u8,
    path: [u16; MAX_DEPTH],
    starts: [u64; MAX_DEPTH],
}

const EMPTY: ThreadSpans = ThreadSpans {
    ring: u16::MAX,
    depth: 0,
    path: [0; MAX_DEPTH],
    starts: [0; MAX_DEPTH],
};

thread_local! {
    static SPANS: Cell<ThreadSpans> = const { Cell::new(EMPTY) };
}

#[inline]
fn now_ns() -> u64 {
    registry().epoch.elapsed().as_nanos() as u64
}

/// RAII guard for an open span: records on drop. Obtain via
/// [`crate::span!`] (or [`SpanGuard::enter`] with an interned key).
#[must_use = "a span measures the scope of its guard"]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// Opens a span. If the registry is disabled — or the fixed
    /// nesting depth is exhausted — the guard is inert.
    #[inline]
    pub fn enter(key: Key) -> SpanGuard {
        if !crate::COMPILED || !crate::enabled() {
            return SpanGuard { armed: false };
        }
        debug_assert_eq!(key.kind(), Kind::Span);
        SPANS.with(|tl| {
            let mut ts = tl.get();
            if (ts.depth as usize) >= MAX_DEPTH {
                // Too deep to record: count it against this thread's
                // ring and stay inert (drop() must not pop).
                let slot = claim_ring(&mut ts);
                tl.set(ts);
                let mut ring = registry().rings[slot].inner.lock().unwrap();
                ring.depth_dropped += 1;
                return SpanGuard { armed: false };
            }
            ts.path[ts.depth as usize] = key.id();
            ts.starts[ts.depth as usize] = now_ns();
            ts.depth += 1;
            tl.set(ts);
            SpanGuard { armed: true }
        })
    }

    /// An inert guard (used when observation is compiled out or
    /// disabled).
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard { armed: false }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        SPANS.with(|tl| {
            let mut ts = tl.get();
            debug_assert!(ts.depth > 0);
            ts.depth -= 1;
            let depth = ts.depth;
            let start = ts.starts[depth as usize];
            let rec = SpanRecord {
                path: ts.path,
                depth: depth + 1,
                start_ns: start,
                dur_ns: end.saturating_sub(start),
            };
            let slot = claim_ring(&mut ts);
            tl.set(ts);
            push_record(slot, rec);
        });
    }
}

/// Returns the thread's ring slot, claiming one round-robin from the
/// registry counter on first use. Allocation-free.
#[inline]
fn claim_ring(ts: &mut ThreadSpans) -> usize {
    if ts.ring != u16::MAX {
        return ts.ring as usize;
    }
    let slot = registry().thread_ctr.fetch_add(1, Ordering::Relaxed) % MAX_RINGS;
    ts.ring = slot as u16;
    slot
}

fn push_record(slot: usize, rec: SpanRecord) {
    let mut ring = registry().rings[slot].inner.lock().unwrap();
    if ring.recs.capacity() == 0 {
        // First record in this ring slot ever: size the buffer. This
        // is the one allocation a ring makes; warm-up covers it.
        ring.recs.reserve_exact(RING_CAP);
    }
    if ring.recs.len() < RING_CAP {
        ring.recs.push(rec);
    } else {
        let head = ring.head;
        ring.recs[head] = rec;
        ring.head = (head + 1) % RING_CAP;
    }
    ring.total += 1;
}

/// `(recorded, dropped)` totals across all rings: records currently
/// resident, and records lost to overwrite or depth overflow.
pub(crate) fn ring_totals() -> (u64, u64) {
    let mut resident = 0u64;
    let mut dropped = 0u64;
    for ring in &registry().rings {
        let r = ring.inner.lock().unwrap();
        resident += r.recs.len() as u64;
        dropped += r.total - r.recs.len() as u64 + r.depth_dropped;
    }
    (resident, dropped)
}

pub(crate) fn reset_rings() {
    for ring in &registry().rings {
        let mut r = ring.inner.lock().unwrap();
        r.recs.clear();
        r.head = 0;
        r.total = 0;
        r.depth_dropped = 0;
    }
}

/// A node of the aggregated profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span name (interned key string).
    pub name: String,
    /// Completed spans aggregated into this node.
    pub count: u64,
    /// Total wall-clock inside this span, nanoseconds.
    pub total_ns: u64,
    /// `total_ns` minus the recorded children's `total_ns` (clamped
    /// at zero: children whose parent record was overwritten can
    /// out-total a partially-dropped parent).
    pub self_ns: u64,
    /// Child spans, sorted by descending `total_ns`.
    pub children: Vec<ProfileNode>,
}

/// The post-run aggregation of every span ring.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Root spans, sorted by descending `total_ns`.
    pub roots: Vec<ProfileNode>,
    /// Records aggregated.
    pub recorded: u64,
    /// Records lost to the drop-oldest policy or depth overflow —
    /// when non-zero the totals undercount.
    pub dropped: u64,
}

/// Aggregates the span rings into a self/total-time tree. Cold path —
/// allocates freely; never call from a measured steady state.
pub fn profile() -> Profile {
    if !crate::COMPILED {
        return Profile::default();
    }
    let reg = registry();
    // Span-id → name map for rendering.
    let names: Vec<String> = {
        let names = reg.names.lock().unwrap();
        names
            .iter()
            .filter(|&&(_, k)| k == Kind::Span)
            .map(|&(n, _)| n.to_string())
            .collect()
    };
    let mut agg: BTreeMap<Vec<u16>, (u64, u64)> = BTreeMap::new();
    let mut recorded = 0u64;
    for ring in &reg.rings {
        let r = ring.inner.lock().unwrap();
        for rec in &r.recs {
            recorded += 1;
            let path = rec.path[..rec.depth as usize].to_vec();
            let e = agg.entry(path).or_insert((0, 0));
            e.0 += 1;
            e.1 += rec.dur_ns;
        }
    }
    let (_, dropped) = ring_totals();
    let mut prof = Profile {
        roots: Vec::new(),
        recorded,
        dropped,
    };
    // BTreeMap iterates paths in prefix order: a parent path sorts
    // immediately before its children, so a stack assembles the tree
    // in one pass.
    let mut stack: Vec<(Vec<u16>, ProfileNode)> = Vec::new();
    fn unwind(
        stack: &mut Vec<(Vec<u16>, ProfileNode)>,
        roots: &mut Vec<ProfileNode>,
        next: Option<&[u16]>,
    ) {
        while let Some((path, _)) = stack.last() {
            let keep = next.is_some_and(|n| n.starts_with(path));
            if keep {
                return;
            }
            let (_, mut node) = stack.pop().unwrap();
            node.self_ns = node
                .total_ns
                .saturating_sub(node.children.iter().map(|c| c.total_ns).sum());
            node.children.sort_by_key(|c| std::cmp::Reverse(c.total_ns));
            match stack.last_mut() {
                Some((_, parent)) => parent.children.push(node),
                None => roots.push(node),
            }
        }
    }
    for (path, (count, total_ns)) in &agg {
        unwind(&mut stack, &mut prof.roots, Some(path));
        let id = *path.last().unwrap() as usize;
        let name = names
            .get(id)
            .cloned()
            .unwrap_or_else(|| format!("span#{id}"));
        stack.push((
            path.clone(),
            ProfileNode {
                name,
                count: *count,
                total_ns: *total_ns,
                self_ns: 0,
                children: Vec::new(),
            },
        ));
    }
    unwind(&mut stack, &mut prof.roots, None);
    prof.roots.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    prof
}
