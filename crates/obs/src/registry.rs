//! The metrics registry: interned keys, fixed-slot storage, sharded
//! relaxed atomics.
//!
//! Layout
//! ------
//! Keys are interned once per call site (via [`crate::obs_key!`]'s
//! `OnceLock`) into a table of `(&'static str, Kind)` pairs guarded by
//! a plain mutex — interning is cold, hot paths only carry the small
//! [`Key`] handle out. Each kind owns a dense id space indexing
//! fixed-capacity atomic arrays allocated once at registry init:
//!
//! * **counters** — `SHARDS × MAX_COUNTERS` relaxed `AtomicU64`s; a
//!   thread picks its shard lane on first use (round-robin over a
//!   global counter) so concurrent increments do not bounce a single
//!   cache line. Reads sum across shards.
//! * **gauges** — one `AtomicU64` per key holding `f64` bits,
//!   last-write-wins.
//! * **histograms** — log2-bucketed latency histograms: 64 buckets
//!   (bucket *b* counts values in `[2^(b-1), 2^b)`), plus
//!   count/sum/min/max atomics. Unsharded — histogram sites are
//!   per-settle / per-append, not per-event.
//!
//! Steady-state updates are a thread-local read, an index computation,
//! and a relaxed `fetch_add` — no locks, no allocation. The only
//! allocations ever made are the registry arrays themselves (once, on
//! first touch) and span rings (once per ring slot, see
//! [`crate::span`]); both are warm before any measured steady state.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum number of counter keys.
pub const MAX_COUNTERS: usize = 192;
/// Maximum number of gauge keys.
pub const MAX_GAUGES: usize = 64;
/// Maximum number of histogram keys.
pub const MAX_HISTOGRAMS: usize = 64;
/// Maximum number of span keys.
pub const MAX_SPANS: usize = 128;
/// Counter shard lanes (threads map round-robin onto these).
pub const SHARDS: usize = 8;
/// Log2 buckets per histogram.
pub const HIST_BUCKETS: usize = 64;

/// What a key addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic event count.
    Counter,
    /// Last-write-wins `f64` value.
    Gauge,
    /// Log2-bucketed latency histogram (nanoseconds).
    Histogram,
    /// Span name for the tracing rings.
    Span,
}

/// An interned metric key: a kind plus a dense per-kind slot index.
/// Cheap to copy; obtained once per site via [`crate::obs_key!`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Key {
    kind: Kind,
    id: u16,
}

impl Key {
    /// The key's kind.
    pub fn kind(self) -> Kind {
        self.kind
    }

    /// The dense per-kind slot index.
    pub fn id(self) -> u16 {
        self.id
    }
}

/// One histogram's storage.
pub(crate) struct Hist {
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) buckets: Vec<AtomicU64>,
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-wide registry. Heap-allocated once on first touch so
/// the (few-hundred-KiB) atomic arrays never sit in `.bss`.
pub(crate) struct Registry {
    /// Interned `(name, kind)` pairs in intern order; a key's per-kind
    /// id counts same-kind entries before it. Cold path only.
    pub(crate) names: Mutex<Vec<(&'static str, Kind)>>,
    /// `SHARDS × MAX_COUNTERS`, shard-major.
    pub(crate) counters: Vec<AtomicU64>,
    /// `f64` bits per gauge key.
    pub(crate) gauges: Vec<AtomicU64>,
    pub(crate) hists: Vec<Hist>,
    pub(crate) rings: Vec<crate::span::Ring>,
    /// Monotonic epoch; span timestamps are offsets from this.
    pub(crate) epoch: Instant,
    pub(crate) enabled: AtomicBool,
    /// Round-robin source for thread shard / ring assignment.
    pub(crate) thread_ctr: AtomicUsize,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        names: Mutex::new(Vec::with_capacity(64)),
        counters: (0..SHARDS * MAX_COUNTERS)
            .map(|_| AtomicU64::new(0))
            .collect(),
        gauges: (0..MAX_GAUGES).map(|_| AtomicU64::new(0)).collect(),
        hists: (0..MAX_HISTOGRAMS).map(|_| Hist::new()).collect(),
        rings: (0..crate::span::MAX_RINGS)
            .map(|_| crate::span::Ring::new())
            .collect(),
        epoch: Instant::now(),
        enabled: AtomicBool::new(true),
        thread_ctr: AtomicUsize::new(0),
    })
}

thread_local! {
    /// This thread's counter shard lane; `u16::MAX` until first use.
    static SHARD: std::cell::Cell<u16> = const { std::cell::Cell::new(u16::MAX) };
}

/// The calling thread's counter shard, assigned round-robin on first
/// use. Allocation-free (const-initialised TLS, `Copy` cell).
#[inline]
pub(crate) fn thread_shard() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != u16::MAX {
            return v as usize;
        }
        let lane = registry().thread_ctr.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(lane as u16);
        lane
    })
}

/// Whether the registry is recording. A disabled registry costs one
/// relaxed load and a branch per instrumentation site.
#[inline]
pub fn enabled() -> bool {
    if !crate::COMPILED {
        return false;
    }
    registry().enabled.load(Ordering::Relaxed)
}

/// Turns recording on or off at runtime (default: on). Sites become
/// a single load-and-branch while off.
pub fn set_enabled(on: bool) {
    if crate::COMPILED {
        registry().enabled.store(on, Ordering::Relaxed);
    }
}

/// Interns `name` under `kind`, returning the existing key if the
/// pair was seen before. Cold: call once per site and cache the
/// [`Key`] (the [`crate::obs_key!`] macro does exactly that).
///
/// # Panics
/// Panics if the fixed per-kind key table is full.
pub fn intern(name: &'static str, kind: Kind) -> Key {
    if !crate::COMPILED {
        return Key { kind, id: 0 };
    }
    let reg = registry();
    let mut names = reg.names.lock().unwrap();
    let mut id = 0u16;
    for &(n, k) in names.iter() {
        if k == kind {
            if n == name {
                return Key { kind, id };
            }
            id += 1;
        }
    }
    let cap = match kind {
        Kind::Counter => MAX_COUNTERS,
        Kind::Gauge => MAX_GAUGES,
        Kind::Histogram => MAX_HISTOGRAMS,
        Kind::Span => MAX_SPANS,
    };
    assert!(
        (id as usize) < cap,
        "minim-obs: key table full for {kind:?} interning {name:?}"
    );
    names.push((name, kind));
    Key { kind, id }
}

/// Adds `n` to a counter. Relaxed, sharded, allocation-free.
#[inline]
pub fn counter_add(key: Key, n: u64) {
    if !crate::COMPILED {
        return;
    }
    debug_assert_eq!(key.kind, Kind::Counter);
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return;
    }
    let slot = thread_shard() * MAX_COUNTERS + key.id as usize;
    reg.counters[slot].fetch_add(n, Ordering::Relaxed);
}

/// Sets a gauge to `v` (last write wins). Allocation-free.
#[inline]
pub fn gauge_set(key: Key, v: f64) {
    if !crate::COMPILED {
        return;
    }
    debug_assert_eq!(key.kind, Kind::Gauge);
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return;
    }
    reg.gauges[key.id as usize].store(v.to_bits(), Ordering::Relaxed);
}

/// Log2 bucket index for a nanosecond value: 0 for 0, otherwise the
/// bit length of `v` clamped to the top bucket.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Records a nanosecond observation into a histogram. Allocation-free.
#[inline]
pub fn observe_ns(key: Key, ns: u64) {
    if !crate::COMPILED {
        return;
    }
    debug_assert_eq!(key.kind, Kind::Histogram);
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return;
    }
    let h = &reg.hists[key.id as usize];
    h.count.fetch_add(1, Ordering::Relaxed);
    h.sum.fetch_add(ns, Ordering::Relaxed);
    h.min.fetch_min(ns, Ordering::Relaxed);
    h.max.fetch_max(ns, Ordering::Relaxed);
    h.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
}

/// One histogram in a [`MetricsSnapshot`]: totals plus the non-empty
/// log2 buckets as `(bucket exponent, count)` — bucket `b` counted
/// values in `[2^(b-1), 2^b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Interned key name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (ns).
    pub sum_ns: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation (0 when empty).
    pub max_ns: u64,
    /// Non-empty `(bucket exponent, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every interned metric, sorted by name
/// within each kind. Produced by [`snapshot`]; serialisation lives
/// with the caller (the registry stays dependency-free).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, summed across shards.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span records currently resident in the tracing rings.
    pub spans_recorded: u64,
    /// Span records overwritten by the drop-oldest ring policy, plus
    /// spans discarded for exceeding the fixed nesting depth.
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Captures the current value of every interned metric. Cold path —
/// allocates freely; never call from a measured steady state.
pub fn snapshot() -> MetricsSnapshot {
    if !crate::COMPILED {
        return MetricsSnapshot::default();
    }
    let reg = registry();
    let names = reg.names.lock().unwrap().clone();
    let mut snap = MetricsSnapshot::default();
    let (mut nc, mut ng, mut nh) = (0usize, 0usize, 0usize);
    for (name, kind) in names {
        match kind {
            Kind::Counter => {
                let mut total = 0u64;
                for s in 0..SHARDS {
                    total = total
                        .wrapping_add(reg.counters[s * MAX_COUNTERS + nc].load(Ordering::Relaxed));
                }
                snap.counters.push((name.to_string(), total));
                nc += 1;
            }
            Kind::Gauge => {
                let bits = reg.gauges[ng].load(Ordering::Relaxed);
                snap.gauges.push((name.to_string(), f64::from_bits(bits)));
                ng += 1;
            }
            Kind::Histogram => {
                let h = &reg.hists[nh];
                let count = h.count.load(Ordering::Relaxed);
                let min = h.min.load(Ordering::Relaxed);
                snap.histograms.push(HistogramSnapshot {
                    name: name.to_string(),
                    count,
                    sum_ns: h.sum.load(Ordering::Relaxed),
                    min_ns: if count == 0 { 0 } else { min },
                    max_ns: h.max.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(b, c)| {
                            let c = c.load(Ordering::Relaxed);
                            (c > 0).then_some((b as u32, c))
                        })
                        .collect(),
                });
                nh += 1;
            }
            Kind::Span => {}
        }
    }
    snap.counters.sort();
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let (recorded, dropped) = crate::span::ring_totals();
    snap.spans_recorded = recorded;
    snap.spans_dropped = dropped;
    snap
}

/// Zeroes every metric and clears the span rings. Interned keys (and
/// the `Key` handles sites cached) stay valid. Meant for benches and
/// the lab CLI to scope a measurement; racing writers lose updates
/// but nothing breaks.
pub fn reset() {
    if !crate::COMPILED {
        return;
    }
    let reg = registry();
    for c in &reg.counters {
        c.store(0, Ordering::Relaxed);
    }
    for g in &reg.gauges {
        g.store(0, Ordering::Relaxed);
    }
    for h in &reg.hists {
        h.reset();
    }
    crate::span::reset_rings();
}
