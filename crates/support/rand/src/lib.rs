//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates-io mirror, so this
//! workspace vendors the *API subset* of `rand 0.8` that the
//! simulation uses: [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_bool`], [`Rng::gen_range`] over integer/float ranges,
//! and [`seq::SliceRandom`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256** seeded through SplitMix64 — deterministic across
//! platforms and runs, which is all the experiments require (the paper
//! reports distribution means, not byte-identical streams of any
//! particular PRNG).
//!
//! Swapping the real crate back in is a one-line change in the
//! workspace manifest; no call site mentions anything beyond the rand
//! 0.8 API.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits (the `rand`
/// `Standard` distribution, for the types this workspace draws).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection-free widening multiply (Lemire); bias is < 2^-64 per
    // draw, far below anything the statistics here could observe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Uniform over the *closed* interval, matching rand
                // 0.8: draw from [0, 1] by normalizing 53 random bits
                // over their maximum value.
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` from its full `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic, fast, and statistically strong for
    /// simulation purposes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: u64 = StdRng::seed_from_u64(42).gen();
        assert_ne!(first, c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..8);
            assert!((3..8).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
        assert!(!rng.gen_bool(0.0));
        let _ = rng.gen_bool(1.0); // must not panic at the edge
    }

    #[test]
    fn unit_interval_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: &[u32] = &[];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_compatible_with_unsized_rng_params() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(takes_unsized(&mut rng) < 100);
    }
}
