//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-io mirror, so this workspace
//! vendors the API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both invocation
//! forms). Measurement is deliberately simple but honest:
//!
//! 1. warm up for a fixed budget,
//! 2. pick an iteration count so one sample lasts ≥ ~1 ms,
//! 3. take `sample_size` samples,
//! 4. report min / median / mean per iteration.
//!
//! There are no plots, baselines, or statistical regressions — run
//! times print to stdout in a stable, grep-friendly format:
//!
//! ```text
//! bench-name    time: [min 1.20 µs  median 1.24 µs  mean 1.25 µs]  (50 samples x 800 iters)
//! ```

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    mode: BenchMode,
}

enum BenchMode {
    /// Calibrating: run once, record the duration.
    Calibrate,
    /// Measuring: run `iters_per_sample` times per sample.
    Measure { sample_count: usize },
}

impl Bencher<'_> {
    /// Times `routine` (the usual hot loop).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Calibrate => {
                let start = Instant::now();
                black_box(routine());
                self.samples.push(start.elapsed());
            }
            BenchMode::Measure { sample_count } => {
                for _ in 0..sample_count {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        black_box(routine());
                    }
                    self.samples.push(start.elapsed());
                }
            }
        }
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            BenchMode::Calibrate => {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                self.samples.push(start.elapsed());
            }
            BenchMode::Measure { sample_count } => {
                for _ in 0..sample_count {
                    let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
                    let start = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 50,
            warm_up: Duration::from_millis(120),
            measurement: Duration::from_millis(400),
        }
    }
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.config.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_bench(name, self.config, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Runs `f` as `group-name/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_bench(&format!("{}/{}", self.name, id), self.config, f);
        self
    }

    /// Runs `f` with `input` as `group-name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.config, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reporting happens per-bench; this exists for
    /// API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F>(name: &str, config: Config, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    // Calibration: run single iterations until the warm-up budget is
    // spent, tracking the typical duration of one call. A closure
    // that never calls `iter`/`iter_batched` records nothing — bail
    // out after a bounded number of attempts instead of spinning (and
    // instead of dividing by zero below).
    let mut calib: Vec<Duration> = Vec::new();
    let warm_start = Instant::now();
    let mut attempts = 0u32;
    while warm_start.elapsed() < config.warm_up || calib.is_empty() {
        let mut b = Bencher {
            samples: &mut calib,
            iters_per_sample: 1,
            mode: BenchMode::Calibrate,
        };
        f(&mut b);
        attempts += 1;
        if calib.len() >= 10_000 || (calib.is_empty() && attempts >= 100) {
            break;
        }
    }
    if calib.is_empty() {
        println!("{name:<48} skipped: benchmark closure drove no iterations");
        return;
    }
    let per_iter = calib.iter().sum::<Duration>() / calib.len() as u32;

    // Aim each sample at ≥ 1 ms, and the whole measurement at the
    // configured budget.
    let target_sample =
        (config.measurement / config.sample_size as u32).max(Duration::from_millis(1));
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    let mut b = Bencher {
        samples: &mut samples,
        iters_per_sample,
        mode: BenchMode::Measure {
            sample_count: config.sample_size,
        },
    };
    f(&mut b);

    let mut per_iter_ns: Vec<f64> = samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters_per_sample as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{name:<48} time: [min {}  median {}  mean {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        per_iter_ns.len(),
        iters_per_sample
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions. Both criterion invocation
/// forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6))
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = fast_config();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn empty_bench_closure_is_skipped_not_hung() {
        let mut c = fast_config();
        // Never calls b.iter(): must report "skipped" and return
        // instead of spinning in calibration.
        c.bench_function("no-op", |_b| {});
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_with_input(BenchmarkId::new("f", 9), &9u32, |b, &x| {
            b.iter_batched(|| x, |v| black_box(v + 1), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 9).to_string(), "f/9");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    mod macro_smoke {
        use super::super::*;

        fn target(c: &mut Criterion) {
            c.bench_function("macro-smoke", |b| b.iter(|| black_box(1 + 1)));
        }

        criterion_group! {
            name = configured;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(std::time::Duration::from_millis(1))
                .measurement_time(std::time::Duration::from_millis(4));
            targets = target
        }

        #[test]
        fn both_group_forms_expand() {
            configured();
        }
    }
}
