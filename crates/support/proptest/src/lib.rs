//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`proptest!`] macro over `pattern in strategy` arguments, range and
//! tuple strategies, [`collection::vec`], [`collection::btree_set`],
//! [`option::weighted`], [`Strategy::prop_map`], and the
//! `prop_assert*` macros — on top of a deterministic SplitMix64 case
//! generator. Failing cases are *not* shrunk (the real crate's
//! headline feature); the failure message instead reports the case
//! number and the test's seed so a failure reproduces exactly.
//!
//! Each test's seed is derived from its module path and name, so cases
//! are stable across runs and machines but decorrelated across tests.
//! `PROPTEST_CASES` overrides the per-test case count (default 64).

use std::ops::Range;

/// Number of cases each property runs (overridable via the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (the test's
    /// qualified name).
    pub fn from_label(label: &str) -> Self {
        // FNV-1a, then SplitMix64 finalization below decorrelates.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. Unlike the real crate there is no intermediate
/// `ValueTree`: strategies produce values directly and failures are
/// not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of `element` values; up to `size` insertion attempts
    /// (duplicates collapse, as in the real crate's minimum-size-0
    /// behaviour).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some(value)` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        assert!((0.0..=1.0).contains(&p), "weighted: p={p} outside [0, 1]");
        Weighted { p, inner }
    }

    /// See [`weighted`].
    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.p {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Defines property tests.
///
/// ```ignore
/// use proptest::prelude::*;
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __label = concat!(module_path!(), "::", stringify!($name));
                let __strategy = ($($strat,)+);
                let mut __rng = $crate::TestRng::from_label(__label);
                for __case in 0..$crate::cases() {
                    let __case_rng = __rng.clone();
                    let mut __run = || -> Result<(), String> {
                        let ($($pat,)+) =
                            $crate::Strategy::generate(&__strategy, &mut __rng);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(msg) = __run() {
                        panic!(
                            "property {} failed at case {}/{} (rng {:?}): {}",
                            __label,
                            __case + 1,
                            $crate::cases(),
                            __case_rng,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)*),
                left,
                right
            ));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// The customary glob import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_label("ranges");
        for _ in 0..1000 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-2.0..2.0f64).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_set_strategies_respect_sizes() {
        let mut rng = TestRng::from_label("vec");
        for _ in 0..200 {
            let v = collection::vec(0u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s: BTreeSet<u32> = collection::btree_set(0u32..50, 0..4).generate(&mut rng);
            assert!(s.len() < 4);
        }
    }

    #[test]
    fn weighted_option_hits_both_arms() {
        let mut rng = TestRng::from_label("weighted");
        let strat = option::weighted(0.5, 0u32..10);
        let (mut some, mut none) = (0, 0);
        for _ in 0..500 {
            match strat.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 100 && none > 100, "some={some} none={none}");
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::from_label("map");
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
    }

    proptest! {
        /// The macro itself: tuple patterns, multiple args, trailing comma.
        #[test]
        fn macro_end_to_end((a, b) in (0u32..50, 0u32..50), c in 0usize..5,) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(c.min(4), c);
            prop_assert_ne!(a + b + 1, 0);
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        let mut c = TestRng::from_label("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(TestRng::from_label("x").next_u64(), c.next_u64());
    }
}
