//! The **Minim** strategy — §4 of the paper.
//!
//! * `RecodeOnJoin` (§4.1) and `RecodeOnMove` (§4.4): recode exactly the
//!   set `1n ∪ 2n ∪ {n}` by solving a maximum-weight bipartite matching
//!   between those nodes and the colors `1..=max`, where `max` is the
//!   largest color appearing in the set's old colors or external
//!   constraints. An edge `(u, k)` exists iff color `k` does not clash
//!   with `u`'s constraints *outside* the set; it weighs 3 when `k` is
//!   `u`'s old color and 1 otherwise. Matched nodes take their matched
//!   color; unmatched nodes take fresh colors `max+1, max+2, …`.
//!   The weight structure makes any maximum-weight matching retain one
//!   holder of every retainable old color (Thm 4.1.8 — minimality) and
//!   maximize the number of matched vertices among such matchings
//!   (Thm 4.1.9 — optimal-among-minimal max color index).
//! * `RecodeOnPowIncrease` (§4.2): all new constraints involve the
//!   initiating node, so at most **it** must change; it takes the
//!   lowest color satisfying its exact constraints.
//! * `RecodeDecreasePowOrLeave` (§4.3): provably nothing to do.
//!
//! Theorem 4.4.1 (move ≡ leave + join) holds for this implementation by
//! construction and is tested below.

use crate::{
    commit_plan, debug_assert_locally_valid, range_direction, BatchLocality, ColorPlan,
    EventEffect, RecodeOutcome, RecodingStrategy,
};
use minim_geom::Point;
use minim_graph::conflict;
use minim_graph::{Color, NodeId};
use minim_matching::{max_weight_matching, WeightedBipartite};
use minim_net::event::{AppliedEvent, PowerDirection};
use minim_net::{Network, NodeConfig, TopologyDelta};

/// Weight of a "keep your old color" edge in the matching instance.
/// The paper fixes 3: the smallest integer that survives the swap
/// argument (a keep-edge must outweigh losing *two* unit edges). The
/// ablation bench varies this.
pub const KEEP_WEIGHT: i64 = 3;

/// The paper's minimal recoding strategy family.
#[derive(Debug, Clone)]
pub struct Minim {
    /// Weight for keep-edges (default [`KEEP_WEIGHT`]; the ablation
    /// bench explores alternatives).
    pub keep_weight: i64,
}

impl Default for Minim {
    fn default() -> Self {
        Minim {
            keep_weight: KEEP_WEIGHT,
        }
    }
}

impl Minim {
    /// A Minim variant with a custom keep-edge weight (for ablation;
    /// `keep_weight = 1` degenerates to weight-blind matching).
    pub fn with_keep_weight(keep_weight: i64) -> Self {
        assert!(keep_weight >= 1, "keep weight must be >= 1");
        Minim { keep_weight }
    }

    /// The common engine of `RecodeOnJoin` and `RecodeOnMove`: recode
    /// `1n ∪ 2n ∪ {n}` via maximum-weight matching. Called with the
    /// event's [`TopologyDelta`]; the recode set comes straight out of
    /// the delta's neighbor lists — no graph traversal re-derives it.
    /// `n` may or may not hold an old color.
    ///
    /// Thin wrapper: [`Minim::plan_matching`] decides, [`commit_plan`]
    /// applies — the same decomposition batched execution uses, so
    /// sequential and batched runs agree by construction.
    fn matching_recode(&self, net: &mut Network, delta: &TopologyDelta) -> RecodeOutcome {
        let plan = self.plan_matching(net, delta);
        let outcome = commit_plan(net, &plan);
        debug_assert_locally_valid(net, delta, &outcome);
        outcome
    }

    /// Plans the join/move recoding **without mutating the network**.
    /// All reads stay within two graph hops of the recode set (the
    /// members' external constraints), i.e. within the event's
    /// neighborhood — the `BatchLocality::Neighborhood` contract.
    fn plan_matching(&self, net: &Network, delta: &TopologyDelta) -> ColorPlan {
        let n = delta.node();
        let assignment = net.assignment();
        let set = delta.recode_set(); // sorted, includes n

        // Fast path (the common case in dense networks): if the old
        // colors across the whole set — `n` included when it holds one
        // — are pairwise distinct, every non-`n` member can keep its
        // color (Lemma 4.1.6 — the event adds no constraints between
        // them and non-set nodes), and only `n` needs attention:
        //
        // * colored `n` whose color avoids its constraints → all keep;
        // * uncolored `n` (a join) → lowest color avoiding its
        //   constraints, which span both the set members (all CA1
        //   partners of `n`) and `n`'s external partners;
        // * colored `n` with a clash → fall through to the full
        //   matching: the optimum may shift a *member* off its color
        //   instead of pushing `n` to a fresh one.
        //
        // This mirrors `plan_recode`'s own fast path exactly, so the
        // distributed protocol (which reconstructs inputs from messages
        // and calls `plan_recode`) computes identical assignments.
        let mut set_colors: Vec<Color> = set.iter().filter_map(|&u| assignment.get(u)).collect();
        set_colors.sort_unstable();
        let distinct = set_colors.windows(2).all(|w| w[0] != w[1]);
        if distinct && self.keep_weight > 1 {
            let n_constraints = conflict::constraint_colors(net.graph(), assignment, n);
            match assignment.get(n) {
                Some(c) => {
                    if n_constraints.binary_search(&c).is_err() {
                        // Nothing clashes: zero recodings.
                        return Vec::new();
                    }
                    // External clash: full matching below.
                }
                None => {
                    // `constraint_colors` returns sorted + deduplicated.
                    return vec![(n, Color::lowest_excluding_sorted(&n_constraints))];
                }
            }
        }

        let (old, forbidden) = gather_recode_inputs(net, &set);
        let plan = plan_recode(&old, &forbidden, self.keep_weight);
        set.into_iter().zip(plan).collect()
    }

    /// Plans `RecodeOnPowIncrease` (or nothing for decreases) without
    /// mutating the network.
    fn plan_range(
        &self,
        net: &Network,
        id: NodeId,
        dir: PowerDirection,
        delta: &TopologyDelta,
    ) -> ColorPlan {
        match dir {
            PowerDirection::Increase => {
                // All new constraints involve `id` and stem from the
                // delta's added out-edges (§4.2): a clash is possible
                // only at a *new* receiver — against the receiver
                // itself (CA1) or a co-transmitter into it (CA2).
                // Scanning those is O(Δ·deg); the pre-event state is
                // valid by the inductive contract, so old constraints
                // cannot clash.
                let current = net.assignment().get(id);
                let clash = match current {
                    Some(c) => delta.new_receivers().any(|w| {
                        net.assignment().get(w) == Some(c)
                            || net
                                .graph()
                                .in_neighbors(w)
                                .iter()
                                .any(|&x| x != id && net.assignment().get(x) == Some(c))
                    }),
                    None => true,
                };
                if clash {
                    // Repick against the full (old ∪ new) constraints
                    // (sorted + deduplicated by `constraint_colors`).
                    let constraints =
                        conflict::constraint_colors(net.graph(), net.assignment(), id);
                    vec![(id, Color::lowest_excluding_sorted(&constraints))]
                } else {
                    Vec::new()
                }
            }
            PowerDirection::Decrease | PowerDirection::Unchanged => Vec::new(),
        }
    }
}

/// Collects, for each member of the (sorted) recode `set`, its old
/// color and its *external constraints* — the colors of its CA1/CA2
/// conflict partners outside the set (Fig 3 steps 1–2). Returned
/// forbidden lists are sorted and deduplicated.
///
/// Exposed so the distributed protocol layer (`minim-proto`) can
/// cross-check the inputs it reconstructs from messages against the
/// global-state view.
pub fn gather_recode_inputs(net: &Network, set: &[NodeId]) -> (Vec<Option<Color>>, Vec<Vec<u32>>) {
    let mut old = Vec::with_capacity(set.len());
    let mut forbidden = Vec::with_capacity(set.len());
    // One conflict-partner buffer reused across the whole set — the
    // per-member set+Vec allocations of `conflicts_of` were the
    // dominant heap traffic of a recode plan.
    let mut partners: Vec<NodeId> = Vec::new();
    for &u in set {
        old.push(net.assignment().get(u));
        conflict::conflicts_of_into(net.graph(), u, &mut partners);
        let mut ext: Vec<u32> = partners
            .iter()
            .filter(|p| set.binary_search(p).is_err())
            .filter_map(|&p| net.assignment().get(p))
            .map(|c| c.index())
            .collect();
        ext.sort_unstable();
        ext.dedup();
        forbidden.push(ext);
    }
    (old, forbidden)
}

/// The matching core of Fig 3 / Fig 8, steps 3–5: given each set
/// member's old color and (sorted, deduplicated) external forbidden
/// colors, plan the new colors.
///
/// `max` is the largest color among old colors and constraints; the
/// bipartite instance matches members against colors `1..=max` with
/// weight `keep_weight` on keep-edges and 1 elsewhere; unmatched
/// members take fresh colors `max+1, max+2, …` in set order (the paper
/// assigns them "randomly"; a deterministic order is an equally valid
/// tie-break and keeps runs reproducible).
///
/// This function is pure — the distributed joiner (`minim-proto`) runs
/// it on message-reconstructed inputs and necessarily computes the
/// same plan as the centralized strategy.
///
/// ```
/// use minim_core::{plan_recode, KEEP_WEIGHT};
/// use minim_graph::Color;
/// // Two members share old color 1; a joiner (None) is barred from 1.
/// let old = vec![Some(Color::new(1)), Some(Color::new(1)), None];
/// let forbidden = vec![vec![], vec![], vec![1]];
/// let plan = plan_recode(&old, &forbidden, KEEP_WEIGHT);
/// // Exactly one member keeps color 1 (Thm 4.1.8) and all three
/// // colors are pairwise distinct.
/// let keeps = plan.iter().filter(|&&c| c == Color::new(1)).count();
/// assert_eq!(keeps, 1);
/// ```
pub fn plan_recode(old: &[Option<Color>], forbidden: &[Vec<u32>], keep_weight: i64) -> Vec<Color> {
    assert_eq!(old.len(), forbidden.len(), "parallel input arrays");

    // Fast path: when all old colors are pairwise distinct, externally
    // consistent, and at most one member (the joiner) is uncolored,
    // the all-keep plan is a maximum-weight matching for any positive
    // keep weight: it retains every retainable class and has maximum
    // cardinality. The joiner takes the lowest color avoiding the kept
    // colors and its own constraints — the optimal-among-minimal pick.
    // Gated on `keep_weight > 1` so the weight-blind ablation arm
    // exercises the Hungarian solver's own (weight-indifferent) picks.
    if keep_weight > 1 {
        let mut kept: Vec<u32> = old.iter().flatten().map(|c| c.index()).collect();
        kept.sort_unstable();
        let distinct = kept.windows(2).all(|w| w[0] != w[1]);
        let nones = old.iter().filter(|o| o.is_none()).count();
        let consistent = old
            .iter()
            .zip(forbidden)
            .all(|(o, f)| o.is_none_or(|c| f.binary_search(&c.index()).is_err()));
        if distinct && nones <= 1 && consistent {
            return old
                .iter()
                .enumerate()
                .map(|(i, o)| match o {
                    Some(c) => *c,
                    None => Color::lowest_excluding(
                        kept.iter()
                            .chain(forbidden[i].iter())
                            .map(|&k| Color::new(k)),
                    ),
                })
                .collect();
        }
    }

    let mut max = 0u32;
    for c in old.iter().flatten() {
        max = max.max(c.index());
    }
    for f in forbidden {
        debug_assert!(
            f.windows(2).all(|w| w[0] < w[1]),
            "forbidden must be sorted+dedup"
        );
        if let Some(&m) = f.last() {
            max = max.max(m);
        }
    }

    let mut bg = WeightedBipartite::new(old.len(), max as usize);
    for i in 0..old.len() {
        let old_idx = old[i].map(Color::index);
        for k in 1..=max {
            if forbidden[i].binary_search(&k).is_err() {
                let w = if old_idx == Some(k) { keep_weight } else { 1 };
                bg.add_edge(i, (k - 1) as usize, w);
            }
        }
    }
    let matching = max_weight_matching(&bg);

    let mut fresh = max;
    (0..old.len())
        .map(|i| match matching.pairs[i] {
            Some(r) => Color::new(r as u32 + 1),
            None => {
                fresh += 1;
                Color::new(fresh)
            }
        })
        .collect()
}

impl RecodingStrategy for Minim {
    fn name(&self) -> &'static str {
        "Minim"
    }

    /// Minim is the paper's locality result made code: every handler
    /// reads and writes within the event's neighborhood.
    fn batch_locality(&self) -> BatchLocality {
        BatchLocality::Neighborhood
    }

    fn plan_batched(
        &self,
        net: &Network,
        applied: &AppliedEvent,
        delta: &TopologyDelta,
    ) -> ColorPlan {
        match *applied {
            AppliedEvent::Joined(_) | AppliedEvent::Moved(_) => self.plan_matching(net, delta),
            // `RecodeDecreasePowOrLeave`: passive (§4.3).
            AppliedEvent::Left(_) => Vec::new(),
            AppliedEvent::RangeChanged(id, dir) => self.plan_range(net, id, dir, delta),
        }
    }

    /// `RecodeOnJoin` (Fig 3 of the paper).
    fn on_join_delta(&mut self, net: &mut Network, id: NodeId, cfg: NodeConfig) -> EventEffect {
        let delta = net.insert_node(id, cfg);
        let outcome = self.matching_recode(net, &delta);
        EventEffect { delta, outcome }
    }

    /// `RecodeDecreasePowOrLeave`: passive — a leave removes
    /// constraints only, so the old assignment stays valid (§4.3) and
    /// nothing is ever recoded.
    fn on_leave_delta(&mut self, net: &mut Network, id: NodeId) -> EventEffect {
        let delta = net.remove_node(id);
        let outcome = RecodeOutcome {
            recoded: Vec::new(),
            max_color_after: net.max_color_index(),
        };
        debug_assert_locally_valid(net, &delta, &outcome);
        EventEffect { delta, outcome }
    }

    /// `RecodeOnMove` (Fig 8): identical machinery to the join, except
    /// the mover still holds an old color (its keep-edge weighs
    /// `keep_weight` like everyone else's).
    fn on_move_delta(&mut self, net: &mut Network, id: NodeId, to: Point) -> EventEffect {
        let delta = net.move_node(id, to);
        let outcome = self.matching_recode(net, &delta);
        EventEffect { delta, outcome }
    }

    /// `RecodeOnPowIncrease` (Fig 5) for increases; passive for
    /// decreases (§4.3).
    fn on_set_range_delta(&mut self, net: &mut Network, id: NodeId, range: f64) -> EventEffect {
        let dir = range_direction(net, id, range);
        let delta = net.set_range(id, range);
        let plan = self.plan_range(net, id, dir, &delta);
        let outcome = commit_plan(net, &plan);
        debug_assert_locally_valid(net, &delta, &outcome);
        EventEffect { delta, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use minim_geom::{sample, Point, Rect};
    use minim_graph::NodeId;
    use minim_net::workload::JoinWorkload;
    use minim_net::{network_from_configs, Network};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn c(i: u32) -> Color {
        Color::new(i)
    }

    /// Builds a random network with Minim handling every join, so the
    /// assignment is always valid. Returns (net, rng).
    fn random_net(count: usize, seed: u64) -> (Network, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(25.0);
        let mut minim = Minim::default();
        for e in JoinWorkload::paper(count).generate(&mut rng) {
            minim.apply(&mut net, &e);
        }
        assert!(net.validate().is_ok());
        (net, rng)
    }

    #[test]
    fn first_join_gets_color_one() {
        let mut net = Network::new(10.0);
        let mut m = Minim::default();
        let id = net.next_id();
        let out = m.on_join(&mut net, id, NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        assert_eq!(out.recoded, vec![(id, None, c(1))]);
        assert_eq!(net.assignment().get(id), Some(c(1)));
    }

    #[test]
    fn join_reuses_colors_when_possible() {
        // Chain: 0 <-> 1 <-> 2 far apart pairwise except adjacency.
        let mut net = Network::new(10.0);
        let mut m = Minim::default();
        for (i, x) in [0.0, 6.0, 12.0].iter().enumerate() {
            let id = net.next_id();
            m.on_join(&mut net, id, NodeConfig::new(Point::new(*x, 0.0), 7.0));
            let _ = i;
        }
        // 0 and 2 conflict via common receiver 1 (both reach it), so we
        // need 3 colors for the chain; max must be exactly 3.
        assert!(net.validate().is_ok());
        assert_eq!(net.max_color_index(), 3);
    }

    #[test]
    fn join_attains_minimal_bound_on_random_networks() {
        for seed in 0..20 {
            let (mut net, mut rng) = random_net(30, seed);
            let m = Minim::default();
            // One more join; check the outcome against the bound.
            let arena = Rect::paper_arena();
            let cfg = NodeConfig::new(
                sample::uniform_point(&mut rng, &arena),
                sample::uniform_range(&mut rng, 20.5, 30.5),
            );
            let id = net.next_id();
            let delta = net.insert_node(id, cfg);
            let bound = bounds::minimal_bound_join(&net, id);
            // Re-run the recode on the already-inserted topology.
            let out = m.matching_recode(&mut net, &delta);
            assert_eq!(
                out.recodings(),
                bound,
                "seed {seed}: Minim must attain the minimal bound exactly"
            );
            assert!(net.validate().is_ok());
        }
    }

    #[test]
    fn move_attains_minimal_bound_on_random_networks() {
        for seed in 100..115 {
            let (mut net, mut rng) = random_net(25, seed);
            let m = Minim::default();
            let ids = net.node_ids();
            let victim = ids[rng.gen_range(0..ids.len())];
            let to = sample::random_move(
                &mut rng,
                net.config(victim).unwrap().pos,
                40.0,
                &Rect::paper_arena(),
            );
            let delta = net.move_node(victim, to);
            let bound = bounds::minimal_bound_move(&net, victim);
            let out = m.matching_recode(&mut net, &delta);
            assert_eq!(
                out.recodings(),
                bound,
                "seed {seed}: RecodeOnMove must attain the minimal move bound"
            );
            assert!(net.validate().is_ok());
        }
    }

    #[test]
    fn power_increase_recodes_at_most_the_initiator() {
        for seed in 200..215 {
            let (mut net, mut rng) = random_net(25, seed);
            let mut m = Minim::default();
            let ids = net.node_ids();
            let victim = ids[rng.gen_range(0..ids.len())];
            let old_range = net.config(victim).unwrap().range;
            let before = net.snapshot_assignment();
            let out = m.on_set_range(&mut net, victim, old_range * 3.0);
            assert!(out.recodings() <= 1, "seed {seed}");
            for &(node, _, _) in &out.recoded {
                assert_eq!(node, victim, "only the initiator may be recoded");
            }
            // And it matches the exact lower bound.
            let mut check = net.clone();
            check.assignment_mut().clone_from(&before);
            // bound computed on post-topology, pre-recode state:
            let bound = bounds::minimal_bound_pow_increase(&check, victim);
            assert_eq!(out.recodings(), bound, "seed {seed}");
            assert!(net.validate().is_ok());
        }
    }

    #[test]
    fn power_decrease_and_leave_are_passive() {
        let (mut net, mut rng) = random_net(25, 999);
        let mut m = Minim::default();
        let ids = net.node_ids();
        let a = ids[rng.gen_range(0..ids.len())];
        let old_range = net.config(a).unwrap().range;
        let out = m.on_set_range(&mut net, a, old_range * 0.5);
        assert_eq!(out.recodings(), 0, "power decrease is free");
        assert!(net.validate().is_ok());
        let b = ids[0];
        let out = m.on_leave(&mut net, b);
        assert_eq!(out.recodings(), 0, "leave is free");
        assert!(net.validate().is_ok());
    }

    #[test]
    fn unchanged_range_is_a_noop() {
        let (mut net, _) = random_net(10, 31);
        let mut m = Minim::default();
        let a = net.node_ids()[0];
        let r = net.config(a).unwrap().range;
        let out = m.on_set_range(&mut net, a, r);
        assert_eq!(out.recodings(), 0);
    }

    /// Theorem 4.4.1: `RecodeOnMove(n)` is exactly
    /// `RecodeDecreasePowOrLeave(n)` at the old position followed by
    /// `RecodeOnJoin(n)` at the new one — "were the moving node n to
    /// leave the network and then join it immediately, this would be
    /// the exact sequence of steps executed" (§4.4). "Immediately"
    /// implies the rejoiner's old color is still known (Fig 8's step 4
    /// weighs it 3); with that color restored before the join's
    /// matching, the two paths run on identical instances and must
    /// produce identical assignments.
    #[test]
    fn move_equals_leave_plus_immediate_join() {
        for seed in 300..312 {
            let (net0, mut rng) = random_net(20, seed);
            let ids = net0.node_ids();
            let victim = ids[rng.gen_range(0..ids.len())];
            let cfg = net0.config(victim).unwrap();
            let old_color = net0.assignment().get(victim);
            let to = sample::random_move(&mut rng, cfg.pos, 40.0, &Rect::paper_arena());

            // Path A: RecodeOnMove.
            let mut net_a = net0.clone();
            let mut m = Minim::default();
            m.on_move(&mut net_a, victim, to);
            assert!(net_a.validate().is_ok());

            // Path B: leave, then immediately rejoin at the same id
            // with the old color remembered.
            let mut net_b = net0.clone();
            m.on_leave(&mut net_b, victim);
            let delta = net_b.insert_node(victim, NodeConfig::new(to, cfg.range));
            if let Some(c) = old_color {
                net_b.assignment_mut().set(victim, c);
            }
            m.matching_recode(&mut net_b, &delta);
            assert!(net_b.validate().is_ok());

            assert_eq!(
                net_a.snapshot_assignment(),
                net_b.snapshot_assignment(),
                "seed {seed}: move and leave+immediate-join must coincide"
            );
        }
    }

    #[test]
    fn long_event_mix_preserves_validity_and_bounds() {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut net = Network::new(25.0);
        let mut m = Minim::default();
        let arena = Rect::paper_arena();
        for step in 0..300 {
            let roll: f64 = rng.gen();
            if net.node_count() < 5 || roll < 0.4 {
                let cfg = NodeConfig::new(
                    sample::uniform_point(&mut rng, &arena),
                    sample::uniform_range(&mut rng, 15.0, 30.0),
                );
                let id = net.next_id();
                m.on_join(&mut net, id, cfg);
            } else {
                let ids = net.node_ids();
                let victim = ids[rng.gen_range(0..ids.len())];
                if roll < 0.55 {
                    m.on_leave(&mut net, victim);
                } else if roll < 0.75 {
                    let to = sample::random_move(
                        &mut rng,
                        net.config(victim).unwrap().pos,
                        30.0,
                        &arena,
                    );
                    m.on_move(&mut net, victim, to);
                } else {
                    let r = net.config(victim).unwrap().range;
                    let factor = rng.gen_range(0.5..2.0);
                    m.on_set_range(&mut net, victim, r * factor);
                }
            }
            assert!(
                net.validate().is_ok(),
                "step {step} invalidated the network"
            );
        }
        net.check_topology();
    }

    #[test]
    fn keep_weight_one_still_valid_but_recodes_more() {
        // Ablation sanity: weight-blind matching stays correct but
        // loses the minimality guarantee. Aggregate over several
        // networks; blind must never beat weighted.
        let mut total_w = 0usize;
        let mut total_b = 0usize;
        for seed in 500..520 {
            let (net0, mut rng) = random_net(30, seed);
            let arena = Rect::paper_arena();
            let cfg = NodeConfig::new(
                sample::uniform_point(&mut rng, &arena),
                sample::uniform_range(&mut rng, 20.5, 30.5),
            );
            let mut net_w = net0.clone();
            let mut weighted = Minim::default();
            let id = net_w.next_id();
            total_w += weighted.on_join(&mut net_w, id, cfg).recodings();

            let mut net_b = net0.clone();
            let mut blind = Minim::with_keep_weight(1);
            let id = net_b.next_id();
            total_b += blind.on_join(&mut net_b, id, cfg).recodings();
            assert!(net_b.validate().is_ok());
        }
        assert!(
            total_w <= total_b,
            "weighted ({total_w}) must recode no more than blind ({total_b})"
        );
    }

    mod plan_recode_properties {
        use super::super::plan_recode;
        use minim_graph::Color;
        use proptest::prelude::*;

        /// Random well-formed instances: every member's old color (if
        /// any) avoids its own forbidden set — the shape real events
        /// produce (Lemma 4.1.6).
        fn instances() -> impl Strategy<Value = (Vec<Option<Color>>, Vec<Vec<u32>>)> {
            proptest::collection::vec(
                (
                    proptest::option::weighted(0.8, 1u32..6),
                    proptest::collection::btree_set(1u32..8, 0..5),
                ),
                1..7,
            )
            .prop_map(|raw| {
                let mut old = Vec::new();
                let mut forbidden = Vec::new();
                for (o, f) in raw {
                    let f: Vec<u32> = f
                        .into_iter()
                        .filter(|&c| Some(c) != o) // keep olds consistent
                        .collect();
                    old.push(o.map(Color::new));
                    forbidden.push(f);
                }
                (old, forbidden)
            })
        }

        proptest! {
            /// The plan is always proper: pairwise-distinct colors,
            /// none forbidden.
            #[test]
            fn plan_is_proper((old, forbidden) in instances()) {
                let plan = plan_recode(&old, &forbidden, 3);
                prop_assert_eq!(plan.len(), old.len());
                let mut seen = std::collections::HashSet::new();
                for (i, c) in plan.iter().enumerate() {
                    prop_assert!(seen.insert(*c), "duplicate color in plan");
                    prop_assert!(
                        forbidden[i].binary_search(&c.index()).is_err(),
                        "forbidden color assigned"
                    );
                }
            }

            /// Theorem 4.1.8 at the kernel level: the number of members
            /// keeping their old color equals the number of distinct
            /// old colors (every retainable class retains exactly one
            /// member).
            #[test]
            fn plan_keeps_one_per_class((old, forbidden) in instances()) {
                let plan = plan_recode(&old, &forbidden, 3);
                let keeps = plan
                    .iter()
                    .zip(&old)
                    .filter(|(p, o)| Some(**p) == **o)
                    .count();
                let mut classes: Vec<u32> =
                    old.iter().flatten().map(|c| c.index()).collect();
                classes.sort_unstable();
                classes.dedup();
                prop_assert_eq!(keeps, classes.len());
            }

            /// Fresh colors (beyond the instance max) are consecutive —
            /// the Thm 4.1.9 tail structure.
            #[test]
            fn plan_fresh_tail_is_consecutive((old, forbidden) in instances()) {
                let mut max = 0u32;
                for c in old.iter().flatten() {
                    max = max.max(c.index());
                }
                for f in &forbidden {
                    max = max.max(f.last().copied().unwrap_or(0));
                }
                let plan = plan_recode(&old, &forbidden, 3);
                let mut fresh: Vec<u32> = plan
                    .iter()
                    .map(|c| c.index())
                    .filter(|&c| c > max)
                    .collect();
                fresh.sort_unstable();
                for w in fresh.windows(2) {
                    prop_assert_eq!(w[1], w[0] + 1);
                }
                if let Some(&first) = fresh.first() {
                    prop_assert_eq!(first, max + 1);
                }
            }

            /// Any keep weight strictly above 2 yields the same
            /// recoding count: the swap argument nets `w − 2 > 0`, so
            /// every maximum-weight matching keeps one member per
            /// class. (Weight 2 is NOT in this family — see
            /// `keep_weight_two_can_tie_away_minimality` below, which
            /// is why the paper fixes 3 as the *smallest* safe integer.)
            #[test]
            fn all_safe_keep_weights_agree_on_counts((old, forbidden) in instances()) {
                let count = |plan: &[Color]| {
                    plan.iter()
                        .zip(&old)
                        .filter(|(p, o)| Some(**p) != **o)
                        .count()
                };
                let w3 = count(&plan_recode(&old, &forbidden, 3));
                let w5 = count(&plan_recode(&old, &forbidden, 5));
                let w9 = count(&plan_recode(&old, &forbidden, 9));
                prop_assert_eq!(w3, w5);
                prop_assert_eq!(w3, w9);
            }
        }
    }

    /// Found by the property suite: with keep weight 2, dropping a
    /// keep-edge (−2) to rescue two unit matches (+1 +1) is weight-
    /// *neutral*, so a maximum-weight matching may legally shuffle a
    /// keeper and exceed the minimal recoding count. Weight 3 makes
    /// the swap strictly losing — the paper's choice is the smallest
    /// safe integer, and this instance is the witness.
    #[test]
    fn keep_weight_two_can_tie_away_minimality() {
        use minim_graph::Color;
        let c = Color::new;
        // Keepers hold 4, 2, 5; two joiners need colors, one barred
        // from {1, 3}. The only way to match both joiners ≤ max is to
        // evict the color-5 keeper — a tie at weight 2, a loss at 3.
        let old = vec![Some(c(4)), Some(c(2)), None, None, Some(c(5))];
        let forbidden = vec![vec![], vec![], vec![1, 3], vec![], vec![]];
        let count = |plan: &[Color]| {
            plan.iter()
                .zip(&old)
                .filter(|(p, o)| Some(**p) != **o)
                .count()
        };
        let w3 = count(&plan_recode(&old, &forbidden, 3));
        assert_eq!(w3, 2, "weight 3 keeps all three keepers");
        let w2 = count(&plan_recode(&old, &forbidden, 2));
        assert!(w2 >= w3, "weight 2 may tie-break into extra recodings");
    }

    #[test]
    fn matching_recode_with_no_neighbors_is_cheap() {
        let mut net = network_from_configs(10.0, &[(Point::new(0.0, 0.0), 3.0)]);
        net.set_color(n(0), c(1));
        let mut m = Minim::default();
        // A joiner out of everyone's range: gets color 1 (no
        // constraints), network stays valid.
        let id = net.next_id();
        let out = m.on_join(&mut net, id, NodeConfig::new(Point::new(50.0, 50.0), 3.0));
        assert_eq!(out.recoded, vec![(id, None, c(1))]);
        assert!(net.validate().is_ok());
    }
}
