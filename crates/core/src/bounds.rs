//! The paper's minimal-recoding lower bounds (Lemma 4.1.1 and the
//! per-event analogues).
//!
//! These are *strategy-independent* facts about the instance: given the
//! post-event topology and the pre-event assignment, no correct
//! recoding can change fewer node colors. The tests use them to verify
//! that [`crate::Minim`] is exactly minimal (Theorems 4.1.8, 4.2.3,
//! 4.3.3, 4.4.4) and that the baselines are not.
//!
//! All functions expect the network with the event's **topology change
//! already applied** but the recoding **not yet performed** (the
//! assignment still holds the old colors; a joiner is uncolored).

use minim_graph::conflict;
use minim_graph::{Color, NodeId};
use minim_net::Network;
use std::collections::HashMap;

/// Lemma 4.1.1: when `n` joins, apart from recoding `n` itself, at
/// least `Σ (K_i - 1)` of the nodes in `1n ∪ 2n` must be recoded, where
/// `K_i` are the sizes of the color classes among `1n ∪ 2n`'s old
/// colors. Returns the total bound **including** `n`'s first
/// assignment (which the paper's experiments count as a recoding).
pub fn minimal_bound_join(net: &Network, n: NodeId) -> usize {
    let in_union = net.partitions(n).in_union();
    let mut class_sizes: HashMap<Color, usize> = HashMap::new();
    let mut colored = 0usize;
    for &u in &in_union {
        if let Some(c) = net.assignment().get(u) {
            *class_sizes.entry(c).or_insert(0) += 1;
            colored += 1;
        }
    }
    // Σ (K_i − 1) = (#colored) − (#classes); plus 1 for n itself.
    colored - class_sizes.len() + 1
}

/// The move analogue (Thm 4.4.4): classes are computed over
/// `1n ∪ 2n ∪ {n}` at the **new** position. Every member of `1n ∪ 2n`
/// can always keep its old color (the move adds no constraints between
/// them and non-set nodes — the Lemma 4.1.6 argument), but `n` itself
/// can keep its old color only if that color is consistent with `n`'s
/// constraints outside the set. One keeper per keepable class; all
/// other set members must change.
pub fn minimal_bound_move(net: &Network, n: NodeId) -> usize {
    let set = net.recode_set(n);
    // Group by old color; remember whether each class contains a
    // non-`n` member (always keepable) or only `n`.
    let mut classes: HashMap<Color, (usize, bool)> = HashMap::new(); // (size, has_non_n)
    let mut colored = 0usize;
    for &u in &set {
        if let Some(c) = net.assignment().get(u) {
            let e = classes.entry(c).or_insert((0, false));
            e.0 += 1;
            e.1 |= u != n;
            colored += 1;
        }
    }
    let n_old = net.assignment().get(n);
    let mut keepable = 0usize;
    for (&color, &(_, has_non_n)) in &classes {
        if has_non_n {
            keepable += 1;
        } else {
            // Class = {n} alone. Keepable iff n's old color avoids its
            // external constraints.
            debug_assert_eq!(n_old, Some(color));
            let ext: Vec<Color> = conflict::conflicts_of(net.graph(), n)
                .into_iter()
                .filter(|p| set.binary_search(p).is_err())
                .filter_map(|p| net.assignment().get(p))
                .collect();
            if !ext.contains(&color) {
                keepable += 1;
            }
        }
    }
    // Uncolored set members (only possible for n on a join-style call)
    // must be assigned, hence recoded.
    let uncolored = set.len() - colored;
    colored - keepable + uncolored
}

/// The power-increase bound (Thm 4.2.3): all new constraints involve
/// the initiator, so the bound is 1 if its current color now clashes
/// (or it has none), else 0.
pub fn minimal_bound_pow_increase(net: &Network, n: NodeId) -> usize {
    match net.assignment().get(n) {
        None => 1,
        Some(c) => {
            let constraints = conflict::constraint_colors(net.graph(), net.assignment(), n);
            usize::from(constraints.contains(&c))
        }
    }
}

/// Leaves and power decreases remove constraints only; the bound is 0
/// (Thms 4.3.3 / 4.3.4).
pub fn minimal_bound_leave_or_decrease() -> usize {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_geom::Point;
    use minim_net::{Network, NodeConfig};

    fn c(i: u32) -> Color {
        Color::new(i)
    }

    /// A star: center `hub` hears everyone (nodes transmit into it).
    /// Spokes at distance 5 with range 6 (reach hub), hub range 6
    /// (reaches all spokes) — everything bidirectional.
    fn star(spokes: usize) -> (Network, NodeId, Vec<NodeId>) {
        let mut net = Network::new(10.0);
        let hub = net.join(NodeConfig::new(Point::new(0.0, 0.0), 6.0));
        let mut ids = Vec::new();
        for k in 0..spokes {
            let angle = k as f64 * std::f64::consts::TAU / spokes as f64;
            let p = Point::new(5.0 * angle.cos(), 5.0 * angle.sin());
            ids.push(net.join(NodeConfig::new(p, 6.0)));
        }
        (net, hub, ids)
    }

    #[test]
    fn join_bound_counts_duplicate_classes() {
        // 4 spokes around an uncolored joiner-hub; spokes colored
        // {1, 1, 2, 2} → classes K = {2, 2} → bound = (4−2) + 1 = 3.
        let (mut net, hub, spokes) = star(4);
        net.set_color(spokes[0], c(1));
        net.set_color(spokes[1], c(1));
        net.set_color(spokes[2], c(2));
        net.set_color(spokes[3], c(2));
        assert_eq!(minimal_bound_join(&net, hub), 3);
    }

    #[test]
    fn join_bound_with_all_distinct_colors_is_one() {
        let (mut net, hub, spokes) = star(4);
        for (i, &s) in spokes.iter().enumerate() {
            net.set_color(s, c(i as u32 + 1));
        }
        assert_eq!(minimal_bound_join(&net, hub), 1, "only n itself");
    }

    #[test]
    fn join_bound_with_no_neighbors_is_one() {
        let mut net = Network::new(10.0);
        let lone = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        assert_eq!(minimal_bound_join(&net, lone), 1);
    }

    #[test]
    fn move_bound_zero_when_nothing_clashes() {
        // Mover keeps a distinct color and no duplicates among new
        // neighbors → bound 0.
        let (mut net, hub, spokes) = star(3);
        net.set_color(hub, c(4));
        for (i, &s) in spokes.iter().enumerate() {
            net.set_color(s, c(i as u32 + 1));
        }
        // "Move" the hub in place (topology already applied state).
        assert_eq!(minimal_bound_move(&net, hub), 0);
    }

    #[test]
    fn move_bound_counts_mover_clash() {
        // Mover shares its color with a spoke → they form a class of
        // size 2 → one must change → bound 1.
        let (mut net, hub, spokes) = star(3);
        net.set_color(hub, c(1));
        net.set_color(spokes[0], c(1));
        net.set_color(spokes[1], c(2));
        net.set_color(spokes[2], c(3));
        assert_eq!(minimal_bound_move(&net, hub), 1);
    }

    #[test]
    fn move_bound_when_mover_color_blocked_externally() {
        // Hub's old color clashes with an external constraint: a node
        // outside the recode set that shares a receiver with the hub.
        //
        // Geometry: hub at origin (range 6). Spoke s at (5,0) range 6
        // (bidirectional with hub). External e at (5,6), range 7:
        // e reaches s (dist 6) and hub→e dist ~7.81 > 6 so no edge
        // hub→e; e→hub 7.81 > 7 no edge. hub→s and e→s: hub and e are
        // CA2 partners via s — e is outside the recode set (no edge to
        // hub either way).
        let mut net = Network::new(10.0);
        let hub = net.join(NodeConfig::new(Point::new(0.0, 0.0), 6.0));
        let s = net.join(NodeConfig::new(Point::new(5.0, 0.0), 6.0));
        let e = net.join(NodeConfig::new(Point::new(5.0, 6.0), 7.0));
        assert!(net.graph().has_edge(hub, s));
        assert!(net.graph().has_edge(e, s));
        assert!(!net.graph().has_edge(hub, e));
        assert!(!net.graph().has_edge(e, hub));
        net.set_color(hub, c(2));
        net.set_color(s, c(1));
        net.set_color(e, c(2)); // same as hub → hub cannot keep 2
        assert_eq!(minimal_bound_move(&net, hub), 1, "hub must recode");
        net.set_color(e, c(3)); // now hub can keep
        assert_eq!(minimal_bound_move(&net, hub), 0);
    }

    #[test]
    fn pow_increase_bound() {
        let (mut net, hub, spokes) = star(2);
        net.set_color(hub, c(3));
        net.set_color(spokes[0], c(1));
        net.set_color(spokes[1], c(2));
        assert_eq!(minimal_bound_pow_increase(&net, hub), 0);
        net.set_color(spokes[0], c(3)); // now clashes with hub (CA1)
        assert_eq!(minimal_bound_pow_increase(&net, hub), 1);
    }

    #[test]
    fn leave_bound_is_zero() {
        assert_eq!(minimal_bound_leave_or_decrease(), 0);
    }
}
