//! The **BBB** baseline — the paper's §5 centralized comparator.
//!
//! "A strategy that uses a centralized coloring heuristic: the BBB
//! algorithm of \[7\], to recolor the entire network at every event."
//! Per DESIGN.md, the heuristic is realized as DSATUR on the TOCA
//! conflict graph (a smallest-last variant is also available). The two
//! behaviours the paper relies on are preserved: BBB produces the
//! lowest max-color-index curves (near-optimal global coloring) and
//! enormous recoding counts (it has no loyalty to the previous
//! assignment — "BBB performs badly since it recolors the entire
//! network at each event").

use crate::{EventEffect, RecodeOutcome, RecodingStrategy};
use minim_coloring::{dsatur, rlf, smallest_last, Coloring};
use minim_geom::Point;
use minim_graph::{conflict, Color, NodeId, UGraph};
use minim_net::{Network, NodeConfig};

/// Which global heuristic BBB runs at each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GlobalHeuristic {
    /// DSATUR (Brélaz) — the default; near-optimal on these graphs.
    #[default]
    Dsatur,
    /// Smallest-last (degeneracy) ordering + first-fit.
    SmallestLast,
    /// Recursive Largest First (Leighton) — strongest on dense graphs.
    Rlf,
}

impl GlobalHeuristic {
    fn run(self, g: &UGraph) -> Coloring {
        match self {
            GlobalHeuristic::Dsatur => dsatur(g),
            GlobalHeuristic::SmallestLast => smallest_last(g),
            GlobalHeuristic::Rlf => rlf(g),
        }
    }
}

/// The centralized recolor-everything baseline.
#[derive(Debug, Clone, Default)]
pub struct Bbb {
    /// The global coloring heuristic to apply.
    pub heuristic: GlobalHeuristic,
}

impl Bbb {
    /// A BBB variant running smallest-last instead of DSATUR.
    pub fn smallest_last() -> Self {
        Bbb {
            heuristic: GlobalHeuristic::SmallestLast,
        }
    }

    /// A BBB variant running RLF instead of DSATUR.
    pub fn rlf() -> Self {
        Bbb {
            heuristic: GlobalHeuristic::Rlf,
        }
    }

    /// Recolors the whole network from scratch.
    fn recolor_all(&self, net: &mut Network) {
        let (ug, ids) = conflict::conflict_graph(net.graph());
        let coloring = self.heuristic.run(&ug);
        for (i, &id) in ids.iter().enumerate() {
            net.assignment_mut().set(id, Color::new(coloring.colors[i]));
        }
        debug_assert!(net.validate().is_ok(), "BBB global recolor invalid");
    }
}

impl RecodingStrategy for Bbb {
    fn name(&self) -> &'static str {
        "BBB"
    }

    // BBB deliberately ignores the delta's locality — recoloring the
    // whole network at every event is exactly the behaviour the paper
    // measures it for. The delta still flows through so the runner's
    // accounting (edge churn, local validation seeds) is uniform
    // across strategies.

    fn on_join_delta(&mut self, net: &mut Network, id: NodeId, cfg: NodeConfig) -> EventEffect {
        let before = net.snapshot_assignment();
        let delta = net.insert_node(id, cfg);
        self.recolor_all(net);
        let outcome = RecodeOutcome::from_diff(net, &before);
        EventEffect { delta, outcome }
    }

    fn on_leave_delta(&mut self, net: &mut Network, id: NodeId) -> EventEffect {
        let before = net.snapshot_assignment();
        let delta = net.remove_node(id);
        self.recolor_all(net);
        let outcome = RecodeOutcome::from_diff(net, &before);
        EventEffect { delta, outcome }
    }

    fn on_move_delta(&mut self, net: &mut Network, id: NodeId, to: Point) -> EventEffect {
        let before = net.snapshot_assignment();
        let delta = net.move_node(id, to);
        self.recolor_all(net);
        let outcome = RecodeOutcome::from_diff(net, &before);
        EventEffect { delta, outcome }
    }

    fn on_set_range_delta(&mut self, net: &mut Network, id: NodeId, range: f64) -> EventEffect {
        let before = net.snapshot_assignment();
        let delta = net.set_range(id, range);
        self.recolor_all(net);
        let outcome = RecodeOutcome::from_diff(net, &before);
        EventEffect { delta, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategyKind;
    use minim_net::workload::JoinWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_joins(kind: StrategyKind, count: usize, seed: u64) -> (Network, usize) {
        let mut strategy = kind.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(25.0);
        let mut recodings = 0;
        for e in JoinWorkload::paper(count).generate(&mut rng) {
            recodings += strategy.apply(&mut net, &e).1.recodings();
        }
        (net, recodings)
    }

    #[test]
    fn bbb_produces_valid_low_color_assignments() {
        let (net, _) = run_joins(StrategyKind::Bbb, 50, 3);
        assert!(net.validate().is_ok());
        let (net_minim, _) = run_joins(StrategyKind::Minim, 50, 3);
        // The global heuristic should use no more colors than the
        // local strategy.
        assert!(
            net.max_color_index() <= net_minim.max_color_index(),
            "BBB {} vs Minim {}",
            net.max_color_index(),
            net_minim.max_color_index()
        );
    }

    #[test]
    fn bbb_recodes_far_more_than_minim() {
        let (_, bbb_rec) = run_joins(StrategyKind::Bbb, 50, 4);
        let (_, minim_rec) = run_joins(StrategyKind::Minim, 50, 4);
        assert!(
            bbb_rec > 2 * minim_rec,
            "expected BBB ({bbb_rec}) ≫ Minim ({minim_rec})"
        );
    }

    #[test]
    fn smallest_last_and_rlf_variants_also_valid() {
        for mut strategy in [Bbb::smallest_last(), Bbb::rlf()] {
            let mut rng = StdRng::seed_from_u64(5);
            let mut net = Network::new(25.0);
            for e in JoinWorkload::paper(40).generate(&mut rng) {
                strategy.apply(&mut net, &e);
                assert!(net.validate().is_ok());
            }
        }
    }

    #[test]
    fn bbb_recolors_on_every_event_type() {
        let mut strategy = Bbb::default();
        let mut net = Network::new(10.0);
        use minim_geom::Point;
        let a = net.next_id();
        strategy.on_join(&mut net, a, NodeConfig::new(Point::new(0.0, 0.0), 6.0));
        let b = net.next_id();
        strategy.on_join(&mut net, b, NodeConfig::new(Point::new(5.0, 0.0), 6.0));
        assert!(net.validate().is_ok());
        strategy.on_move(&mut net, b, Point::new(3.0, 0.0));
        assert!(net.validate().is_ok());
        strategy.on_set_range(&mut net, a, 12.0);
        assert!(net.validate().is_ok());
        strategy.on_leave(&mut net, b);
        assert!(net.validate().is_ok());
        assert_eq!(net.node_count(), 1);
        // The survivor is recolored to color 1 by the fresh global run.
        assert_eq!(net.assignment().get(a), Some(Color::new(1)));
    }
}
