//! Gossip-based code-reuse compaction — the paper's §6 **future work**,
//! implemented as an extension.
//!
//! "Future work will focus on a recoding strategy that seeks to
//! maximize the network-wide code reuse by using a local gossiping
//! strategy [...] during the (possibly significantly long) periods when
//! no nodes connect to, move about or increase their power."
//!
//! Each gossip round, every node computes the lowest color consistent
//! with its **exact** CA1/CA2 constraints and migrates to it if that is
//! strictly lower than its current color. Migrations within a round are
//! serialized in descending identity order (the same vicinity rule the
//! CP reselection uses: concurrently migrating nodes more than 2 hops
//! apart cannot constrain each other, so this is a valid linearization
//! of a distributed execution where each node moves only when it is the
//! highest-identity migrant in its 2-hop vicinity).
//!
//! Every individual migration preserves CA1/CA2 (the target color is
//! checked against the *current* colors of all conflict partners), so
//! the assignment is valid after every round; the maximum color index
//! is non-increasing and the process reaches a fixpoint (each node's
//! color is non-increasing and bounded below by 1).

use minim_graph::{conflict, Color, NodeId};
use minim_net::Network;

/// Background color-compaction gossiper.
#[derive(Debug, Clone, Copy, Default)]
pub struct GossipCompactor;

/// Result of one compaction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Rounds executed (including the final, empty round that proved
    /// the fixpoint).
    pub rounds: usize,
    /// Total color migrations performed.
    pub migrations: usize,
    /// Max color index before compaction.
    pub max_color_before: u32,
    /// Max color index after compaction.
    pub max_color_after: u32,
}

impl GossipCompactor {
    /// Runs a single gossip round. Returns the number of migrations.
    pub fn round(&self, net: &mut Network) -> usize {
        // The loop below recolors while iterating, so the ids are
        // collected first (from the borrowing iterator).
        let mut ids: Vec<NodeId> = net.iter_nodes().collect();
        ids.sort_unstable_by(|a, b| b.cmp(a)); // highest identity first
        let mut moves = 0;
        for id in ids {
            let Some(current) = net.assignment().get(id) else {
                continue;
            };
            let constraints = conflict::constraint_colors(net.graph(), net.assignment(), id);
            let lowest = Color::lowest_excluding(constraints);
            if lowest < current {
                net.assignment_mut().set(id, lowest);
                moves += 1;
            }
        }
        debug_assert!(net.validate().is_ok(), "gossip round broke the assignment");
        moves
    }

    /// Runs rounds until a fixpoint (or `max_rounds`).
    pub fn run(&self, net: &mut Network, max_rounds: usize) -> CompactionStats {
        let max_color_before = net.max_color_index();
        let mut rounds = 0;
        let mut migrations = 0;
        while rounds < max_rounds {
            rounds += 1;
            let m = self.round(net);
            migrations += m;
            if m == 0 {
                break;
            }
        }
        CompactionStats {
            rounds,
            migrations,
            max_color_before,
            max_color_after: net.max_color_index(),
        }
    }
}

/// Minim with background gossip: the §6 "future work" strategy made
/// first-class. Events are handled by [`crate::Minim`]; after every
/// `period` events the compactor runs one gossip round (the quiet-time
/// behaviour, interleaved). Gossip migrations are honestly charged as
/// recodings in the returned outcomes.
#[derive(Debug, Clone)]
pub struct MinimWithGossip {
    inner: crate::Minim,
    /// Events between gossip rounds.
    pub period: usize,
    events_since_gossip: usize,
}

impl MinimWithGossip {
    /// Creates the hybrid with the given gossip period (≥ 1).
    pub fn new(period: usize) -> Self {
        assert!(period >= 1, "gossip period must be at least 1");
        MinimWithGossip {
            inner: crate::Minim::default(),
            period,
            events_since_gossip: 0,
        }
    }

    /// Runs gossip when due, merging its migrations into the effect's
    /// outcome.
    fn maybe_gossip(
        &mut self,
        net: &mut minim_net::Network,
        before: &minim_graph::Assignment,
        effect: crate::EventEffect,
    ) -> crate::EventEffect {
        self.events_since_gossip += 1;
        if self.events_since_gossip < self.period {
            return effect;
        }
        self.events_since_gossip = 0;
        GossipCompactor.round(net);
        // Recompute the combined diff against the pre-event snapshot so
        // event recodes and gossip migrations are both counted (a node
        // recoded twice counts once — it retunes once per event batch).
        crate::EventEffect {
            delta: effect.delta,
            outcome: crate::RecodeOutcome::from_diff(net, before),
        }
    }
}

impl crate::RecodingStrategy for MinimWithGossip {
    fn name(&self) -> &'static str {
        "Minim+Gossip"
    }

    fn on_join_delta(
        &mut self,
        net: &mut minim_net::Network,
        id: minim_graph::NodeId,
        cfg: minim_net::NodeConfig,
    ) -> crate::EventEffect {
        let before = net.snapshot_assignment();
        let effect = self.inner.on_join_delta(net, id, cfg);
        self.maybe_gossip(net, &before, effect)
    }

    fn on_leave_delta(
        &mut self,
        net: &mut minim_net::Network,
        id: minim_graph::NodeId,
    ) -> crate::EventEffect {
        let before = net.snapshot_assignment();
        let effect = self.inner.on_leave_delta(net, id);
        self.maybe_gossip(net, &before, effect)
    }

    fn on_move_delta(
        &mut self,
        net: &mut minim_net::Network,
        id: minim_graph::NodeId,
        to: minim_geom::Point,
    ) -> crate::EventEffect {
        let before = net.snapshot_assignment();
        let effect = self.inner.on_move_delta(net, id, to);
        self.maybe_gossip(net, &before, effect)
    }

    fn on_set_range_delta(
        &mut self,
        net: &mut minim_net::Network,
        id: minim_graph::NodeId,
        range: f64,
    ) -> crate::EventEffect {
        let before = net.snapshot_assignment();
        let effect = self.inner.on_set_range_delta(net, id, range);
        self.maybe_gossip(net, &before, effect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Minim, RecodingStrategy};
    use minim_geom::Point;
    use minim_net::workload::{JoinWorkload, MovementWorkload};
    use minim_net::{Network, NodeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compaction_reduces_wasteful_colors() {
        // Two isolated nodes manually given high colors.
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 2.0));
        let b = net.join(NodeConfig::new(Point::new(50.0, 50.0), 2.0));
        net.set_color(a, Color::new(7));
        net.set_color(b, Color::new(9));
        let stats = GossipCompactor.run(&mut net, 100);
        assert_eq!(net.assignment().get(a), Some(Color::new(1)));
        assert_eq!(net.assignment().get(b), Some(Color::new(1)));
        assert_eq!(stats.max_color_before, 9);
        assert_eq!(stats.max_color_after, 1);
        assert_eq!(stats.migrations, 2);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn compaction_preserves_validity_after_churn() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Network::new(25.0);
        let mut m = Minim::default();
        for e in JoinWorkload::paper(60).generate(&mut rng) {
            m.apply(&mut net, &e);
        }
        // Churn: several movement rounds inflate the color count.
        for _ in 0..3 {
            for e in MovementWorkload::paper(40.0, 1).generate_round(&net, &mut rng) {
                m.apply(&mut net, &e);
            }
        }
        let before = net.max_color_index();
        let stats = GossipCompactor.run(&mut net, 50);
        assert!(net.validate().is_ok());
        assert!(stats.max_color_after <= before);
        assert_eq!(stats.max_color_before, before);
    }

    #[test]
    fn fixpoint_round_is_empty_and_stable() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = Network::new(25.0);
        let mut m = Minim::default();
        for e in JoinWorkload::paper(30).generate(&mut rng) {
            m.apply(&mut net, &e);
        }
        GossipCompactor.run(&mut net, 100);
        let snapshot = net.snapshot_assignment();
        // Another run changes nothing.
        let stats = GossipCompactor.run(&mut net, 100);
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.rounds, 1);
        assert_eq!(net.snapshot_assignment(), snapshot);
    }

    #[test]
    fn max_color_is_monotone_across_rounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Network::new(25.0);
        let mut m = Minim::default();
        for e in JoinWorkload::paper(50).generate(&mut rng) {
            m.apply(&mut net, &e);
        }
        let mut last = net.max_color_index();
        for _ in 0..10 {
            GossipCompactor.round(&mut net);
            let now = net.max_color_index();
            assert!(now <= last);
            last = now;
        }
    }

    #[test]
    fn empty_network_compacts_trivially() {
        let mut net = Network::new(10.0);
        let stats = GossipCompactor.run(&mut net, 10);
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.max_color_after, 0);
    }

    #[test]
    fn hybrid_strategy_stays_valid_and_compacts_colors() {
        let mut rng = StdRng::seed_from_u64(20);
        let join_events = JoinWorkload::paper(50).generate(&mut rng);
        let move_rounds: Vec<_> = {
            let mut ghost = Network::new(25.0);
            let mut m = Minim::default();
            for e in &join_events {
                m.apply(&mut ghost, e);
            }
            (0..5)
                .map(|_| {
                    let round = MovementWorkload::paper(40.0, 1).generate_round(&ghost, &mut rng);
                    for e in &round {
                        minim_net::event::apply_topology(&mut ghost, e);
                    }
                    round
                })
                .collect()
        };

        let run = |strategy: &mut dyn RecodingStrategy| {
            let mut net = Network::new(25.0);
            for e in &join_events {
                strategy.apply(&mut net, e);
                assert!(net.validate().is_ok(), "{}", strategy.name());
            }
            for round in &move_rounds {
                for e in round {
                    strategy.apply(&mut net, e);
                    assert!(net.validate().is_ok(), "{}", strategy.name());
                }
            }
            net.max_color_index()
        };
        let plain = run(&mut Minim::default());
        let hybrid = run(&mut MinimWithGossip::new(10));
        assert!(
            hybrid <= plain,
            "gossip must not inflate colors: hybrid {hybrid} vs plain {plain}"
        );
    }

    #[test]
    fn hybrid_gossip_fires_on_schedule() {
        let mut s = MinimWithGossip::new(3);
        let mut net = Network::new(10.0);
        // Three joins: gossip fires on the third (no visible effect on
        // a compact assignment, but the counter must reset).
        for i in 0..3 {
            let id = net.next_id();
            s.on_join(
                &mut net,
                id,
                NodeConfig::new(Point::new(i as f64 * 30.0, 0.0), 5.0),
            );
        }
        assert_eq!(s.events_since_gossip, 0, "fired and reset");
        let id = net.next_id();
        s.on_join(&mut net, id, NodeConfig::new(Point::new(90.0, 0.0), 5.0));
        assert_eq!(s.events_since_gossip, 1);
        assert_eq!(s.name(), "Minim+Gossip");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn hybrid_rejects_zero_period() {
        let _ = MinimWithGossip::new(0);
    }
}
