//! The recoding strategies — the paper's contribution and its baselines.
//!
//! A *recoding strategy* is a set of algorithms, one per reconfiguration
//! event type, that restores CA1/CA2 after the event (§2). This crate
//! implements three:
//!
//! * [`Minim`] — the paper's contribution (§4): provably **minimal**
//!   recoding per event. Joins and moves solve a maximum-weight
//!   bipartite matching between the affected nodes `1n ∪ 2n ∪ {n}` and
//!   the color indices (keep-your-old-color edges weigh 3, others 1);
//!   power increases recode at most the initiating node; leaves and
//!   power decreases are provably free.
//! * [`Cp`] — the Chlamtac–Pinter baseline (§3, \[3\]): identity-ordered
//!   greedy reselection with conservative 2-hop color avoidance.
//! * [`Bbb`] — the centralized baseline (§5, \[7\]): recolor the whole
//!   network with a near-optimal global heuristic (DSATUR per
//!   DESIGN.md) at every event.
//!
//! [`bounds`] computes the paper's minimal-recoding lower bounds so
//! tests can verify [`Minim`] attains them *exactly* (Theorems 4.1.8,
//! 4.2.3, 4.3.3, 4.4.4), and [`gossip`] implements the future-work
//! extension sketched in §6 (background code-reuse compaction).

#![deny(missing_docs)]

pub mod bbb;
pub mod bounds;
pub mod cp;
pub mod gossip;
pub mod instrument;
pub mod minim;

pub use bbb::Bbb;
pub use cp::Cp;
pub use gossip::MinimWithGossip;
pub use instrument::{Instrumented, StrategyStats};
pub use minim::{gather_recode_inputs, plan_recode, Minim, KEEP_WEIGHT};

use minim_geom::Point;
use minim_graph::{conflict, Color, NodeId};
use minim_net::event::{AppliedEvent, Event, PowerDirection};
use minim_net::{Network, NodeConfig, TopologyDelta};

/// What a strategy did in response to one event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecodeOutcome {
    /// `(node, old color, new color)` for every node whose color
    /// changed; `old` is `None` for a fresh assignment (a joiner's
    /// first code counts as a recoding, as in the paper's Fig 4).
    /// Sorted by node id.
    pub recoded: Vec<(NodeId, Option<Color>, Color)>,
    /// Maximum color index in the network after the event.
    pub max_color_after: u32,
}

impl RecodeOutcome {
    /// Number of recodings this event caused (the paper's second
    /// metric).
    pub fn recodings(&self) -> usize {
        self.recoded.len()
    }

    /// Builds an outcome by diffing the assignment against a snapshot.
    pub fn from_diff(net: &Network, before: &minim_graph::Assignment) -> Self {
        RecodeOutcome {
            recoded: net.assignment().recoded_nodes(before),
            max_color_after: net.max_color_index(),
        }
    }
}

/// The full effect of one handled event: the exact topology delta the
/// substrate reported and the recoding the strategy performed on top
/// of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventEffect {
    /// What the event did to the induced digraph.
    pub delta: TopologyDelta,
    /// What the strategy recoded in response.
    pub outcome: RecodeOutcome,
}

/// How far one event's handling can reach into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchLocality {
    /// Every read and write stays within the event's spatial
    /// neighborhood (bounded graph hops from the initiator), so
    /// spatially disjoint events commute and their plans may run
    /// concurrently. Minim and CP qualify — this is the paper's
    /// locality claim.
    Neighborhood,
    /// Handling may touch arbitrary state (BBB recolors the whole
    /// network; instrumentation wrappers accumulate global counters).
    /// Batched execution degrades to sequential for such strategies.
    Global,
}

/// The color writes one event's planning decided on, in application
/// order. Committing a plan (see [`commit_plan`]) sets each pair on
/// the real assignment; writes that match the node's current color are
/// recorded as no-ops, exactly like the snapshot-diff accounting.
pub type ColorPlan = Vec<(NodeId, Color)>;

/// Applies a [`ColorPlan`] to the network and builds the
/// [`RecodeOutcome`] by diffing against the pre-commit colors — the
/// `O(plan)` equivalent of `RecodeOutcome::from_diff`'s full-assignment
/// scan (only planned nodes can have changed).
pub fn commit_plan(net: &mut Network, plan: &ColorPlan) -> RecodeOutcome {
    let mut recoded: Vec<(NodeId, Option<Color>, Color)> = Vec::with_capacity(plan.len());
    for &(n, c) in plan {
        let old = net.assignment().get(n);
        if old != Some(c) {
            net.assignment_mut().set(n, c);
            recoded.push((n, old, c));
        }
    }
    recoded.sort_by_key(|&(n, _, _)| n);
    debug_assert!(
        recoded.windows(2).all(|w| w[0].0 != w[1].0),
        "a plan must write each node at most once"
    );
    RecodeOutcome {
        recoded,
        max_color_after: net.max_color_index(),
    }
}

/// A recoding strategy: one algorithm per event type.
///
/// Each handler applies the topology change itself (so it can observe
/// the network both before and after) and then restores CA1/CA2. Every
/// implementation guarantees validity on return, provided it held
/// before the event.
///
/// The `*_delta` handlers are the required implementations: they
/// receive the [`TopologyDelta`] from the mutating `Network` call and
/// recode *from the delta* — partitions, recode sets, and new
/// constraints all come out of it, so per-event work is
/// `O(affected neighborhood)`, matching the paper's locality claim.
/// The delta-less `on_*` methods are provided conveniences for
/// callers that only need the [`RecodeOutcome`].
pub trait RecodingStrategy {
    /// Human-readable name for tables and plots.
    fn name(&self) -> &'static str;

    /// Node `id` (fresh, from [`Network::next_id`]) joins with `cfg`.
    fn on_join_delta(&mut self, net: &mut Network, id: NodeId, cfg: NodeConfig) -> EventEffect;

    /// Node `id` leaves the network.
    fn on_leave_delta(&mut self, net: &mut Network, id: NodeId) -> EventEffect;

    /// Node `id` moves to `to`.
    fn on_move_delta(&mut self, net: &mut Network, id: NodeId, to: Point) -> EventEffect;

    /// Node `id` changes its transmission range to `range` (the
    /// strategy decides how to treat increases vs decreases).
    fn on_set_range_delta(&mut self, net: &mut Network, id: NodeId, range: f64) -> EventEffect;

    /// Convenience: join, discarding the delta.
    fn on_join(&mut self, net: &mut Network, id: NodeId, cfg: NodeConfig) -> RecodeOutcome {
        self.on_join_delta(net, id, cfg).outcome
    }

    /// Convenience: leave, discarding the delta.
    fn on_leave(&mut self, net: &mut Network, id: NodeId) -> RecodeOutcome {
        self.on_leave_delta(net, id).outcome
    }

    /// Convenience: move, discarding the delta.
    fn on_move(&mut self, net: &mut Network, id: NodeId, to: Point) -> RecodeOutcome {
        self.on_move_delta(net, id, to).outcome
    }

    /// Convenience: range change, discarding the delta.
    fn on_set_range(&mut self, net: &mut Network, id: NodeId, range: f64) -> RecodeOutcome {
        self.on_set_range_delta(net, id, range).outcome
    }

    /// How far this strategy's event handling reaches. Strategies
    /// whose reads and writes stay within the event's neighborhood
    /// return [`BatchLocality::Neighborhood`] and implement
    /// [`RecodingStrategy::plan_batched`]; the conservative default
    /// ([`BatchLocality::Global`]) makes batched execution fall back
    /// to the sequential path.
    fn batch_locality(&self) -> BatchLocality {
        BatchLocality::Global
    }

    /// Plans the color writes for an event whose **topology has
    /// already been applied** to `net` (yielding `delta`), without
    /// mutating anything — the parallel-safe phase of batched
    /// execution.
    ///
    /// Contract (for [`BatchLocality::Neighborhood`] strategies): the
    /// plan must depend only on state within the event's neighborhood,
    /// and committing it via [`commit_plan`] must leave the network in
    /// exactly the state the sequential `on_*_delta` handler would
    /// have produced. Minim and CP implement their sequential handlers
    /// *through* this method, so the equivalence holds by
    /// construction.
    ///
    /// # Panics
    /// The default implementation panics: global strategies have no
    /// batch plan, and the executor must not call this after checking
    /// [`RecodingStrategy::batch_locality`].
    fn plan_batched(
        &self,
        _net: &Network,
        _applied: &AppliedEvent,
        _delta: &TopologyDelta,
    ) -> ColorPlan {
        unreachable!("plan_batched requires batch_locality() == Neighborhood")
    }

    /// Applies an [`Event`], returning both the topology delta and the
    /// recoding — the simulation runner's entry point.
    fn apply_delta(&mut self, net: &mut Network, event: &Event) -> (AppliedEvent, EventEffect) {
        match event {
            Event::Join { cfg } => {
                let id = net.next_id();
                let effect = self.on_join_delta(net, id, *cfg);
                (AppliedEvent::Joined(id), effect)
            }
            Event::Leave { node } => {
                let effect = self.on_leave_delta(net, *node);
                (AppliedEvent::Left(*node), effect)
            }
            Event::Move { node, to } => {
                let effect = self.on_move_delta(net, *node, *to);
                (AppliedEvent::Moved(*node), effect)
            }
            Event::SetRange { node, range } => {
                let dir = event
                    .power_direction(net)
                    .expect("SetRange target must exist");
                let effect = self.on_set_range_delta(net, *node, *range);
                (AppliedEvent::RangeChanged(*node, dir), effect)
            }
        }
    }

    /// Applies an [`Event`], dispatching to the appropriate handler.
    fn apply(&mut self, net: &mut Network, event: &Event) -> (AppliedEvent, RecodeOutcome) {
        let (applied, effect) = self.apply_delta(net, event);
        (applied, effect.outcome)
    }
}

/// The seed set [`conflict::validate_delta`] needs for one event: the
/// initiating node plus everything the strategy recoded. Sorted,
/// deduplicated. `O(recode set)` — independent of node degree.
pub fn validation_seeds(delta: &TopologyDelta, outcome: &RecodeOutcome) -> Vec<NodeId> {
    let mut seeds = Vec::with_capacity(1 + outcome.recoded.len());
    seeds.push(delta.node());
    seeds.extend(outcome.recoded.iter().map(|&(n, ..)| n));
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

/// Debug-build check that the event left CA1/CA2 intact, done locally:
/// seeded with [`validation_seeds`], exactly the contract of
/// [`conflict::validate_delta`]. Compiled out in release builds.
#[inline]
pub(crate) fn debug_assert_locally_valid(
    net: &Network,
    delta: &TopologyDelta,
    outcome: &RecodeOutcome,
) {
    if cfg!(debug_assertions) {
        let seeds = validation_seeds(delta, outcome);
        if let Err(v) = conflict::validate_delta(net.graph(), net.assignment(), &seeds) {
            panic!("event left a local CA1/CA2 violation: {v}");
        }
    }
}

/// The strategies compared in §5, for sweep drivers that iterate over
/// all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The paper's minimal strategies.
    Minim,
    /// Chlamtac–Pinter distributed baseline.
    Cp,
    /// Centralized recolor-everything baseline.
    Bbb,
}

impl StrategyKind {
    /// All three, in the paper's plotting order.
    pub const ALL: [StrategyKind; 3] = [StrategyKind::Minim, StrategyKind::Cp, StrategyKind::Bbb];

    /// The two distributed strategies (for the zoomed CP-vs-Minim
    /// sub-figures 10(c,f), 11(c), 12(a,d)).
    pub const DISTRIBUTED: [StrategyKind; 2] = [StrategyKind::Minim, StrategyKind::Cp];

    /// Instantiates the strategy. The trait object is `Send + Sync`
    /// so the batched executor can share it across planning workers.
    pub fn build(self) -> Box<dyn RecodingStrategy + Send + Sync> {
        match self {
            StrategyKind::Minim => Box::new(Minim::default()),
            StrategyKind::Cp => Box::new(Cp::default()),
            StrategyKind::Bbb => Box::new(Bbb::default()),
        }
    }

    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Minim => "Minim",
            StrategyKind::Cp => "CP",
            StrategyKind::Bbb => "BBB",
        }
    }
}

/// Shared helper: the direction of a range change, evaluated against
/// the current network state (before application).
pub(crate) fn range_direction(net: &Network, id: NodeId, new_range: f64) -> PowerDirection {
    let current = net
        .config(id)
        .expect("range_direction: node must exist")
        .range;
    if new_range > current {
        PowerDirection::Increase
    } else if new_range < current {
        PowerDirection::Decrease
    } else {
        PowerDirection::Unchanged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_geom::Point;

    #[test]
    fn strategy_kind_roundtrip() {
        for kind in StrategyKind::ALL {
            let s = kind.build();
            assert_eq!(s.name(), kind.label());
        }
        assert_eq!(StrategyKind::DISTRIBUTED.len(), 2);
    }

    #[test]
    fn apply_dispatches_all_event_kinds() {
        for kind in StrategyKind::ALL {
            let mut s = kind.build();
            let mut net = Network::new(10.0);
            let cfg = NodeConfig::new(Point::new(0.0, 0.0), 10.0);
            let (applied, _) = s.apply(&mut net, &Event::Join { cfg });
            let AppliedEvent::Joined(a) = applied else {
                panic!("expected join");
            };
            let cfg2 = NodeConfig::new(Point::new(5.0, 0.0), 10.0);
            let (applied, _) = s.apply(&mut net, &Event::Join { cfg: cfg2 });
            let AppliedEvent::Joined(b) = applied else {
                panic!("expected join");
            };
            assert!(net.validate().is_ok(), "{} after joins", s.name());

            s.apply(
                &mut net,
                &Event::Move {
                    node: b,
                    to: Point::new(2.0, 0.0),
                },
            );
            assert!(net.validate().is_ok(), "{} after move", s.name());

            s.apply(
                &mut net,
                &Event::SetRange {
                    node: a,
                    range: 20.0,
                },
            );
            assert!(net.validate().is_ok(), "{} after range up", s.name());

            s.apply(&mut net, &Event::Leave { node: a });
            assert!(net.validate().is_ok(), "{} after leave", s.name());
            assert_eq!(net.node_count(), 1);
        }
    }

    #[test]
    fn recode_outcome_from_diff() {
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let before = net.snapshot_assignment();
        net.set_color(a, Color::new(3));
        let out = RecodeOutcome::from_diff(&net, &before);
        assert_eq!(out.recodings(), 1);
        assert_eq!(out.recoded, vec![(a, None, Color::new(3))]);
        assert_eq!(out.max_color_after, 3);
    }
}
