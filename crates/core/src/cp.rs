//! The **CP** baseline — Chlamtac & Pinter's distributed recoding
//! strategy as described in §3 of the paper.
//!
//! * **Join**: the joiner contacts its 1-hop neighbors; every pair of
//!   nodes in `1n ∪ 2n` sharing a color violates CA2 through the
//!   joiner, so all members of duplicated color classes plus the joiner
//!   become unassigned and re-run the \[3\] selection protocol: each
//!   selects once it is the highest-identity unassigned node in its
//!   2-hop vicinity, taking the **lowest color not used by any of its
//!   1- or 2-hop neighbors**. (This reproduces the paper's Fig 4 CP
//!   column exactly: with neighbors {1,3,6,7} of the joiner 8 holding
//!   (2,1,1,2) — all four duplicated — and externals fixing color 3,
//!   the highest-first waves give 8→1, 7→2, 6→4, 3→5, 1→6: four
//!   recodings, max color 6, precisely the published numbers. The
//!   alternative reading in which the *entire* 1-hop neighborhood
//!   reselects regardless of duplication is available as
//!   [`Cp::with_whole_neighborhood`] and explodes the recoding counts
//!   ~5× beyond the paper's Fig 10 magnitudes, which is how we ruled
//!   it out — see EXPERIMENTS.md.) The 2-hop avoidance is a
//!   conservative superset of the true CA1/CA2 constraints, which is
//!   why CP uses more colors than Minim, and the lowest-available pick
//!   is why it recodes more: a reselecting node abandons its old color
//!   whenever a lower one happens to be free.
//! * **Leave / power decrease**: passive (no new conflicts).
//! * **Move**: modeled as leave followed by join (§3) — the mover
//!   forgets its color and rejoins, which is exactly what makes CP
//!   costly under mobility (§5.3).
//! * **Power increase** (§4.2's CP extension): every node within 2
//!   hops that acquires a *new* constraint with the initiator and has
//!   the same old color — plus the initiator — reselects, same
//!   ordering and color rule (this reproduces the paper's Fig 6: the
//!   conflicter picks 4, then the initiator picks 5).
//!
//! Sequential processing in descending identity order is a valid
//! linearization of the distributed rule (concurrently-selecting nodes
//! are > 2 hops apart and cannot constrain each other), and keeps runs
//! deterministic.

use crate::{
    commit_plan, debug_assert_locally_valid, range_direction, BatchLocality, ColorPlan,
    EventEffect, RecodeOutcome, RecodingStrategy,
};
use minim_geom::Point;
use minim_graph::{conflict, hops};
use minim_graph::{Color, ColorView, NodeId};
use minim_net::event::{AppliedEvent, PowerDirection};
use minim_net::{Network, NodeConfig, TopologyDelta};
use std::collections::{HashMap, HashSet};

/// The Chlamtac–Pinter recoding baseline.
#[derive(Debug, Clone, Default)]
pub struct Cp {
    /// When true, reselecting nodes avoid only their *exact* CA1/CA2
    /// constraint colors instead of every color within 2 hops. Used by
    /// the `ablation_cp_pick` bench to isolate how much of CP's color
    /// inflation is due to 2-hop conservatism.
    pub exact_constraints: bool,
    /// When true, a join/move reselects the joiner's **entire** 1-hop
    /// neighborhood instead of only duplicated color classes — the
    /// alternative reading of \[3\] discussed in the module docs and
    /// EXPERIMENTS.md.
    pub whole_neighborhood: bool,
}

impl Cp {
    /// The ablation variant with constraint-exact color picking.
    pub fn with_exact_constraints() -> Self {
        Cp {
            exact_constraints: true,
            ..Cp::default()
        }
    }

    /// The ablation variant reselecting the whole 1-hop neighborhood
    /// on joins and moves.
    pub fn with_whole_neighborhood() -> Self {
        Cp {
            whole_neighborhood: true,
            ..Cp::default()
        }
    }

    /// Fills `avoid` with the colors a reselecting node must avoid, as
    /// the plan currently sees them (its own earlier writes included,
    /// via the view). `partners` is conflict-set scratch; both buffers
    /// are reused across the reselection loop, so the per-node heap
    /// traffic of a CP plan is gone in the exact-constraints arm (the
    /// default 2-hop arm still walks a BFS, which allocates its
    /// frontier). The result is **sorted** and deduplicated.
    fn avoid_colors_into(
        &self,
        net: &Network,
        view: &ColorView<'_>,
        u: NodeId,
        partners: &mut Vec<NodeId>,
        avoid: &mut Vec<Color>,
    ) {
        if self.exact_constraints {
            conflict::constraint_colors_into(net.graph(), view, u, partners, avoid);
        } else {
            avoid.clear();
            avoid.extend(
                hops::within_hops(net.graph(), u, 2)
                    .into_iter()
                    .filter_map(|(v, _)| view.get(v)),
            );
            avoid.sort_unstable();
            avoid.dedup();
        }
    }

    /// Plans the reselection of `to_recolor`: uncolors them on the
    /// view, then reselects in descending identity order with the
    /// lowest-available rule. The network itself is untouched — the
    /// interleaved read-after-write the protocol needs happens on the
    /// view overlay, which is what lets many CP plans run concurrently
    /// in batched execution.
    fn reselect_plan(
        &self,
        net: &Network,
        view: &mut ColorView<'_>,
        mut to_recolor: Vec<NodeId>,
    ) -> ColorPlan {
        to_recolor.sort_unstable();
        to_recolor.dedup();
        for &u in &to_recolor {
            view.unset(u);
        }
        // Highest identity selects first.
        to_recolor.sort_unstable_by(|a, b| b.cmp(a));
        let mut plan = Vec::with_capacity(to_recolor.len());
        let mut partners: Vec<NodeId> = Vec::new();
        let mut avoid: Vec<Color> = Vec::new();
        for &u in &to_recolor {
            self.avoid_colors_into(net, view, u, &mut partners, &mut avoid);
            let c = Color::lowest_excluding_sorted(&avoid);
            view.set(u, c);
            plan.push((u, c));
        }
        plan
    }

    /// The duplicated-color members of `1n ∪ 2n` around the delta's
    /// node (the nodes whose pairs violate CA2 through the joiner) —
    /// read straight off the delta's neighbor lists.
    fn duplicate_in_neighbors(view: &ColorView<'_>, delta: &TopologyDelta) -> Vec<NodeId> {
        let in_union = delta.partitions().in_union();
        let mut by_color: HashMap<Color, Vec<NodeId>> = HashMap::new();
        for &u in &in_union {
            if let Some(c) = view.get(u) {
                by_color.entry(c).or_default().push(u);
            }
        }
        let mut dup: Vec<NodeId> = by_color
            .into_values()
            .filter(|v| v.len() >= 2)
            .flatten()
            .collect();
        dup.sort_unstable();
        dup
    }

    /// Shared join-plan engine (also the second half of a move). The
    /// affected neighborhood comes from the event's delta.
    fn plan_join(
        &self,
        net: &Network,
        view: &mut ColorView<'_>,
        delta: &TopologyDelta,
    ) -> ColorPlan {
        let id = delta.node();
        let mut to_recolor = if self.whole_neighborhood {
            let p = delta.partitions();
            let mut v = p.in_union();
            v.extend_from_slice(&p.three);
            v.sort_unstable();
            v
        } else {
            Self::duplicate_in_neighbors(view, delta)
        };
        to_recolor.push(id);
        self.reselect_plan(net, view, to_recolor)
    }

    /// The initiator's conflict partners *before* a power increase,
    /// reconstructed from the delta and the post-event graph. Valid
    /// because an increase only adds out-edges of the initiator: every
    /// other adjacency — in particular the in-lists of the receivers
    /// it already reached — is unchanged.
    fn partners_before_increase(net: &Network, delta: &TopologyDelta) -> Vec<NodeId> {
        let id = delta.node();
        let out_before = delta.out_before();
        let mut set: HashSet<NodeId> = HashSet::new();
        // CA1 partners: both edge directions (in-edges are untouched
        // by a range change, so in_after == in_before).
        set.extend(out_before.iter().copied());
        set.extend(delta.in_after.iter().copied());
        // CA2 partners: other transmitters into the old receivers.
        for &w in &out_before {
            set.extend(net.graph().in_neighbors(w).iter().copied());
        }
        set.remove(&id);
        let mut v: Vec<NodeId> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Plans the §4.2 CP power-increase extension: every node that
    /// acquires a *new* constraint with the initiator and shares its
    /// old color — plus the initiator — reselects.
    fn plan_range_change(
        &self,
        net: &Network,
        view: &mut ColorView<'_>,
        id: NodeId,
        dir: PowerDirection,
        delta: &TopologyDelta,
    ) -> ColorPlan {
        match dir {
            PowerDirection::Increase => {
                // The candidates for new conflicts come from the
                // delta: each newly reached receiver `w` (CA1 partner)
                // and `w`'s other transmitters (CA2 partners). No
                // second full conflict-set derivation.
                let partners_before = Self::partners_before_increase(net, delta);
                let my_color = view.get(id);
                let mut new_partners: Vec<NodeId> = Vec::new();
                for w in delta.new_receivers() {
                    new_partners.push(w);
                    new_partners.extend(
                        net.graph()
                            .in_neighbors(w)
                            .iter()
                            .copied()
                            .filter(|&x| x != id),
                    );
                }
                new_partners.sort_unstable();
                new_partners.dedup();
                let mut to_recolor: Vec<NodeId> = new_partners
                    .into_iter()
                    .filter(|p| partners_before.binary_search(p).is_err())
                    .filter(|&p| view.get(p) == my_color)
                    .collect();
                let clash = !to_recolor.is_empty() || my_color.is_none();
                if clash {
                    to_recolor.push(id);
                    self.reselect_plan(net, view, to_recolor)
                } else {
                    Vec::new()
                }
            }
            PowerDirection::Decrease | PowerDirection::Unchanged => Vec::new(),
        }
    }
}

impl RecodingStrategy for Cp {
    fn name(&self) -> &'static str {
        "CP"
    }

    /// CP's rule set is explicitly 2-hop local (§3), so it batches.
    fn batch_locality(&self) -> BatchLocality {
        BatchLocality::Neighborhood
    }

    fn plan_batched(
        &self,
        net: &Network,
        applied: &AppliedEvent,
        delta: &TopologyDelta,
    ) -> ColorPlan {
        let mut view = ColorView::new(net.assignment());
        match *applied {
            AppliedEvent::Joined(_) => self.plan_join(net, &mut view, delta),
            AppliedEvent::Left(_) => Vec::new(),
            // Leave + join: the mover forgets its color before
            // rejoining (§3) — on the view, so the plan stays pure.
            AppliedEvent::Moved(id) => {
                view.unset(id);
                self.plan_join(net, &mut view, delta)
            }
            AppliedEvent::RangeChanged(id, dir) => {
                self.plan_range_change(net, &mut view, id, dir, delta)
            }
        }
    }

    fn on_join_delta(&mut self, net: &mut Network, id: NodeId, cfg: NodeConfig) -> EventEffect {
        let delta = net.insert_node(id, cfg);
        let plan = self.plan_batched(net, &AppliedEvent::Joined(id), &delta);
        let outcome = commit_plan(net, &plan);
        debug_assert_locally_valid(net, &delta, &outcome);
        EventEffect { delta, outcome }
    }

    fn on_leave_delta(&mut self, net: &mut Network, id: NodeId) -> EventEffect {
        let delta = net.remove_node(id);
        let outcome = RecodeOutcome {
            recoded: Vec::new(),
            max_color_after: net.max_color_index(),
        };
        debug_assert_locally_valid(net, &delta, &outcome);
        EventEffect { delta, outcome }
    }

    /// Leave + join: the mover forgets its color before rejoining.
    fn on_move_delta(&mut self, net: &mut Network, id: NodeId, to: Point) -> EventEffect {
        let delta = net.move_node(id, to);
        let plan = self.plan_batched(net, &AppliedEvent::Moved(id), &delta);
        let outcome = commit_plan(net, &plan);
        debug_assert_locally_valid(net, &delta, &outcome);
        EventEffect { delta, outcome }
    }

    fn on_set_range_delta(&mut self, net: &mut Network, id: NodeId, range: f64) -> EventEffect {
        let dir = range_direction(net, id, range);
        let delta = net.set_range(id, range);
        let plan = self.plan_batched(net, &AppliedEvent::RangeChanged(id, dir), &delta);
        let outcome = commit_plan(net, &plan);
        debug_assert_locally_valid(net, &delta, &outcome);
        EventEffect { delta, outcome }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Minim, RecodingStrategy, StrategyKind};
    use minim_geom::{sample, Point, Rect};
    use minim_net::workload::{JoinWorkload, MovementWorkload, PowerRaiseWorkload};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn c(i: u32) -> Color {
        Color::new(i)
    }

    fn run_joins(strategy: &mut dyn RecodingStrategy, count: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(25.0);
        for e in JoinWorkload::paper(count).generate(&mut rng) {
            strategy.apply(&mut net, &e);
            assert!(
                net.validate().is_ok(),
                "{} invalid after join",
                strategy.name()
            );
        }
        net
    }

    #[test]
    fn cp_join_sequence_is_correct() {
        let mut cp = Cp::default();
        let net = run_joins(&mut cp, 60, 11);
        assert_eq!(net.node_count(), 60);
    }

    #[test]
    fn cp_recolors_all_duplicate_members_not_k_minus_one() {
        // Star: joiner hub with spokes colored {1, 1}. CP uncolors both
        // duplicates + the hub; with the hub selecting first (highest
        // id), then spokes at 2-hop visibility of each other.
        let mut net = Network::new(10.0);
        let s1 = net.join(NodeConfig::new(Point::new(0.0, 5.0), 6.0));
        let s2 = net.join(NodeConfig::new(Point::new(0.0, -5.0), 6.0));
        net.set_color(s1, c(1));
        net.set_color(s2, c(1));
        assert!(net.validate().is_ok(), "spokes out of range of each other");
        let mut cp = Cp::default();
        let hub = net.next_id();
        let out = cp.on_join(&mut net, hub, NodeConfig::new(Point::new(0.0, 0.0), 6.0));
        assert!(net.validate().is_ok());
        // CP recodes: hub (new), and both of s1/s2 reselect; s2
        // (higher id) selects before s1 and may re-pick 1... after hub
        // took the lowest free color. The count must be >= Minim's
        // bound (2) and the assignment valid.
        assert!(out.recodings() >= 2, "got {}", out.recodings());
    }

    #[test]
    fn cp_move_always_reassigns_the_mover_from_scratch() {
        // Even a move that changes nothing topologically makes CP
        // reassign the mover (leave + join forgets its color); the
        // lowest-available pick then abandons the old high color.
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 6.0));
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 6.0));
        net.set_color(a, c(1));
        net.set_color(b, c(5)); // b's color is deliberately high
        let mut cp = Cp::default();
        let out = cp.on_move(&mut net, b, Point::new(4.0, 0.0));
        assert!(net.validate().is_ok());
        assert_eq!(out.recodings(), 1);
        assert_eq!(net.assignment().get(b), Some(c(2)), "lowest available");

        // The whole-neighborhood ablation variant additionally evicts
        // the mover's neighbor: b selects first and grabs color 1.
        let mut net2 = Network::new(10.0);
        let a2 = net2.join(NodeConfig::new(Point::new(0.0, 0.0), 6.0));
        let b2 = net2.join(NodeConfig::new(Point::new(5.0, 0.0), 6.0));
        net2.set_color(a2, c(1));
        net2.set_color(b2, c(5));
        let mut cpw = Cp::with_whole_neighborhood();
        let out = cpw.on_move(&mut net2, b2, Point::new(4.0, 0.0));
        assert!(net2.validate().is_ok());
        assert_eq!(out.recodings(), 2);
        assert_eq!(net2.assignment().get(b2), Some(c(1)));
        assert_eq!(net2.assignment().get(a2), Some(c(2)));
    }

    /// The Fig 4 CP worked example, reproduced literally: joiner 8 with
    /// 1-hop neighbors holding (2, 3-externals..., 1, 1, 2); the
    /// published outcome is 8→1, 7→2, 6→4, 3→5, 1→6 — four recodings
    /// and max color 6, versus Minim's three.
    #[test]
    fn fig4_cp_column_reproduces_exactly() {
        // Geometry: joiner at the center; neighbors 1, 3, 6, 7 on a
        // circle (pairwise out of direct range); three external nodes
        // with color 3 placed so that EVERY neighbor and the joiner has
        // a color-3 holder within 2 hops (the figure's nodes 2, 4, 5).
        let center = Point::new(50.0, 50.0);
        let mut net = Network::new(10.0);
        // Ids 0..: create in figure order 1,2,3,4,5,6,7 then 8.
        // v1 at angle 0, v3 at 90°, v6 at 180°, v7 at 270°, radius 6.
        let pos = |deg: f64, r: f64| {
            let a = deg.to_radians();
            Point::new(center.x + r * a.cos(), center.y + r * a.sin())
        };
        let v1 = net.join(NodeConfig::new(pos(0.0, 6.0), 7.0));
        // External color-3 holders, each adjacent to one spoke but out
        // of range of the joiner (radius 13 > 7).
        let v2 = net.join(NodeConfig::new(pos(0.0, 13.0), 7.1));
        let v3 = net.join(NodeConfig::new(pos(90.0, 6.0), 7.0));
        let v4 = net.join(NodeConfig::new(pos(90.0, 13.0), 7.1));
        let v5 = net.join(NodeConfig::new(pos(180.0, 13.0), 7.1));
        let v6 = net.join(NodeConfig::new(pos(180.0, 6.0), 7.0));
        let v7 = net.join(NodeConfig::new(pos(270.0, 6.0), 7.0));
        // A fourth external so v7 also sees a color-3 holder.
        let v7x = net.join(NodeConfig::new(pos(270.0, 13.0), 7.1));
        net.set_color(v1, c(2));
        net.set_color(v2, c(3));
        net.set_color(v3, c(1));
        net.set_color(v4, c(3));
        net.set_color(v5, c(3));
        net.set_color(v6, c(1));
        net.set_color(v7, c(2));
        net.set_color(v7x, c(3));
        assert!(net.validate().is_ok(), "the pre-join assignment is legal");

        let mut cp = Cp::default();
        let joiner = net.next_id();
        let out = cp.on_join(&mut net, joiner, NodeConfig::new(center, 7.0));
        assert!(net.validate().is_ok());

        // Selection order (descending id): joiner, v7, v6, v3, v1.
        assert_eq!(net.assignment().get(joiner), Some(c(1)), "8 → 1");
        assert_eq!(net.assignment().get(v7), Some(c(2)), "7 re-picks 2");
        assert_eq!(net.assignment().get(v6), Some(c(4)), "6 → 4");
        assert_eq!(net.assignment().get(v3), Some(c(5)), "3 → 5");
        assert_eq!(net.assignment().get(v1), Some(c(6)), "1 → 6");
        assert_eq!(out.recodings(), 4, "the paper reports 4 CP recodings");
        assert_eq!(net.max_color_index(), 6, "both end at max color 6");

        // Minim on the identical instance: 3 recodings (Lemma 4.1.1:
        // classes {1,1} and {2,2} → 2, plus the joiner) and the same
        // final max color 6, as the figure reports.
        let mut net_m = Network::new(10.0);
        let w1 = net_m.join(NodeConfig::new(pos(0.0, 6.0), 7.0));
        let w2 = net_m.join(NodeConfig::new(pos(0.0, 13.0), 7.1));
        let w3 = net_m.join(NodeConfig::new(pos(90.0, 6.0), 7.0));
        let w4 = net_m.join(NodeConfig::new(pos(90.0, 13.0), 7.1));
        let w5 = net_m.join(NodeConfig::new(pos(180.0, 13.0), 7.1));
        let w6 = net_m.join(NodeConfig::new(pos(180.0, 6.0), 7.0));
        let w7 = net_m.join(NodeConfig::new(pos(270.0, 6.0), 7.0));
        let w7x = net_m.join(NodeConfig::new(pos(270.0, 13.0), 7.1));
        for (id, col) in [
            (w1, 2),
            (w2, 3),
            (w3, 1),
            (w4, 3),
            (w5, 3),
            (w6, 1),
            (w7, 2),
            (w7x, 3),
        ] {
            net_m.set_color(id, c(col));
        }
        let mut minim = Minim::default();
        let joiner_m = net_m.next_id();
        let out_m = minim.on_join(&mut net_m, joiner_m, NodeConfig::new(center, 7.0));
        assert!(net_m.validate().is_ok());
        assert_eq!(out_m.recodings(), 3, "the paper reports 3 Minim recodings");
        assert_eq!(net_m.max_color_index(), 6, "same final max color as CP");
    }

    #[test]
    fn minim_move_beats_cp_move_here() {
        // Same scenario as above: Minim keeps b's color 5 (weight-3
        // keep-edge) → zero recodings.
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 6.0));
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 6.0));
        net.set_color(a, c(1));
        net.set_color(b, c(5));
        let mut m = Minim::default();
        let out = m.on_move(&mut net, b, Point::new(4.0, 0.0));
        assert!(net.validate().is_ok());
        assert_eq!(out.recodings(), 0, "Minim keeps the old color");
        assert_eq!(net.assignment().get(b), Some(c(5)));
    }

    #[test]
    fn cp_power_increase_reselects_conflicters_and_initiator() {
        // Initiator shares a color with a node it newly reaches: CP
        // must resolve the conflict. Because reselecting nodes may
        // legally re-pick their old color (uncolored peers impose no
        // constraint), the *recoding count* here is 1 — b reselects
        // first (higher identity), re-picks its old color 1, and a is
        // forced off it — but the conflict is gone either way.
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 3.0));
        let b = net.join(NodeConfig::new(Point::new(8.0, 0.0), 3.0));
        net.set_color(a, c(1));
        net.set_color(b, c(1)); // legal: no edges yet
        assert!(net.validate().is_ok());
        let mut cp = Cp::default();
        let out = cp.on_set_range(&mut net, a, 9.0); // a now reaches b
        assert!(net.validate().is_ok());
        assert_eq!(out.recodings(), 1);
        assert_eq!(net.assignment().get(b), Some(c(1)), "b re-picked its color");
        assert_ne!(net.assignment().get(a), Some(c(1)), "a was forced off");
    }

    #[test]
    fn cp_power_increase_never_beats_minim_aggregate() {
        // Statistical version of Fig 11(c): over random networks and
        // power raises, CP's total recodings >= Minim's (which is
        // provably <= 1 per event).
        let mut cp_total = 0usize;
        let mut minim_total = 0usize;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let join_events = JoinWorkload::paper(40).generate(&mut rng);
            // Build identical starting networks with Minim.
            let mut base = Network::new(25.0);
            let mut builder = Minim::default();
            for e in &join_events {
                builder.apply(&mut base, e);
            }
            let raises = PowerRaiseWorkload::paper(3.0).generate(&base, &mut rng);
            let mut net_cp = base.clone();
            let mut cp = Cp::default();
            for e in &raises {
                cp_total += cp.apply(&mut net_cp, e).1.recodings();
                assert!(net_cp.validate().is_ok());
            }
            let mut net_m = base.clone();
            let mut m = Minim::default();
            for e in &raises {
                minim_total += m.apply(&mut net_m, e).1.recodings();
            }
        }
        assert!(
            minim_total <= cp_total,
            "Minim ({minim_total}) must not exceed CP ({cp_total}) on power raises"
        );
    }

    #[test]
    fn cp_handles_power_increase_without_conflicts_passively() {
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 3.0));
        let b = net.join(NodeConfig::new(Point::new(8.0, 0.0), 3.0));
        net.set_color(a, c(1));
        net.set_color(b, c(2));
        let mut cp = Cp::default();
        let out = cp.on_set_range(&mut net, a, 9.0);
        assert_eq!(out.recodings(), 0, "no clash → no recode");
        assert!(net.validate().is_ok());
    }

    #[test]
    fn all_strategies_stay_valid_under_full_paper_workload() {
        for kind in StrategyKind::ALL {
            let mut strategy = kind.build();
            let mut rng = StdRng::seed_from_u64(77);
            let mut net = Network::new(25.0);
            for e in JoinWorkload::paper(40).generate(&mut rng) {
                strategy.apply(&mut net, &e);
            }
            for e in PowerRaiseWorkload::paper(2.0).generate(&net, &mut rng) {
                strategy.apply(&mut net, &e);
                assert!(net.validate().is_ok(), "{} power raise", strategy.name());
            }
            for _ in 0..2 {
                for e in MovementWorkload::paper(40.0, 1).generate_round(&net, &mut rng) {
                    strategy.apply(&mut net, &e);
                    assert!(net.validate().is_ok(), "{} move", strategy.name());
                }
            }
        }
    }

    #[test]
    fn cp_never_beats_minim_on_join_recodings_aggregate() {
        // Statistical version of the paper's Fig 10(c): over several
        // random join sequences, total CP recodings >= total Minim
        // recodings.
        let mut cp_total = 0usize;
        let mut minim_total = 0usize;
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let events = JoinWorkload::paper(40).generate(&mut rng);
            let mut cp = Cp::default();
            let mut net = Network::new(25.0);
            for e in &events {
                cp_total += cp.apply(&mut net, e).1.recodings();
            }
            let mut m = Minim::default();
            let mut net = Network::new(25.0);
            for e in &events {
                minim_total += m.apply(&mut net, e).1.recodings();
            }
        }
        assert!(
            minim_total <= cp_total,
            "Minim ({minim_total}) must not exceed CP ({cp_total})"
        );
    }

    #[test]
    fn exact_constraint_variant_is_valid_and_uses_fewer_colors() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = JoinWorkload::paper(60).generate(&mut rng);
        let mut conservative = Cp::default();
        let mut net_a = Network::new(25.0);
        for e in &events {
            conservative.apply(&mut net_a, e);
        }
        let mut exact = Cp::with_exact_constraints();
        let mut net_b = Network::new(25.0);
        for e in &events {
            exact.apply(&mut net_b, e);
            assert!(net_b.validate().is_ok());
        }
        assert!(
            net_b.max_color_index() <= net_a.max_color_index(),
            "exact constraints can only reduce color usage: {} vs {}",
            net_b.max_color_index(),
            net_a.max_color_index()
        );
    }

    #[test]
    fn cp_join_after_random_churn_is_correct() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut cp = Cp::default();
        let mut net = Network::new(25.0);
        let arena = Rect::paper_arena();
        for _ in 0..150 {
            let roll: f64 = rng.gen();
            if net.node_count() < 5 || roll < 0.5 {
                let id = net.next_id();
                let cfg = NodeConfig::new(
                    sample::uniform_point(&mut rng, &arena),
                    sample::uniform_range(&mut rng, 15.0, 30.0),
                );
                cp.on_join(&mut net, id, cfg);
            } else if roll < 0.65 {
                let ids = net.node_ids();
                let v = ids[rng.gen_range(0..ids.len())];
                cp.on_leave(&mut net, v);
            } else if roll < 0.85 {
                let ids = net.node_ids();
                let v = ids[rng.gen_range(0..ids.len())];
                let to = sample::random_move(&mut rng, net.config(v).unwrap().pos, 30.0, &arena);
                cp.on_move(&mut net, v, to);
            } else {
                let ids = net.node_ids();
                let v = ids[rng.gen_range(0..ids.len())];
                let r = net.config(v).unwrap().range;
                cp.on_set_range(&mut net, v, r * rng.gen_range(0.6..1.8));
            }
            assert!(net.validate().is_ok());
        }
    }
}
