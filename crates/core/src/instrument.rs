//! Strategy instrumentation: wrap any [`RecodingStrategy`] and collect
//! per-event-type accounting — the bookkeeping behind the §5 metrics,
//! reusable by examples and by downstream users evaluating their own
//! strategies.

use crate::{EventEffect, RecodeOutcome, RecodingStrategy};
use minim_geom::Point;
use minim_graph::NodeId;
use minim_net::{Network, NodeConfig};

/// Counters for one event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindStats {
    /// Events of this type handled.
    pub events: usize,
    /// Recodings those events caused.
    pub recodings: usize,
    /// Largest single-event recoding count.
    pub worst_event: usize,
}

impl KindStats {
    fn record(&mut self, outcome: &RecodeOutcome) {
        self.events += 1;
        self.recodings += outcome.recodings();
        self.worst_event = self.worst_event.max(outcome.recodings());
    }

    /// Mean recodings per event (0 when no events).
    pub fn mean_recodings(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.recodings as f64 / self.events as f64
        }
    }
}

/// Accumulated per-kind statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrategyStats {
    /// Join events.
    pub joins: KindStats,
    /// Leave events.
    pub leaves: KindStats,
    /// Move events.
    pub moves: KindStats,
    /// Range changes (increases and decreases combined; decreases are
    /// provably recode-free, so their recodings stay 0).
    pub range_changes: KindStats,
    /// Highest max-color-index observed after any event.
    pub peak_color: u32,
    /// Total digraph edge insertions + removals across all events —
    /// the `Δ` that bounds per-event work, summed (read off each
    /// event's [`minim_net::TopologyDelta`]).
    pub edge_churn: usize,
}

impl StrategyStats {
    /// Totals across all kinds.
    pub fn total_events(&self) -> usize {
        self.joins.events + self.leaves.events + self.moves.events + self.range_changes.events
    }

    /// Total recodings across all kinds (the paper's cumulative
    /// metric).
    pub fn total_recodings(&self) -> usize {
        self.joins.recodings
            + self.leaves.recodings
            + self.moves.recodings
            + self.range_changes.recodings
    }
}

impl std::fmt::Display for StrategyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "events: {} joins / {} leaves / {} moves / {} range changes; \
             recodings: {} (join {:.2}/ev, move {:.2}/ev, range {:.2}/ev); \
             peak color {}",
            self.joins.events,
            self.leaves.events,
            self.moves.events,
            self.range_changes.events,
            self.total_recodings(),
            self.joins.mean_recodings(),
            self.moves.mean_recodings(),
            self.range_changes.mean_recodings(),
            self.peak_color,
        )
    }
}

/// A strategy wrapper that accounts every event.
#[derive(Debug, Clone, Default)]
pub struct Instrumented<S> {
    inner: S,
    /// The accumulated counters.
    pub stats: StrategyStats,
}

impl<S: RecodingStrategy> Instrumented<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Instrumented {
            inner,
            stats: StrategyStats::default(),
        }
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn absorb(&mut self, effect: &EventEffect) {
        self.stats.peak_color = self.stats.peak_color.max(effect.outcome.max_color_after);
        self.stats.edge_churn += effect.delta.edge_churn();
    }
}

impl<S: RecodingStrategy> RecodingStrategy for Instrumented<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_join_delta(&mut self, net: &mut Network, id: NodeId, cfg: NodeConfig) -> EventEffect {
        let effect = self.inner.on_join_delta(net, id, cfg);
        self.stats.joins.record(&effect.outcome);
        self.absorb(&effect);
        effect
    }

    fn on_leave_delta(&mut self, net: &mut Network, id: NodeId) -> EventEffect {
        let effect = self.inner.on_leave_delta(net, id);
        self.stats.leaves.record(&effect.outcome);
        self.absorb(&effect);
        effect
    }

    fn on_move_delta(&mut self, net: &mut Network, id: NodeId, to: Point) -> EventEffect {
        let effect = self.inner.on_move_delta(net, id, to);
        self.stats.moves.record(&effect.outcome);
        self.absorb(&effect);
        effect
    }

    fn on_set_range_delta(&mut self, net: &mut Network, id: NodeId, range: f64) -> EventEffect {
        let effect = self.inner.on_set_range_delta(net, id, range);
        self.stats.range_changes.record(&effect.outcome);
        self.absorb(&effect);
        effect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Minim;
    use minim_geom::{sample, Rect};
    use minim_net::workload::{JoinWorkload, MovementWorkload};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counts_every_event_kind() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = Instrumented::new(Minim::default());
        let mut net = Network::new(25.0);
        for e in JoinWorkload::paper(20).generate(&mut rng) {
            s.apply(&mut net, &e);
        }
        for e in MovementWorkload::paper(30.0, 1).generate_round(&net, &mut rng) {
            s.apply(&mut net, &e);
        }
        let ids = net.node_ids();
        let victim = ids[rng.gen_range(0..ids.len())];
        let r = net.config(victim).unwrap().range;
        s.on_set_range(&mut net, victim, r * 2.0);
        s.on_set_range(&mut net, victim, r); // decrease back
        s.on_leave(&mut net, ids[0]);

        assert_eq!(s.stats.joins.events, 20);
        assert_eq!(s.stats.moves.events, 20);
        assert_eq!(s.stats.range_changes.events, 2);
        assert_eq!(s.stats.leaves.events, 1);
        assert_eq!(s.stats.total_events(), 43);
        assert_eq!(s.stats.leaves.recodings, 0, "leaves are free");
        assert!(
            s.stats.joins.recodings >= 20,
            "every join colors the joiner"
        );
        assert_eq!(s.stats.peak_color, {
            // Peak is at least the current max (colors never exceeded it
            // later without being observed).
            let now = net.max_color_index();
            s.stats.peak_color.max(now)
        });
        assert_eq!(s.name(), "Minim");
    }

    #[test]
    fn mean_recodings_and_display() {
        let mut s = Instrumented::new(Minim::default());
        let mut net = Network::new(10.0);
        let arena = Rect::paper_arena();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let id = net.next_id();
            s.on_join(
                &mut net,
                id,
                NodeConfig::new(sample::uniform_point(&mut rng, &arena), 20.0),
            );
        }
        assert!(s.stats.joins.mean_recodings() >= 1.0);
        let text = s.stats.to_string();
        assert!(text.contains("5 joins"));
        assert!(text.contains("peak color"));
        assert_eq!(KindStats::default().mean_recodings(), 0.0);
    }

    #[test]
    fn worst_event_tracks_maximum() {
        let mut s = Instrumented::new(Minim::default());
        let mut net = Network::new(10.0);
        // A join with duplicate-colored in-neighbors recodes > 1 node.
        use minim_geom::Point;
        use minim_graph::Color;
        let a = net.join(NodeConfig::new(Point::new(44.0, 50.0), 7.0));
        let b = net.join(NodeConfig::new(Point::new(56.0, 50.0), 7.0));
        net.set_color(a, Color::new(1));
        net.set_color(b, Color::new(1));
        let id = net.next_id();
        s.on_join(&mut net, id, NodeConfig::new(Point::new(50.0, 50.0), 7.0));
        assert_eq!(s.stats.joins.worst_event, 2, "one duplicate + the joiner");
    }
}
