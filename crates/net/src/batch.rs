//! Sharding event batches into spatially independent groups.
//!
//! The paper's locality result says one reconfiguration event only
//! perturbs (and a strategy only reads) a bounded spatial neighborhood
//! of the initiating node. Events whose neighborhoods are disjoint
//! therefore **commute**: applying them in either order — or on
//! different copies of the affected regions — produces the same
//! network. A [`BatchPlan`] partitions a slice of [`Event`]s into
//! *shards*: the connected components of the "neighborhoods overlap"
//! relation, computed conservatively on grid cells. Two events in
//! different shards are guaranteed never to read or write any common
//! state, so
//!
//! * each shard can execute end-to-end (topology, recode planning,
//!   commit) on a private copy of its region, in parallel with every
//!   other shard, and
//! * within a shard, events keep their original relative order,
//!
//! which makes shard-parallel execution *conflict-serializable*:
//! provably equivalent to sequential execution in the original order.
//! `minim-sim`'s `run_events_batched` builds on this to make one
//! large-N scenario scale across cores while staying bit-identical to
//! `run_events`.
//!
//! # The conservative neighborhood
//!
//! Let `B` be an upper bound on every transmission range that can
//! occur while the batch executes (the network's tier-derived
//! [`Network::range_bound`] joined with every range the events
//! themselves introduce — since the bound now *tightens* when
//! long-range nodes shrink or leave, claim radii shrink with it and
//! plans split into more, wider-spread shards). Measured from the
//! event's anchor
//! position(s), every strategy read or write stays within a bounded
//! number of graph hops, each of length ≤ `B`:
//!
//! * topology changes are incident to the initiator — reach ≤ `B`;
//! * join/move/leave recoding writes the recode set (one hop, ≤ `B`)
//!   and reads its members' constraint colors and 2-hop surroundings
//!   — reach ≤ `3B`;
//! * a power increase under CP can rewrite two-hop nodes (`≤ 2B`)
//!   whose reselection reads two hops further — reach ≤ `4B`.
//!
//! Each event therefore claims every grid cell intersecting a disc of
//! radius `3B` (`4B` for range changes) around its anchors; events
//! whose claims share a cell are unioned into one shard. Cell
//! granularity only ever *adds* conflicts, never hides one, so the
//! partition stays sound.

use crate::event::Event;
use crate::Network;
use minim_geom::grid::{cell_coord, cell_cover};
use minim_geom::Point;
use minim_graph::{NodeId, UnionFind};
use std::collections::HashMap;
use std::mem;

/// Recycled storage for repeated [`BatchPlan`] planning — the
/// batch-layer sibling of the rewire path's `RewireScratch` and
/// `minim-power`'s `ControlScratch`.
///
/// [`BatchPlan::new`] allocates a union-find, two hash maps, and the
/// shard vectors on every call; a steady-state caller replanning every
/// slice (the per-slice executor, the events bench's replan arm) pays
/// those allocations per slice. Planning through
/// [`BatchPlan::new_with`] instead draws every buffer from this
/// scratch, and [`BatchPlan::recycle`] hands the plan's own containers
/// back — once warm, replanning a bounded slice shape performs **zero
/// heap allocations** (pinned by `tests/alloc_smoke.rs`).
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Event-conflict union-find, `reset` per plan.
    uf: UnionFind,
    /// Claimed cell → first claiming event, cleared per plan.
    cell_owner: HashMap<(i32, i32), usize>,
    /// In-slice ghost positions, cleared per plan.
    ghost: HashMap<NodeId, Point>,
    /// Per-event anchor buffer.
    anchors: Vec<Point>,
    /// Union-find root → shard index, cleared per plan.
    shard_of_root: HashMap<usize, usize>,
    /// Recycled outer shard vector (inner vectors cleared, capacity
    /// kept) from the last [`BatchPlan::recycle`].
    shards_spare: Vec<Vec<usize>>,
    /// Spare inner shard vectors beyond what the last plan used.
    inner_pool: Vec<Vec<usize>>,
    /// Recycled join-id vector.
    join_ids_spare: Vec<Option<NodeId>>,
    /// Recycled claim-cell → shard map.
    cell_shard_spare: HashMap<(i32, i32), usize>,
}

/// A partition of an event slice into spatially independent shards,
/// plus the sequential pre-assignment of join ids.
///
/// Shard lists hold indices into the original event slice, ascending
/// within each shard; shards are ordered by their first event.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    shards: Vec<Vec<usize>>,
    join_ids: Vec<Option<NodeId>>,
    /// Claim-cell side length used during planning.
    cell: f64,
    /// Every claimed cell, mapped to the shard that owns it.
    cell_shard: HashMap<(i32, i32), usize>,
}

impl BatchPlan {
    /// Plans `events` against the current state of `net` (which the
    /// plan does **not** mutate — positions are tracked on a ghost
    /// overlay as the scan walks the slice).
    ///
    /// # Panics
    /// Panics if an event references a node that is neither present in
    /// `net` nor created by an earlier event of the slice — such a
    /// sequence would panic during execution anyway.
    pub fn new(net: &Network, events: &[Event]) -> BatchPlan {
        BatchPlan::new_with(&mut BatchScratch::default(), net, events)
    }

    /// [`BatchPlan::new`], drawing every working buffer from `scratch`
    /// instead of allocating — pair with [`BatchPlan::recycle`] so a
    /// caller replanning every slice reaches a zero-allocation steady
    /// state.
    ///
    /// # Panics
    /// Panics if an event references a node that is neither present in
    /// `net` nor created by an earlier event of the slice — such a
    /// sequence would panic during execution anyway.
    pub fn new_with(scratch: &mut BatchScratch, net: &Network, events: &[Event]) -> BatchPlan {
        // The range bound every claim radius is derived from: the
        // network's tier-derived bound (which covers every *present*
        // range at plan time) joined with every range the events
        // introduce. Conservative by construction — a node not yet
        // inserted cannot be anyone's neighbor, ranges can only change
        // through the joined events, and a bound that is too large
        // only merges shards.
        let mut bound = net.range_bound();
        for e in events {
            match e {
                Event::Join { cfg } => bound = bound.max(cfg.range),
                Event::SetRange { range, .. } => bound = bound.max(*range),
                _ => {}
            }
        }
        // Claim-cell side length. With a zero bound no edges can ever
        // exist and events only conflict on identical anchors; any
        // positive cell size is then correct.
        let cell = if bound > 0.0 { bound } else { 1.0 };

        // Ghost positions: where each node is *at that point of the
        // slice* (joins and moves update it; the base network answers
        // for everyone else).
        let ghost = &mut scratch.ghost;
        ghost.clear();
        let pos_of = |ghost: &HashMap<NodeId, Point>, net: &Network, id: NodeId| -> Point {
            ghost.get(&id).copied().unwrap_or_else(|| {
                net.config(id)
                    .unwrap_or_else(|| panic!("batch plan: event references missing node {id}"))
                    .pos
            })
        };

        let mut next_join = net.peek_next_id().0;
        let mut join_ids = mem::take(&mut scratch.join_ids_spare);
        join_ids.clear();
        join_ids.resize(events.len(), None);
        let uf = &mut scratch.uf;
        uf.reset(events.len());
        let cell_owner = &mut scratch.cell_owner;
        cell_owner.clear();
        let anchors = &mut scratch.anchors;

        for (i, e) in events.iter().enumerate() {
            anchors.clear();
            // Claim radius: the full read/write reach (see module
            // docs) — 3B for one-hop-writing events, 4B for range
            // changes (two-hop writes under CP).
            let claim = match e {
                Event::Join { cfg } => {
                    let id = NodeId(next_join);
                    next_join += 1;
                    join_ids[i] = Some(id);
                    ghost.insert(id, cfg.pos);
                    anchors.push(cfg.pos);
                    3.0 * bound
                }
                Event::Leave { node } => {
                    let p = pos_of(ghost, net, *node);
                    ghost.remove(node);
                    anchors.push(p);
                    3.0 * bound
                }
                Event::Move { node, to } => {
                    let from = pos_of(ghost, net, *node);
                    ghost.insert(*node, *to);
                    anchors.push(from);
                    anchors.push(*to);
                    3.0 * bound
                }
                Event::SetRange { node, .. } => {
                    anchors.push(pos_of(ghost, net, *node));
                    4.0 * bound
                }
            };

            for a in anchors.iter() {
                for cx in cell_cover(a.x, claim, cell) {
                    for cy in cell_cover(a.y, claim, cell) {
                        match cell_owner.entry((cx, cy)) {
                            std::collections::hash_map::Entry::Occupied(o) => {
                                uf.union(i, *o.get());
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(i);
                            }
                        }
                    }
                }
            }
        }

        // Group events by root, shards ordered by first event. Shard
        // vectors come back from the recycle pools (cleared, capacity
        // kept) before any fresh allocation.
        let shard_of_root = &mut scratch.shard_of_root;
        shard_of_root.clear();
        let mut shards = mem::take(&mut scratch.shards_spare);
        let mut live = 0usize;
        for i in 0..events.len() {
            let root = uf.find(i);
            let s = *shard_of_root.entry(root).or_insert_with(|| {
                if live == shards.len() {
                    shards.push(scratch.inner_pool.pop().unwrap_or_default());
                }
                live += 1;
                live - 1
            });
            shards[s].push(i);
        }
        scratch.inner_pool.extend(shards.drain(live..).map(|mut v| {
            v.clear();
            v
        }));
        let mut cell_shard = mem::take(&mut scratch.cell_shard_spare);
        cell_shard.clear();
        cell_shard.extend(
            cell_owner
                .drain()
                .map(|(c, owner)| (c, shard_of_root[&uf.find(owner)])),
        );

        BatchPlan {
            shards,
            join_ids,
            cell,
            cell_shard,
        }
    }

    /// Returns this plan's containers to `scratch` (cleared, capacity
    /// kept) so the next [`BatchPlan::new_with`] call allocates
    /// nothing.
    pub fn recycle(self, scratch: &mut BatchScratch) {
        let BatchPlan {
            mut shards,
            mut join_ids,
            cell: _,
            mut cell_shard,
        } = self;
        for v in &mut shards {
            v.clear();
        }
        scratch.shards_spare = shards;
        join_ids.clear();
        scratch.join_ids_spare = join_ids;
        cell_shard.clear();
        scratch.cell_shard_spare = cell_shard;
    }

    /// The shards, ordered by first event; each shard lists event
    /// indices in ascending (original) order.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// The id pre-assigned to the join at `event_index` (`None` for
    /// non-join events). Matches what sequential execution would
    /// allocate.
    pub fn join_id(&self, event_index: usize) -> Option<NodeId> {
        self.join_ids[event_index]
    }

    /// Number of shards (the attainable parallel width).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The size of the largest shard (the critical path of
    /// shard-parallel execution, in events).
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The shard whose claimed region contains `p`, if any. Everything
    /// a shard's events can read or write lies inside its claimed
    /// cells, so a node at an unclaimed position is untouched by (and
    /// invisible to) the whole batch.
    pub fn shard_of_point(&self, p: &Point) -> Option<usize> {
        self.cell_shard
            .get(&(cell_coord(p.x, self.cell), cell_coord(p.y, self.cell)))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::apply_topology;
    use crate::NodeConfig;

    fn join_at(x: f64, y: f64, r: f64) -> Event {
        Event::Join {
            cfg: NodeConfig::new(Point::new(x, y), r),
        }
    }

    #[test]
    fn far_apart_events_get_their_own_shards() {
        let net = Network::new(5.0);
        // Two joins 1000 apart with range 5: neighborhoods cannot
        // touch, so they shard independently.
        let events = vec![join_at(0.0, 0.0, 5.0), join_at(1000.0, 0.0, 5.0)];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.shard_count(), 2);
        assert_eq!(plan.shards(), &[vec![0], vec![1]]);
        assert_eq!(plan.max_shard_len(), 1);
    }

    #[test]
    fn nearby_events_share_a_shard_in_order() {
        let net = Network::new(5.0);
        let events = vec![
            join_at(0.0, 0.0, 5.0),
            join_at(1000.0, 0.0, 5.0),
            join_at(3.0, 0.0, 5.0),
        ];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.shard_count(), 2);
        // Events 0 and 2 interact and stay ordered within one shard.
        assert_eq!(plan.shards()[0], vec![0, 2]);
        assert_eq!(plan.shards()[1], vec![1]);
    }

    #[test]
    fn overlap_chains_merge_transitively() {
        let net = Network::new(5.0);
        // a—b overlap, b—c overlap, a—c do not directly: still one
        // shard (the relation is closed transitively).
        let events = vec![
            join_at(0.0, 0.0, 5.0),
            join_at(28.0, 0.0, 5.0),
            join_at(56.0, 0.0, 5.0),
        ];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.shards()[0], vec![0, 1, 2]);
    }

    #[test]
    fn join_ids_match_sequential_allocation() {
        let mut net = Network::new(5.0);
        net.join(NodeConfig::new(Point::new(0.0, 0.0), 2.0));
        let events = vec![
            join_at(100.0, 0.0, 2.0),
            Event::Leave { node: NodeId(0) },
            join_at(200.0, 0.0, 2.0),
        ];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.join_id(0), Some(NodeId(1)));
        assert_eq!(plan.join_id(1), None);
        assert_eq!(plan.join_id(2), Some(NodeId(2)));
        // Sequential application allocates the same ids.
        let mut seq = net.clone();
        for e in &events {
            apply_topology(&mut seq, e);
        }
        assert!(seq.contains(NodeId(1)) && seq.contains(NodeId(2)));
    }

    #[test]
    fn moves_claim_both_endpoints() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let events = vec![
            Event::Move {
                node: a,
                to: Point::new(500.0, 0.0),
            },
            // A join at the move's *destination* must land in the
            // mover's shard even though the mover started far away.
            join_at(503.0, 0.0, 5.0),
            join_at(1500.0, 0.0, 5.0),
        ];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.shard_count(), 2);
        assert_eq!(plan.shards()[0], vec![0, 1]);
        assert_eq!(plan.shards()[1], vec![2]);
    }

    #[test]
    fn ghost_positions_track_earlier_moves() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let events = vec![
            Event::Move {
                node: a,
                to: Point::new(500.0, 0.0),
            },
            // This leave anchors at the *new* position — same shard as
            // the move via the destination cells.
            Event::Leave { node: a },
            join_at(1500.0, 0.0, 5.0),
        ];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.shard_count(), 2);
        assert_eq!(plan.shards()[0], vec![0, 1]);
    }

    #[test]
    fn shard_of_point_covers_claims_only() {
        let net = Network::new(5.0);
        let events = vec![join_at(0.0, 0.0, 5.0), join_at(1000.0, 0.0, 5.0)];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.shard_of_point(&Point::new(0.0, 0.0)), Some(0));
        assert_eq!(plan.shard_of_point(&Point::new(1000.0, 0.0)), Some(1));
        // Halfway between the two claims, nobody owns the space.
        assert_eq!(plan.shard_of_point(&Point::new(500.0, 0.0)), None);
    }

    #[test]
    fn zero_range_events_only_conflict_on_shared_cells() {
        let net = Network::new(5.0);
        let events = vec![join_at(0.0, 0.0, 0.0), join_at(10.0, 0.0, 0.0)];
        let plan = BatchPlan::new(&net, &events);
        assert_eq!(plan.shard_count(), 2);
    }
}
