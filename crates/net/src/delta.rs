//! Explicit topology deltas — the record of exactly what one
//! reconfiguration event changed.
//!
//! The paper's whole point is that reconfiguration work is *local*:
//! a join/leave/move/power-change only perturbs the initiating node's
//! neighborhood, and the Minim strategies recode the provably minimal
//! set of nodes there. The substrate must not undercut that locality
//! by forgetting what changed: every mutating [`Network`](crate::Network)
//! operation returns a [`TopologyDelta`] carrying
//!
//! * the exact sets of **added** and **removed** digraph edges, and
//! * the initiating node's **resulting neighbor lists**,
//!
//! so every layer above — conflict validation (`minim-graph`'s
//! `conflict::validate_delta`), the recoding strategies (`minim-core`),
//! the experiment runner (`minim-sim`), and the distributed protocols
//! (`minim-proto`) — can do `O(affected neighborhood)` work per event
//! instead of re-deriving the neighborhood from the full graph or
//! re-checking CA1/CA2 over every edge.
//!
//! Deltas are *facts about a transition*, not views into the network:
//! they own their id lists and stay meaningful after further mutations
//! (which is what lets the simulator queue them, the property tests
//! replay them, and the distributed layer serialize them).

use crate::JoinPartitions;
use minim_graph::NodeId;

/// Which reconfiguration produced a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// A node was inserted (`Network::insert_node` / `join`).
    Insert,
    /// A node was removed (`Network::remove_node`).
    Remove,
    /// A node changed position (`Network::move_node`).
    Move,
    /// A node changed transmission range (`Network::set_range`).
    SetRange,
    /// A node's links were recomputed for an environmental change
    /// (currently: a new obstacle severing lines of sight).
    Rewire,
}

/// The exact topological effect of one mutating operation.
///
/// All edge pairs are directed `(transmitter, receiver)` and sorted
/// lexicographically; the neighbor lists are sorted ascending. The
/// initiating node is an endpoint of every added/removed edge — that
/// is a structural invariant of single-node reconfigurations (checked
/// by `debug_assert`s at construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyDelta {
    kind: Option<DeltaKind>,
    node: NodeId,
    /// Directed edges that now exist but did not before the operation.
    pub added: Vec<(NodeId, NodeId)>,
    /// Directed edges that existed before the operation but no longer do.
    pub removed: Vec<(NodeId, NodeId)>,
    /// The initiating node's out-neighbors *after* the operation
    /// (empty for [`DeltaKind::Remove`]).
    pub out_after: Vec<NodeId>,
    /// The initiating node's in-neighbors *after* the operation
    /// (empty for [`DeltaKind::Remove`]).
    pub in_after: Vec<NodeId>,
}

impl Default for TopologyDelta {
    /// An empty delta: no operation recorded, no edges changed.
    fn default() -> Self {
        TopologyDelta {
            kind: None,
            node: NodeId(0),
            added: Vec::new(),
            removed: Vec::new(),
            out_after: Vec::new(),
            in_after: Vec::new(),
        }
    }
}

impl TopologyDelta {
    /// Assembles a delta, normalizing edge order.
    pub(crate) fn new(
        kind: DeltaKind,
        node: NodeId,
        mut added: Vec<(NodeId, NodeId)>,
        mut removed: Vec<(NodeId, NodeId)>,
        out_after: Vec<NodeId>,
        in_after: Vec<NodeId>,
    ) -> Self {
        added.sort_unstable();
        removed.sort_unstable();
        debug_assert!(
            added
                .iter()
                .chain(&removed)
                .all(|&(u, v)| u == node || v == node),
            "every changed edge must touch the initiating node {node}"
        );
        debug_assert!(out_after.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(in_after.windows(2).all(|w| w[0] < w[1]));
        TopologyDelta {
            kind: Some(kind),
            node,
            added,
            removed,
            out_after,
            in_after,
        }
    }

    /// What kind of reconfiguration produced this delta.
    ///
    /// # Panics
    /// Panics on a default-constructed (empty) delta, which represents
    /// "no operation recorded".
    pub fn kind(&self) -> DeltaKind {
        self.kind.expect("empty TopologyDelta has no kind")
    }

    /// The node whose reconfiguration produced this delta.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the operation changed no edges at all.
    pub fn is_edge_noop(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of edge insertions plus removals — the `Δ` in the
    /// per-event `O(Δ)` cost accounting.
    pub fn edge_churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Every node incident to a changed edge, plus the initiating node
    /// itself: everyone whose link cache an event invalidates. Sorted
    /// ascending, deduplicated.
    ///
    /// This is the *cache-invalidation* set (who must refresh their
    /// local 1/2-hop state in a distributed realization), not the
    /// validation seed set — `minim_graph::conflict::validate_delta`
    /// needs only `{initiating node} ∪ recoded nodes`
    /// (`minim_core::validation_seeds`), a subset of this.
    pub fn touched(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + 2 * self.edge_churn());
        v.push(self.node);
        for &(a, b) in self.added.iter().chain(&self.removed) {
            v.push(a);
            v.push(b);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The Fig 2 partition of the initiating node's *resulting*
    /// neighborhood — computed purely from the delta, without touching
    /// the graph. Meaningful for insert/move/set-range deltas; for a
    /// [`DeltaKind::Remove`] delta the partition is empty.
    pub fn partitions(&self) -> JoinPartitions {
        JoinPartitions::from_sorted_neighbors(&self.in_after, &self.out_after)
    }

    /// The recode set of this event at the initiating node:
    /// `1n ∪ 2n ∪ {n}`, sorted — the exact node set `RecodeOnJoin` /
    /// `RecodeOnMove` re-plan (Thm 4.1.8's minimal set). Derived from
    /// the delta alone.
    pub fn recode_set(&self) -> Vec<NodeId> {
        let mut v = self.partitions().in_union();
        match v.binary_search(&self.node) {
            Ok(_) => {}
            Err(i) => v.insert(i, self.node),
        }
        v
    }

    /// The receivers the node *newly* transmits into: `w` for each
    /// added edge `node → w`. These are exactly the receivers where
    /// fresh CA2 constraints (and the CA1 constraint with `w` itself)
    /// can appear — the only places a power *increase* can create
    /// conflicts (§4.2).
    pub fn new_receivers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.added
            .iter()
            .filter(move |&&(u, _)| u == self.node)
            .map(|&(_, v)| v)
    }

    /// The transmitters that newly reach the node: `u` for each added
    /// edge `u → node`.
    pub fn new_transmitters(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.added
            .iter()
            .filter(move |&&(_, v)| v == self.node)
            .map(|&(u, _)| u)
    }

    /// The node's out-neighbors *before* the operation, reconstructed
    /// from the after-lists and the edge diff (sorted).
    pub fn out_before(&self) -> Vec<NodeId> {
        reconstruct_before(
            &self.out_after,
            self.added
                .iter()
                .filter(|&&(u, _)| u == self.node)
                .map(|&(_, v)| v),
            self.removed
                .iter()
                .filter(|&&(u, _)| u == self.node)
                .map(|&(_, v)| v),
        )
    }

    /// The node's in-neighbors *before* the operation (sorted).
    pub fn in_before(&self) -> Vec<NodeId> {
        reconstruct_before(
            &self.in_after,
            self.added
                .iter()
                .filter(|&&(_, v)| v == self.node)
                .map(|&(u, _)| u),
            self.removed
                .iter()
                .filter(|&&(_, v)| v == self.node)
                .map(|&(u, _)| u),
        )
    }

    /// The node's undirected neighborhood *after* the operation:
    /// `out_after ∪ in_after`, sorted, deduplicated — who a protocol
    /// round-trip reaches post-event.
    pub fn undirected_after(&self) -> Vec<NodeId> {
        merge_sorted_dedup(&self.out_after, &self.in_after)
    }

    /// The node's undirected neighborhood *before* the operation —
    /// who a departure announcement must reach.
    pub fn undirected_before(&self) -> Vec<NodeId> {
        merge_sorted_dedup(&self.out_before(), &self.in_before())
    }

    /// Decomposes the delta into its four owned buffers
    /// `(added, removed, out_after, in_after)`. This is the capacity-
    /// recycling hook behind [`crate::Network::recycle_delta`]: an
    /// event loop that is done with a delta hands the buffers back so
    /// the next event's delta is built without heap allocation.
    pub fn into_buffers(self) -> DeltaBuffers {
        (self.added, self.removed, self.out_after, self.in_after)
    }
}

/// The four owned buffers of a [`TopologyDelta`], in field order:
/// `(added, removed, out_after, in_after)`.
pub type DeltaBuffers = (
    Vec<(NodeId, NodeId)>,
    Vec<(NodeId, NodeId)>,
    Vec<NodeId>,
    Vec<NodeId>,
);

/// `after` minus `added_ids` plus `removed_ids`, sorted. (`added_ids`
/// ⊆ `after`; `removed_ids` is disjoint from `after`.)
fn reconstruct_before(
    after: &[NodeId],
    added_ids: impl Iterator<Item = NodeId>,
    removed_ids: impl Iterator<Item = NodeId>,
) -> Vec<NodeId> {
    let mut v = after.to_vec();
    for id in added_ids {
        if let Ok(i) = v.binary_search(&id) {
            v.remove(i);
        }
    }
    for id in removed_ids {
        if let Err(i) = v.binary_search(&id) {
            v.insert(i, id);
        }
    }
    v
}

/// Union of two sorted lists, deduplicated.
fn merge_sorted_dedup(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                v.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                v.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                v.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    v.extend_from_slice(&a[i..]);
    v.extend_from_slice(&b[j..]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn delta(
        node: u32,
        added: &[(u32, u32)],
        removed: &[(u32, u32)],
        out: &[u32],
        inn: &[u32],
    ) -> TopologyDelta {
        TopologyDelta::new(
            DeltaKind::Move,
            n(node),
            added.iter().map(|&(a, b)| (n(a), n(b))).collect(),
            removed.iter().map(|&(a, b)| (n(a), n(b))).collect(),
            out.iter().copied().map(n).collect(),
            inn.iter().copied().map(n).collect(),
        )
    }

    #[test]
    fn touched_covers_all_endpoints_once() {
        let d = delta(5, &[(5, 1), (2, 5)], &[(5, 3)], &[1], &[2]);
        assert_eq!(d.touched(), vec![n(1), n(2), n(3), n(5)]);
        assert_eq!(d.edge_churn(), 3);
        assert!(!d.is_edge_noop());
        assert_eq!(d.node(), n(5));
        assert_eq!(d.kind(), DeltaKind::Move);
    }

    #[test]
    fn partitions_and_recode_set_from_neighbor_lists() {
        // in-only: 2; both: 4; out-only: 7.
        let d = delta(5, &[], &[], &[4, 7], &[2, 4]);
        let p = d.partitions();
        assert_eq!(p.one, vec![n(2)]);
        assert_eq!(p.two, vec![n(4)]);
        assert_eq!(p.three, vec![n(7)]);
        assert_eq!(d.recode_set(), vec![n(2), n(4), n(5)]);
    }

    #[test]
    fn new_receivers_and_transmitters_split_added_edges() {
        let d = delta(5, &[(5, 1), (2, 5), (5, 9)], &[], &[1, 9], &[2]);
        assert_eq!(d.new_receivers().collect::<Vec<_>>(), vec![n(1), n(9)]);
        assert_eq!(d.new_transmitters().collect::<Vec<_>>(), vec![n(2)]);
    }

    #[test]
    fn before_lists_reconstruct_the_old_neighborhood() {
        // Node 5 moved: lost 1 (both directions), gained 9 (out only),
        // kept 4 (both directions).
        let d = delta(5, &[(5, 9)], &[(5, 1), (1, 5)], &[4, 9], &[4]);
        assert_eq!(d.out_before(), vec![n(1), n(4)]);
        assert_eq!(d.in_before(), vec![n(1), n(4)]);
        assert_eq!(d.undirected_after(), vec![n(4), n(9)]);
        assert_eq!(d.undirected_before(), vec![n(1), n(4)]);
    }

    #[test]
    fn empty_delta_reports_noop() {
        let d = TopologyDelta::default();
        assert!(d.is_edge_noop());
        assert_eq!(d.edge_churn(), 0);
        assert_eq!(d.touched(), vec![NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "no kind")]
    fn empty_delta_kind_panics() {
        let _ = TopologyDelta::default().kind();
    }
}
