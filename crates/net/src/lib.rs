//! The power-controlled ad-hoc network substrate.
//!
//! §2 of the paper: a network is a set of nodes, each with a position
//! in the plane and a (variable) maximum transmission power range; the
//! induced digraph has an edge `v_i → v_j` iff `d_ij <= r_i`. Nodes
//! may **join**, **leave**, **move**, and **increase/decrease power**;
//! each such reconfiguration updates the induced digraph, and it is the
//! recoding strategy's job (`minim-core`) to restore CA1/CA2 on the new
//! graph.
//!
//! [`Network`] owns:
//!
//! * the node configurations ([`NodeConfig`]: position + range),
//! * the induced [`DiGraph`], maintained incrementally through a
//!   [`SpatialGrid`] so topology updates cost `O(affected neighborhood)`
//!   rather than `O(n)`,
//! * the current code [`Assignment`].
//!
//! Every mutating operation ([`Network::insert_node`],
//! [`Network::remove_node`], [`Network::move_node`],
//! [`Network::set_range`], [`Network::add_obstacle`]) returns a
//! [`TopologyDelta`] — the exact added/removed digraph edges and the
//! initiating node's resulting neighborhood — so the layers above
//! (validation, recoding strategies, the simulator, the distributed
//! protocols) do `O(affected neighborhood)` work per event instead of
//! re-deriving state from the full graph. See the [`delta`] module
//! docs for the contract.
//!
//! [`event::Event`] reifies the four reconfiguration types;
//! [`workload`] generates the randomized event sequences of §5 plus
//! the scenario lab's richer regimes (clustered placement,
//! heterogeneous ranges, interleaved churn).

#![deny(missing_docs)]

pub mod delta;
pub mod event;
pub mod mobility;
pub mod stats;
pub mod trace;
pub mod workload;

pub use delta::{DeltaKind, TopologyDelta};

use minim_geom::segment::line_of_sight_blocked;
use minim_geom::{Point, Rect, Segment, SpatialGrid};
use minim_graph::conflict;
use minim_graph::{Assignment, Color, DiGraph, NodeId};

pub mod batch;
pub use batch::BatchPlan;

/// A node's radio configuration: where it is and how far it transmits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Position in the plane.
    pub pos: Point,
    /// Maximum transmission power range (`r_i` in the paper).
    pub range: f64,
}

impl NodeConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `range` is negative or not finite.
    pub fn new(pos: Point, range: f64) -> Self {
        assert!(
            range.is_finite() && range >= 0.0,
            "range must be finite and non-negative, got {range}"
        );
        NodeConfig { pos, range }
    }
}

/// The `1n / 2n / 3n` partition induced on the existing nodes by node
/// `n` (Fig 2 of the paper):
///
/// * `one` — nodes with an edge **into** `n` only (they can reach `n`,
///   `n` cannot reach them);
/// * `two` — nodes with edges in **both** directions;
/// * `three` — nodes `n` reaches but that cannot reach `n`;
/// * set `4n` (no edges either way) is implicit — everyone else.
///
/// The recode set of a join/move is `one ∪ two ∪ {n}`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinPartitions {
    /// In-only neighbors (`1n`), sorted.
    pub one: Vec<NodeId>,
    /// Bidirectional neighbors (`2n`), sorted.
    pub two: Vec<NodeId>,
    /// Out-only neighbors (`3n`), sorted.
    pub three: Vec<NodeId>,
}

impl JoinPartitions {
    /// `1n ∪ 2n` — the existing nodes that must all end up with
    /// pairwise-distinct colors (they all transmit into `n`).
    pub fn in_union(&self) -> Vec<NodeId> {
        let mut v = self.one.clone();
        v.extend_from_slice(&self.two);
        v.sort_unstable();
        v
    }

    /// Classifies a node's neighborhood from its sorted in- and
    /// out-neighbor lists — one merge pass, no graph access. This is
    /// how both [`Network::partitions`] and
    /// [`TopologyDelta::partitions`] compute the Fig 2 partition.
    pub fn from_sorted_neighbors(inn: &[NodeId], out: &[NodeId]) -> JoinPartitions {
        debug_assert!(inn.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
        let mut p = JoinPartitions::default();
        let (mut i, mut j) = (0, 0);
        while i < inn.len() && j < out.len() {
            match inn[i].cmp(&out[j]) {
                std::cmp::Ordering::Less => {
                    p.one.push(inn[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    p.three.push(out[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    p.two.push(inn[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        p.one.extend_from_slice(&inn[i..]);
        p.three.extend_from_slice(&out[j..]);
        p
    }
}

/// A power-controlled ad-hoc network with its induced digraph and the
/// current code assignment.
///
/// Hot-path state is stored in dense slabs indexed by [`NodeId`]
/// (node configurations here, adjacency in [`DiGraph`], colors in
/// [`Assignment`], positions in [`SpatialGrid`]) — ids are allocated
/// densely from 0, so every per-node lookup is direct indexing.
#[derive(Debug, Clone)]
pub struct Network {
    graph: DiGraph,
    /// Dense slab aligned with the digraph's slots:
    /// `configs[id.index()]` is the node's radio configuration.
    configs: Vec<Option<NodeConfig>>,
    grid: SpatialGrid,
    assignment: Assignment,
    next_id: u32,
    /// Upper bound on every present node's range; used as the query
    /// radius when looking for *in*-neighbors. Monotone (removals do
    /// not shrink it) — conservative but correct.
    max_range_bound: f64,
    /// Opaque walls for the §2 non-free-space generalization: a link
    /// exists only when in range **and** unobstructed.
    obstacles: Vec<Segment>,
}

impl Network {
    /// Creates an empty network. `cell_size_hint` sizes the spatial
    /// index; a good value is the typical transmission range (the
    /// paper's experiments use ~25).
    pub fn new(cell_size_hint: f64) -> Self {
        Network {
            graph: DiGraph::new(),
            configs: Vec::new(),
            grid: SpatialGrid::new(cell_size_hint),
            assignment: Assignment::new(),
            next_id: 0,
            max_range_bound: 0.0,
            obstacles: Vec::new(),
        }
    }

    /// Adds an opaque wall (§2's non-free-space generalization) and
    /// rewires every node's links. Obstacles only *remove* edges, i.e.
    /// only remove constraints, so a valid assignment stays valid.
    ///
    /// Returns one [`TopologyDelta`] per node whose link set actually
    /// changed (each edge appears in exactly one delta: the first
    /// rewire that severed it).
    pub fn add_obstacle(&mut self, wall: Segment) -> Vec<TopologyDelta> {
        self.obstacles.push(wall);
        // Hold the ids across the rewires below (which mutate the
        // graph), so the allocation is necessary here.
        let ids: Vec<NodeId> = self.iter_nodes().collect();
        let mut deltas = Vec::new();
        for id in ids {
            let delta = self.rewire(id, DeltaKind::Rewire);
            if !delta.is_edge_noop() {
                deltas.push(delta);
            }
        }
        deltas
    }

    /// The installed obstacles.
    pub fn obstacles(&self) -> &[Segment] {
        &self.obstacles
    }

    /// Whether the sight line between two points crosses a wall.
    pub fn line_blocked(&self, a: &Point, b: &Point) -> bool {
        line_of_sight_blocked(&self.obstacles, a, b)
    }

    /// Allocates a fresh node id (strictly increasing; also the CP
    /// baseline's node identity).
    pub fn next_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// The id the next [`Network::next_id`] call would return, without
    /// allocating it. Batch planning pre-assigns join ids with this so
    /// out-of-order (wave) application allocates the same ids as
    /// sequential execution.
    pub fn peek_next_id(&self) -> NodeId {
        NodeId(self.next_id)
    }

    /// The monotone upper bound on every present node's transmission
    /// range (it never shrinks on removals — conservative but correct).
    /// Used as the in-neighbor query radius and by batch planning to
    /// size conservative event neighborhoods.
    pub fn range_bound(&self) -> f64 {
        self.max_range_bound
    }

    /// The spatial-index cell size this network was built with. Shard
    /// execution sizes its per-shard subnetworks with the same hint.
    pub fn cell_size_hint(&self) -> f64 {
        self.grid.cell_size()
    }

    /// The induced digraph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The current code assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Mutable access to the assignment (recoding strategies write
    /// through this).
    pub fn assignment_mut(&mut self) -> &mut Assignment {
        &mut self.assignment
    }

    /// The configuration of `id`, if present.
    #[inline]
    pub fn config(&self, id: NodeId) -> Option<NodeConfig> {
        self.configs.get(id.index()).copied().flatten()
    }

    /// Mutable slot for `id`'s configuration, growing the slab.
    fn config_slot(&mut self, id: NodeId) -> &mut Option<NodeConfig> {
        let i = id.index();
        if i >= self.configs.len() {
            self.configs.resize(i + 1, None);
        }
        &mut self.configs[i]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether `id` is in the network.
    pub fn contains(&self, id: NodeId) -> bool {
        self.graph.contains(id)
    }

    /// Present node ids, ascending, as a freshly allocated `Vec`.
    ///
    /// Prefer [`Network::iter_nodes`] in hot loops — it borrows instead
    /// of allocating. This form remains for callers that need to hold
    /// the ids across mutations.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.graph.nodes().collect()
    }

    /// Borrowing iterator over present node ids, ascending. Allocation
    /// free — the hot-loop replacement for [`Network::node_ids`].
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }

    /// Validates CA1/CA2 on the current graph and assignment.
    pub fn validate(&self) -> Result<(), conflict::Violation> {
        conflict::validate(&self.graph, &self.assignment)
    }

    /// Inserts node `id` with configuration `cfg` and wires up the
    /// induced edges in both directions. The node starts **uncolored**;
    /// the recoding strategy must assign it a code.
    ///
    /// Returns the [`TopologyDelta`] of the insertion: every new edge
    /// (all incident to `id`) plus `id`'s resulting neighbor lists —
    /// from which the recode set `1n ∪ 2n ∪ {n}` follows without
    /// another graph traversal.
    ///
    /// # Panics
    /// Panics if `id` already exists.
    pub fn insert_node(&mut self, id: NodeId, cfg: NodeConfig) -> TopologyDelta {
        assert!(
            !self.graph.contains(id),
            "insert_node: {id} already present"
        );
        self.graph.insert_node(id);
        *self.config_slot(id) = Some(cfg);
        self.next_id = self.next_id.max(id.0 + 1);
        self.max_range_bound = self.max_range_bound.max(cfg.range);
        self.grid.insert(id.0, cfg.pos);
        self.rewire(id, DeltaKind::Insert)
    }

    /// Convenience: insert at a fresh id. Returns the id.
    pub fn join(&mut self, cfg: NodeConfig) -> NodeId {
        self.join_delta(cfg).0
    }

    /// Inserts at a fresh id, returning both the id and the insertion's
    /// [`TopologyDelta`].
    pub fn join_delta(&mut self, cfg: NodeConfig) -> (NodeId, TopologyDelta) {
        let id = self.next_id();
        let delta = self.insert_node(id, cfg);
        (id, delta)
    }

    /// Removes node `id`, its edges, and its color.
    ///
    /// Returns the [`TopologyDelta`] listing every severed edge. A
    /// removal only *removes* constraints (§4.3: `RecodeDecreasePow-
    /// OrLeave` is passive), so consumers need the delta for cache
    /// invalidation and accounting, never for recoding.
    ///
    /// # Panics
    /// Panics if `id` is absent.
    pub fn remove_node(&mut self, id: NodeId) -> TopologyDelta {
        assert!(self.graph.contains(id), "remove_node: missing {id}");
        let mut removed: Vec<(NodeId, NodeId)> = self
            .graph
            .out_neighbors(id)
            .iter()
            .map(|&v| (id, v))
            .collect();
        removed.extend(self.graph.in_neighbors(id).iter().map(|&u| (u, id)));
        self.graph.remove_node(id);
        self.configs[id.index()] = None;
        self.grid.remove(id.0);
        self.assignment.unset(id);
        TopologyDelta::new(
            DeltaKind::Remove,
            id,
            Vec::new(),
            removed,
            Vec::new(),
            Vec::new(),
        )
    }

    /// Moves node `id` to `to` and recomputes its incident edges. The
    /// node keeps its (possibly now-conflicting) color; the strategy
    /// decides what to recode from the returned [`TopologyDelta`].
    ///
    /// # Panics
    /// Panics if `id` is absent.
    pub fn move_node(&mut self, id: NodeId, to: Point) -> TopologyDelta {
        let cfg = self
            .configs
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .expect("move_node: missing node");
        cfg.pos = to;
        self.grid.relocate(id.0, to);
        self.rewire(id, DeltaKind::Move)
    }

    /// Sets node `id`'s transmission range. Only *out*-edges of `id`
    /// change (who `id` can reach); in-edges depend on the other nodes'
    /// ranges and are untouched.
    ///
    /// The returned [`TopologyDelta`]'s added edges all leave `id` —
    /// exactly the new constraints a power increase creates (§4.2), so
    /// strategies recode from the delta without diffing conflict sets.
    ///
    /// # Panics
    /// Panics if `id` is absent or the range is invalid.
    pub fn set_range(&mut self, id: NodeId, range: f64) -> TopologyDelta {
        assert!(
            range.is_finite() && range >= 0.0,
            "range must be finite and non-negative, got {range}"
        );
        let cfg = self
            .configs
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .expect("set_range: missing node");
        cfg.range = range;
        self.max_range_bound = self.max_range_bound.max(range);
        let pos = cfg.pos;
        // Recompute out-edges from scratch.
        let old_out: Vec<NodeId> = self.graph.out_neighbors(id).to_vec();
        for &v in &old_out {
            self.graph.remove_edge(id, v);
        }
        let mut targets = Vec::new();
        self.grid.for_each_within(&pos, range, |other, opos| {
            if other != id.0 && !line_of_sight_blocked(&self.obstacles, &pos, &opos) {
                targets.push(NodeId(other));
            }
        });
        for &v in &targets {
            self.graph.add_edge(id, v);
        }
        targets.sort_unstable();
        let (added, removed) = diff_sorted_out(id, &old_out, &targets);
        let in_after = self.graph.in_neighbors(id).to_vec();
        TopologyDelta::new(DeltaKind::SetRange, id, added, removed, targets, in_after)
    }

    /// Recomputes **all** edges incident to `id` (both directions) from
    /// the geometry, returning the exact edge delta. Used on insert,
    /// move, and obstacle installation.
    fn rewire(&mut self, id: NodeId, kind: DeltaKind) -> TopologyDelta {
        let cfg = self.config(id).expect("rewire: missing node");
        let old_out: Vec<NodeId> = self.graph.out_neighbors(id).to_vec();
        let old_in: Vec<NodeId> = self.graph.in_neighbors(id).to_vec();
        self.graph.clear_node_edges(id);
        // Out-edges: nodes within our range and line of sight.
        let mut out = Vec::new();
        self.grid
            .for_each_within(&cfg.pos, cfg.range, |other, opos| {
                if other != id.0 && !line_of_sight_blocked(&self.obstacles, &cfg.pos, &opos) {
                    out.push(NodeId(other));
                }
            });
        for &v in &out {
            self.graph.add_edge(id, v);
        }
        // In-edges: nodes whose own range covers us. Query with the
        // global range bound, filter by each candidate's actual range
        // and line of sight.
        let mut inn = Vec::new();
        self.grid
            .for_each_within(&cfg.pos, self.max_range_bound, |other, opos| {
                if other == id.0 {
                    return;
                }
                let u = NodeId(other);
                let u_range = self.configs[u.index()].expect("indexed node").range;
                if opos.within(&cfg.pos, u_range)
                    && !line_of_sight_blocked(&self.obstacles, &opos, &cfg.pos)
                {
                    inn.push(u);
                }
            });
        for &u in &inn {
            self.graph.add_edge(u, id);
        }
        out.sort_unstable();
        inn.sort_unstable();
        let (mut added, mut removed) = diff_sorted_out(id, &old_out, &out);
        let (added_in, removed_in) = diff_sorted_in(id, &old_in, &inn);
        added.extend(added_in);
        removed.extend(removed_in);
        TopologyDelta::new(kind, id, added, removed, out, inn)
    }

    /// The Fig 2 partition of the existing nodes around `n`.
    ///
    /// Event handlers should prefer [`TopologyDelta::partitions`] —
    /// the delta already carries the neighborhood, so this graph read
    /// is redundant on the event path. This accessor remains for
    /// analysis of standing networks (bounds, traces, tests).
    ///
    /// # Panics
    /// Panics if `n` is absent.
    pub fn partitions(&self, n: NodeId) -> JoinPartitions {
        JoinPartitions::from_sorted_neighbors(
            self.graph.in_neighbors(n),
            self.graph.out_neighbors(n),
        )
    }

    /// The recode set of a join/move at `n`: `1n ∪ 2n ∪ {n}`, sorted.
    pub fn recode_set(&self, n: NodeId) -> Vec<NodeId> {
        let p = self.partitions(n);
        let mut v = p.in_union();
        match v.binary_search(&n) {
            Ok(_) => {}
            Err(i) => v.insert(i, n),
        }
        v
    }

    /// Whether the paper's *Minimal Connectivity* assumption holds for
    /// `n`: some node hears `n`, and `n` hears some node.
    pub fn minimally_connected(&self, n: NodeId) -> bool {
        self.graph.contains(n)
            && !self.graph.out_neighbors(n).is_empty()
            && !self.graph.in_neighbors(n).is_empty()
    }

    /// The maximum color index currently assigned (0 when uncolored).
    pub fn max_color_index(&self) -> u32 {
        self.assignment.max_color_index()
    }

    /// Convenience for tests: set a node's color.
    pub fn set_color(&mut self, n: NodeId, c: Color) {
        assert!(self.graph.contains(n), "set_color: missing {n}");
        self.assignment.set(n, c);
    }

    /// Rebuilds the full graph from scratch (O(n · neighborhood)) and
    /// asserts it matches the incrementally maintained one. Debug aid
    /// used by tests and failure injection.
    pub fn check_topology(&self) {
        for u in self.iter_nodes() {
            let cu = self.configs[u.index()].expect("present node");
            for v in self.iter_nodes() {
                if u == v {
                    continue;
                }
                let cv = self.configs[v.index()].expect("present node");
                let expect = cu.pos.within(&cv.pos, cu.range)
                    && !line_of_sight_blocked(&self.obstacles, &cu.pos, &cv.pos);
                assert_eq!(
                    self.graph.has_edge(u, v),
                    expect,
                    "topology drift on {u} → {v}"
                );
            }
        }
        self.graph.check_invariants();
    }

    /// Snapshot of the current assignment (for before/after diffs).
    pub fn snapshot_assignment(&self) -> Assignment {
        self.assignment.clone()
    }

    /// Access to the arena-independent spatial state, for rendering and
    /// debugging: `(id, position, range, color)` tuples sorted by id.
    pub fn describe(&self) -> Vec<(NodeId, Point, f64, Option<Color>)> {
        self.configs
            .iter()
            .enumerate()
            .filter_map(|(i, cfg)| {
                let id = NodeId(i as u32);
                cfg.map(|c| (id, c.pos, c.range, self.assignment.get(id)))
            })
            .collect()
    }
}

/// A list of directed edges, as a delta stores them.
type EdgeList = Vec<(NodeId, NodeId)>;

/// Diffs two sorted out-neighbor lists of `id` into added/removed
/// directed edge sets (`id → v`).
fn diff_sorted_out(id: NodeId, old: &[NodeId], new: &[NodeId]) -> (EdgeList, EdgeList) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    diff_sorted(old, new, |v| removed.push((id, v)), |v| added.push((id, v)));
    (added, removed)
}

/// Diffs two sorted in-neighbor lists of `id` into added/removed
/// directed edge sets (`u → id`).
fn diff_sorted_in(id: NodeId, old: &[NodeId], new: &[NodeId]) -> (EdgeList, EdgeList) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    diff_sorted(old, new, |u| removed.push((u, id)), |u| added.push((u, id)));
    (added, removed)
}

/// Single merge pass over two sorted id lists, calling `on_old_only`
/// for ids that disappeared and `on_new_only` for ids that appeared.
fn diff_sorted(
    old: &[NodeId],
    new: &[NodeId],
    mut on_old_only: impl FnMut(NodeId),
    mut on_new_only: impl FnMut(NodeId),
) {
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                on_old_only(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                on_new_only(new[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    for &v in &old[i..] {
        on_old_only(v);
    }
    for &v in &new[j..] {
        on_new_only(v);
    }
}

/// Builds a network from explicit `(position, range)` pairs with ids
/// `0..k`, leaving all nodes uncolored. Test/example helper.
pub fn network_from_configs(cell_hint: f64, configs: &[(Point, f64)]) -> Network {
    let mut net = Network::new(cell_hint);
    for &(pos, range) in configs {
        net.join(NodeConfig::new(pos, range));
    }
    net
}

/// The standard arena of the paper's experiments.
pub fn paper_arena() -> Rect {
    Rect::paper_arena()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn join_wires_edges_by_range_asymmetrically() {
        let mut net = Network::new(5.0);
        // a reaches b (range 10 ≥ dist 6); b does not reach a (range 4).
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        assert!(net.graph().has_edge(a, b));
        assert!(!net.graph().has_edge(b, a));
        net.check_topology();
    }

    #[test]
    fn boundary_distance_is_connected() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 1.0));
        assert!(net.graph().has_edge(a, b), "d == r is connected");
        assert!(!net.graph().has_edge(b, a));
    }

    #[test]
    fn insert_existing_node_panics() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.insert_node(a, NodeConfig::new(Point::new(1.0, 1.0), 2.0));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn remove_node_clears_everything() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(3.0, 0.0), 10.0));
        net.set_color(b, Color::new(2));
        net.remove_node(b);
        assert!(!net.contains(b));
        assert_eq!(net.node_count(), 1);
        assert!(net.graph().out_neighbors(a).is_empty());
        assert_eq!(net.assignment().get(b), None);
        net.check_topology();
    }

    #[test]
    fn move_node_rewires_both_directions() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 8.0));
        let b = net.join(NodeConfig::new(Point::new(20.0, 0.0), 8.0));
        assert_eq!(net.graph().edge_count(), 0);
        net.move_node(b, Point::new(5.0, 0.0));
        assert!(net.graph().has_edge(a, b));
        assert!(net.graph().has_edge(b, a));
        net.check_topology();
        net.move_node(b, Point::new(50.0, 50.0));
        assert_eq!(net.graph().edge_count(), 0);
        net.check_topology();
    }

    #[test]
    fn set_range_only_affects_out_edges() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        assert!(net.graph().has_edge(a, b));
        assert!(!net.graph().has_edge(b, a));
        net.set_range(b, 7.0);
        assert!(net.graph().has_edge(b, a), "b now reaches a");
        assert!(net.graph().has_edge(a, b), "a → b untouched");
        net.set_range(b, 1.0);
        assert!(!net.graph().has_edge(b, a));
        assert!(net.graph().has_edge(a, b));
        net.check_topology();
    }

    #[test]
    fn partitions_classify_neighbors() {
        let mut net = Network::new(5.0);
        // Geometry: n at origin with range 10.
        //   one: hears us? no wait — `one` = nodes that REACH n only.
        let nid = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        // in-only: u reaches n (range 20 ≥ 15) but n (10) can't reach u.
        let u = net.join(NodeConfig::new(Point::new(15.0, 0.0), 20.0));
        // bidirectional: close and strong.
        let v = net.join(NodeConfig::new(Point::new(5.0, 0.0), 9.0));
        // out-only: n reaches w (8 ≤ 10) but w's range 2 is too small.
        let w = net.join(NodeConfig::new(Point::new(0.0, 8.0), 2.0));
        // unrelated far node.
        let x = net.join(NodeConfig::new(Point::new(90.0, 90.0), 5.0));

        let p = net.partitions(nid);
        assert_eq!(p.one, vec![u]);
        assert_eq!(p.two, vec![v]);
        assert_eq!(p.three, vec![w]);
        assert_eq!(p.in_union(), vec![u, v]);
        assert_eq!(net.recode_set(nid), vec![nid, u, v]);
        assert!(!p.one.contains(&x));
    }

    #[test]
    fn minimal_connectivity_check() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        assert!(!net.minimally_connected(a), "isolated");
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 10.0));
        assert!(net.minimally_connected(a));
        assert!(net.minimally_connected(b));
    }

    #[test]
    fn next_id_is_monotone_and_respects_explicit_inserts() {
        let mut net = Network::new(5.0);
        let a = net.next_id();
        assert_eq!(a, n(0));
        net.insert_node(n(10), NodeConfig::new(Point::new(0.0, 0.0), 1.0));
        let b = net.next_id();
        assert_eq!(b, n(11), "allocator must skip past explicit ids");
    }

    #[test]
    fn validate_reflects_assignment() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 10.0));
        assert!(net.validate().is_err(), "uncolored nodes are invalid");
        net.set_color(a, Color::new(1));
        net.set_color(b, Color::new(1));
        assert!(net.validate().is_err(), "primary collision");
        net.set_color(b, Color::new(2));
        assert!(net.validate().is_ok());
    }

    #[test]
    fn describe_lists_nodes_in_id_order() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(1.0, 2.0), 3.0));
        let b = net.join(NodeConfig::new(Point::new(4.0, 5.0), 6.0));
        net.set_color(a, Color::new(9));
        let d = net.describe();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, a);
        assert_eq!(d[0].3, Some(Color::new(9)));
        assert_eq!(d[1].0, b);
        assert_eq!(d[1].3, None);
    }

    #[test]
    fn obstacles_block_links_and_only_remove_constraints() {
        use minim_geom::Segment;
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 12.0));
        let b = net.join(NodeConfig::new(Point::new(10.0, 0.0), 12.0));
        net.set_color(a, Color::new(1));
        net.set_color(b, Color::new(2));
        assert!(net.graph().has_edge(a, b));
        assert!(net.validate().is_ok());

        // A wall between them severs both directions; the assignment
        // stays valid (constraints only shrank) and nodes could now
        // even share a code.
        net.add_obstacle(Segment::new(Point::new(5.0, -20.0), Point::new(5.0, 20.0)));
        assert!(!net.graph().has_edge(a, b));
        assert!(!net.graph().has_edge(b, a));
        assert!(net.validate().is_ok());
        net.set_color(b, Color::new(1));
        assert!(net.validate().is_ok(), "wall permits code reuse");
        net.check_topology();

        // Joins behind the wall only see their own side.
        let c = net.join(NodeConfig::new(Point::new(2.0, 1.0), 12.0));
        assert!(net.graph().has_edge(c, a));
        assert!(!net.graph().has_edge(c, b), "wall blocks the new link too");
        net.check_topology();

        // Movement across the wall rewires correctly.
        net.move_node(c, Point::new(8.0, 1.0));
        assert!(!net.graph().has_edge(c, a));
        assert!(net.graph().has_edge(c, b));
        net.check_topology();
    }

    #[test]
    fn obstacle_blocks_set_range_links_too() {
        use minim_geom::Segment;
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 3.0));
        let b = net.join(NodeConfig::new(Point::new(10.0, 0.0), 3.0));
        net.add_obstacle(Segment::new(Point::new(5.0, -5.0), Point::new(5.0, 5.0)));
        net.set_range(a, 20.0);
        assert!(
            !net.graph().has_edge(a, b),
            "boost cannot punch through walls"
        );
        net.check_topology();
        let _ = b;
    }

    #[test]
    fn insert_delta_lists_every_new_edge_and_neighborhood() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(12.0, 0.0), 20.0));
        // c lands between them, within range of both: every incident
        // edge (c ↔ a at dist 6, c ↔ b at dist 6) wires both ways.
        let c = net.next_id();
        let d = net.insert_node(c, NodeConfig::new(Point::new(6.0, 0.0), 8.0));
        assert_eq!(d.kind(), DeltaKind::Insert);
        assert_eq!(d.node(), c);
        assert!(d.removed.is_empty(), "an insert only adds edges");
        // Every added edge exists and touches c.
        for &(u, v) in &d.added {
            assert!(net.graph().has_edge(u, v));
            assert!(u == c || v == c);
        }
        assert_eq!(
            d.added.len(),
            net.graph().out_degree(c) + net.graph().in_degree(c)
        );
        assert_eq!(d.out_after, net.graph().out_neighbors(c));
        assert_eq!(d.in_after, net.graph().in_neighbors(c));
        assert_eq!(d.partitions(), net.partitions(c));
        assert_eq!(d.recode_set(), net.recode_set(c));
        let _ = (a, b);
    }

    #[test]
    fn remove_delta_lists_every_severed_edge() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        let c = net.join(NodeConfig::new(Point::new(3.0, 0.0), 10.0));
        let before: Vec<_> = net.graph().edges().collect();
        let d = net.remove_node(c);
        assert_eq!(d.kind(), DeltaKind::Remove);
        assert!(d.added.is_empty());
        assert!(d.out_after.is_empty() && d.in_after.is_empty());
        let after: Vec<_> = net.graph().edges().collect();
        let mut expected: Vec<_> = before.into_iter().filter(|e| !after.contains(e)).collect();
        expected.sort_unstable();
        assert_eq!(d.removed, expected);
        assert!(d.touched().contains(&a) && d.touched().contains(&c));
        let _ = b;
    }

    #[test]
    fn move_delta_diffs_old_and_new_neighborhoods() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 8.0));
        let b = net.join(NodeConfig::new(Point::new(30.0, 0.0), 8.0));
        let c = net.join(NodeConfig::new(Point::new(5.0, 0.0), 8.0));
        // c currently links with a; moving near b swaps the neighborhood.
        let d = net.move_node(c, Point::new(27.0, 0.0));
        assert_eq!(d.kind(), DeltaKind::Move);
        assert_eq!(d.removed, vec![(a, c), (c, a)]);
        assert_eq!(d.added, vec![(b, c), (c, b)]);
        assert_eq!(d.touched(), vec![a, b, c]);
        assert_eq!(d.out_after, vec![b]);
        assert_eq!(d.in_after, vec![b]);
        // A move that changes nothing is an edge no-op.
        let d2 = net.move_node(c, Point::new(26.0, 0.0));
        assert!(d2.is_edge_noop());
        net.check_topology();
    }

    #[test]
    fn set_range_delta_only_touches_out_edges() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        let d = net.set_range(b, 7.0);
        assert_eq!(d.kind(), DeltaKind::SetRange);
        assert_eq!(d.added, vec![(b, a)]);
        assert!(d.removed.is_empty());
        assert_eq!(d.new_receivers().collect::<Vec<_>>(), vec![a]);
        assert_eq!(d.new_transmitters().count(), 0);
        let d2 = net.set_range(b, 1.0);
        assert_eq!(d2.removed, vec![(b, a)]);
        assert!(d2.added.is_empty());
        assert_eq!(d2.in_after, vec![a], "in-edges survive the range drop");
        net.check_topology();
    }

    #[test]
    fn obstacle_deltas_cover_each_severed_edge_once() {
        use minim_geom::Segment;
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 12.0));
        let b = net.join(NodeConfig::new(Point::new(10.0, 0.0), 12.0));
        let c = net.join(NodeConfig::new(Point::new(0.0, 5.0), 12.0));
        let deltas = net.add_obstacle(Segment::new(Point::new(5.0, -20.0), Point::new(5.0, 20.0)));
        let mut removed: Vec<_> = deltas.iter().flat_map(|d| d.removed.clone()).collect();
        removed.sort_unstable();
        // Both directions of a–b and c–b are gone; nothing is double
        // counted and nothing was added.
        assert_eq!(removed, vec![(a, b), (b, a), (b, c), (c, b)]);
        assert!(deltas.iter().all(|d| d.added.is_empty()));
        assert!(deltas.iter().all(|d| d.kind() == DeltaKind::Rewire));
        net.check_topology();
    }

    #[test]
    fn iter_nodes_matches_node_ids() {
        let mut net = Network::new(5.0);
        for i in 0..5 {
            net.join(NodeConfig::new(Point::new(i as f64 * 3.0, 0.0), 4.0));
        }
        assert_eq!(net.iter_nodes().collect::<Vec<_>>(), net.node_ids());
    }

    #[test]
    fn network_from_configs_builder() {
        let net = network_from_configs(
            5.0,
            &[
                (Point::new(0.0, 0.0), 6.0),
                (Point::new(5.0, 0.0), 6.0),
                (Point::new(10.0, 0.0), 6.0),
            ],
        );
        assert_eq!(net.node_count(), 3);
        // Chain topology 0 <-> 1 <-> 2 but not 0 <-> 2.
        assert!(net.graph().has_edge(n(0), n(1)));
        assert!(net.graph().has_edge(n(1), n(2)));
        assert!(!net.graph().has_edge(n(0), n(2)));
    }
}
