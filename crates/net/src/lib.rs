//! The power-controlled ad-hoc network substrate.
//!
//! §2 of the paper: a network is a set of nodes, each with a position
//! in the plane and a (variable) maximum transmission power range; the
//! induced digraph has an edge `v_i → v_j` iff `d_ij <= r_i`. Nodes
//! may **join**, **leave**, **move**, and **increase/decrease power**;
//! each such reconfiguration updates the induced digraph, and it is the
//! recoding strategy's job (`minim-core`) to restore CA1/CA2 on the new
//! graph.
//!
//! [`Network`] owns:
//!
//! * the node configurations ([`NodeConfig`]: position + range),
//! * the induced [`DiGraph`], maintained incrementally through a
//!   range-stratified [`StratifiedGrid`] so topology updates cost
//!   `O(affected neighborhood)` rather than `O(n)` — and, crucially,
//!   the *reverse-reach* part of that neighborhood ("who can hear the
//!   initiator?") is scanned per range tier instead of at the global
//!   maximum range,
//! * the current code [`Assignment`].
//!
//! Every mutating operation ([`Network::insert_node`],
//! [`Network::remove_node`], [`Network::move_node`],
//! [`Network::set_range`], [`Network::add_obstacle`]) returns a
//! [`TopologyDelta`] — the exact added/removed digraph edges and the
//! initiating node's resulting neighborhood — so the layers above
//! (validation, recoding strategies, the simulator, the distributed
//! protocols) do `O(affected neighborhood)` work per event instead of
//! re-deriving state from the full graph. See the [`delta`] module
//! docs for the contract.
//!
//! [`event::Event`] reifies the four reconfiguration types;
//! [`workload`] generates the randomized event sequences of §5 plus
//! the scenario lab's richer regimes (clustered placement,
//! heterogeneous ranges, interleaved churn).

#![deny(missing_docs)]

pub mod delta;
pub mod event;
pub mod mobility;
pub mod stats;
pub mod trace;
pub mod workload;

pub use delta::{DeltaKind, TopologyDelta};

use minim_geom::{Point, Rect, Segment, SegmentGrid, StratifiedGrid};
use minim_graph::conflict;
use minim_graph::{Assignment, Color, DiGraph, NodeId};

pub mod batch;
pub mod shardmap;
pub use batch::{BatchPlan, BatchScratch};
pub use shardmap::{Disposition, ShardMap, SliceRoute};

/// Structural digest of a [`Network`]: node count, id watermark, edge
/// count, max color index. Cheap (`O(1)`) to compute.
///
/// Two uses share this definition: the resident executor's reseed
/// check (detecting that someone mutated the network outside the
/// executor between runs) and `minim-serve`'s recovery verification
/// (a restored snapshot must fingerprint-match what was persisted).
/// It is deliberately *not* a full state hash — see
/// [`Network::state_digest`] for the strong form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkFingerprint {
    /// Present node count.
    pub nodes: usize,
    /// The id the next [`Network::next_id`] call would allocate.
    pub next_id: u32,
    /// Induced digraph edge count.
    pub edges: usize,
    /// Maximum color index currently assigned (0 when uncolored).
    pub max_color: u32,
}

/// A node's radio configuration: where it is and how far it transmits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Position in the plane.
    pub pos: Point,
    /// Maximum transmission power range (`r_i` in the paper).
    pub range: f64,
}

impl NodeConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `range` is negative or not finite.
    pub fn new(pos: Point, range: f64) -> Self {
        assert!(
            range.is_finite() && range >= 0.0,
            "range must be finite and non-negative, got {range}"
        );
        NodeConfig { pos, range }
    }
}

/// The `1n / 2n / 3n` partition induced on the existing nodes by node
/// `n` (Fig 2 of the paper):
///
/// * `one` — nodes with an edge **into** `n` only (they can reach `n`,
///   `n` cannot reach them);
/// * `two` — nodes with edges in **both** directions;
/// * `three` — nodes `n` reaches but that cannot reach `n`;
/// * set `4n` (no edges either way) is implicit — everyone else.
///
/// The recode set of a join/move is `one ∪ two ∪ {n}`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinPartitions {
    /// In-only neighbors (`1n`), sorted.
    pub one: Vec<NodeId>,
    /// Bidirectional neighbors (`2n`), sorted.
    pub two: Vec<NodeId>,
    /// Out-only neighbors (`3n`), sorted.
    pub three: Vec<NodeId>,
}

impl JoinPartitions {
    /// `1n ∪ 2n` — the existing nodes that must all end up with
    /// pairwise-distinct colors (they all transmit into `n`).
    pub fn in_union(&self) -> Vec<NodeId> {
        let mut v = self.one.clone();
        v.extend_from_slice(&self.two);
        v.sort_unstable();
        v
    }

    /// Classifies a node's neighborhood from its sorted in- and
    /// out-neighbor lists — one merge pass, no graph access. This is
    /// how both [`Network::partitions`] and
    /// [`TopologyDelta::partitions`] compute the Fig 2 partition.
    pub fn from_sorted_neighbors(inn: &[NodeId], out: &[NodeId]) -> JoinPartitions {
        debug_assert!(inn.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
        let mut p = JoinPartitions::default();
        let (mut i, mut j) = (0, 0);
        while i < inn.len() && j < out.len() {
            match inn[i].cmp(&out[j]) {
                std::cmp::Ordering::Less => {
                    p.one.push(inn[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    p.three.push(out[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    p.two.push(inn[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        p.one.extend_from_slice(&inn[i..]);
        p.three.extend_from_slice(&out[j..]);
        p
    }
}

/// A power-controlled ad-hoc network with its induced digraph and the
/// current code assignment.
///
/// Hot-path state is stored in dense slabs indexed by [`NodeId`]
/// (node configurations here, adjacency in [`DiGraph`], colors in
/// [`Assignment`], positions and ranges in [`StratifiedGrid`]) — ids
/// are allocated densely from 0, so every per-node lookup is direct
/// indexing.
#[derive(Debug, Clone)]
pub struct Network {
    graph: DiGraph,
    /// Dense slab aligned with the digraph's slots:
    /// `configs[id.index()]` is the node's radio configuration.
    configs: Vec<Option<NodeConfig>>,
    /// Range-stratified spatial index: positions *and* ranges, so
    /// reverse-reach queries scan each range tier at its own cap.
    grid: StratifiedGrid,
    assignment: Assignment,
    next_id: u32,
    /// Opaque walls for the §2 non-free-space generalization: a link
    /// exists only when in range **and** unobstructed. Indexed by a
    /// cell grid so sight-line tests probe only nearby walls.
    obstacles: SegmentGrid,
    /// Reusable buffers for the rewire path — steady-state event
    /// application performs zero heap allocations.
    scratch: RewireScratch,
}

/// Reusable workspace threaded through [`Network`]'s mutators: the
/// out/in candidate buffers of a rewire, plus pools of recycled delta
/// buffers ([`Network::recycle_delta`] returns them). Pool sizes are
/// capped so a burst of un-recycled deltas cannot pin memory.
#[derive(Debug, Clone, Default)]
struct RewireScratch {
    old_out: Vec<NodeId>,
    old_in: Vec<NodeId>,
    out: Vec<NodeId>,
    inn: Vec<NodeId>,
    id_pool: Vec<Vec<NodeId>>,
    edge_pool: Vec<EdgeList>,
}

/// Max recycled buffers kept per pool.
const SCRATCH_POOL_CAP: usize = 16;

impl RewireScratch {
    fn take_id_buf(&mut self) -> Vec<NodeId> {
        self.id_pool.pop().unwrap_or_default()
    }

    fn take_edge_buf(&mut self) -> EdgeList {
        self.edge_pool.pop().unwrap_or_default()
    }

    fn give_id_buf(&mut self, mut v: Vec<NodeId>) {
        if self.id_pool.len() < SCRATCH_POOL_CAP {
            v.clear();
            self.id_pool.push(v);
        }
    }

    fn give_edge_buf(&mut self, mut v: EdgeList) {
        if self.edge_pool.len() < SCRATCH_POOL_CAP {
            v.clear();
            self.edge_pool.push(v);
        }
    }
}

impl Network {
    /// Creates an empty network. `cell_size_hint` sizes the spatial
    /// index's base tier and anchors the geometric range-tier
    /// boundaries; a good value is the typical transmission range (the
    /// paper's experiments use ~25).
    pub fn new(cell_size_hint: f64) -> Self {
        Network::with_grid(StratifiedGrid::new(cell_size_hint), cell_size_hint)
    }

    /// Creates an empty network whose spatial index is **flat** — one
    /// tier, monotone range watermark — i.e. the pre-stratification
    /// behavior, where a single long-range node permanently inflates
    /// every reverse-reach scan. Exists for A/B benchmarking
    /// (`crates/bench`'s `events` bench) and equivalence tests; the
    /// two modes are bit-identical in results, only costs differ.
    pub fn new_flat(cell_size_hint: f64) -> Self {
        Network::with_grid(StratifiedGrid::new_flat(cell_size_hint), cell_size_hint)
    }

    fn with_grid(grid: StratifiedGrid, cell_size_hint: f64) -> Self {
        Network {
            graph: DiGraph::new(),
            configs: Vec::new(),
            grid,
            assignment: Assignment::new(),
            next_id: 0,
            obstacles: SegmentGrid::new(cell_size_hint),
            scratch: RewireScratch::default(),
        }
    }

    /// An empty network with this network's spatial-index
    /// configuration (cell hint, flat/stratified mode) and obstacles,
    /// but no nodes. Shard execution builds its private subnetworks
    /// with this so both arms of a flat-vs-stratified comparison keep
    /// their index mode through batching.
    pub fn fresh_like(&self) -> Network {
        let hint = self.cell_size_hint();
        let grid = if self.grid.is_flat() {
            StratifiedGrid::new_flat(hint)
        } else {
            StratifiedGrid::new(hint)
        };
        let mut net = Network::with_grid(grid, hint);
        for wall in self.obstacles.walls() {
            net.obstacles.insert(*wall);
        }
        net
    }

    /// Adds an opaque wall (§2's non-free-space generalization) and
    /// rewires every node's links. Obstacles only *remove* edges, i.e.
    /// only remove constraints, so a valid assignment stays valid.
    ///
    /// Returns one [`TopologyDelta`] per node whose link set actually
    /// changed (each edge appears in exactly one delta: the first
    /// rewire that severed it).
    pub fn add_obstacle(&mut self, wall: Segment) -> Vec<TopologyDelta> {
        self.obstacles.insert(wall);
        // Hold the ids across the rewires below (which mutate the
        // graph), so the allocation is necessary here.
        let ids: Vec<NodeId> = self.iter_nodes().collect();
        let mut deltas = Vec::new();
        for id in ids {
            let delta = self.rewire(id, DeltaKind::Rewire);
            if !delta.is_edge_noop() {
                deltas.push(delta);
            }
        }
        deltas
    }

    /// The installed obstacles.
    pub fn obstacles(&self) -> &[Segment] {
        self.obstacles.walls()
    }

    /// Whether the sight line between two points crosses a wall.
    /// Probes only the walls whose cells the sight line touches.
    pub fn line_blocked(&self, a: &Point, b: &Point) -> bool {
        self.obstacles.blocked(a, b)
    }

    /// The obstacle index itself, for attenuated (counting) sight-line
    /// queries: where the link predicate treats one wall as opaque,
    /// the physical layer (`minim-power`) charges a per-wall
    /// penetration loss via [`SegmentGrid::crossings`].
    pub fn obstacle_index(&self) -> &SegmentGrid {
        &self.obstacles
    }

    /// Hands a delta's buffers back for reuse. Event loops that are
    /// done with a [`TopologyDelta`] (metrics read, validation run)
    /// should recycle it: together with the internal scratch buffers
    /// this makes steady-state event application allocation-free. Not
    /// recycling is always safe — the pools are bounded and refill
    /// lazily.
    pub fn recycle_delta(&mut self, delta: TopologyDelta) {
        let (added, removed, out_after, in_after) = delta.into_buffers();
        self.scratch.give_edge_buf(added);
        self.scratch.give_edge_buf(removed);
        self.scratch.give_id_buf(out_after);
        self.scratch.give_id_buf(in_after);
    }

    /// Allocates a fresh node id (strictly increasing; also the CP
    /// baseline's node identity).
    pub fn next_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// The id the next [`Network::next_id`] call would return, without
    /// allocating it. Batch planning pre-assigns join ids with this so
    /// out-of-order (wave) application allocates the same ids as
    /// sequential execution.
    pub fn peek_next_id(&self) -> NodeId {
        NodeId(self.next_id)
    }

    /// An upper bound on every present node's transmission range,
    /// **derived from range-tier occupancy** (the scan radius of the
    /// highest occupied tier; at most 2× the true maximum). Unlike the
    /// old monotone watermark it *tightens* when long-range nodes
    /// shrink or leave — so batch planning's conservative claim radii
    /// shrink with it, widening the attainable shard parallelism. In a
    /// [`Network::new_flat`] network this is the legacy monotone
    /// watermark.
    pub fn range_bound(&self) -> f64 {
        self.grid.range_bound()
    }

    /// The spatial-index cell size this network was built with. Shard
    /// execution sizes its per-shard subnetworks with the same hint.
    pub fn cell_size_hint(&self) -> f64 {
        self.grid.base_cell()
    }

    /// The induced digraph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The current code assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Mutable access to the assignment (recoding strategies write
    /// through this).
    pub fn assignment_mut(&mut self) -> &mut Assignment {
        &mut self.assignment
    }

    /// The configuration of `id`, if present.
    #[inline]
    pub fn config(&self, id: NodeId) -> Option<NodeConfig> {
        self.configs.get(id.index()).copied().flatten()
    }

    /// Mutable slot for `id`'s configuration, growing the slab.
    fn config_slot(&mut self, id: NodeId) -> &mut Option<NodeConfig> {
        let i = id.index();
        if i >= self.configs.len() {
            self.configs.resize(i + 1, None);
        }
        &mut self.configs[i]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether `id` is in the network.
    pub fn contains(&self, id: NodeId) -> bool {
        self.graph.contains(id)
    }

    /// Present node ids, ascending, as a freshly allocated `Vec`.
    ///
    /// Prefer [`Network::iter_nodes`] in hot loops — it borrows instead
    /// of allocating. This form remains for callers that need to hold
    /// the ids across mutations.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.graph.nodes().collect()
    }

    /// Borrowing iterator over present node ids, ascending. Allocation
    /// free — the hot-loop replacement for [`Network::node_ids`].
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }

    /// Validates CA1/CA2 on the current graph and assignment.
    pub fn validate(&self) -> Result<(), conflict::Violation> {
        conflict::validate(&self.graph, &self.assignment)
    }

    /// Inserts node `id` with configuration `cfg` and wires up the
    /// induced edges in both directions. The node starts **uncolored**;
    /// the recoding strategy must assign it a code.
    ///
    /// Returns the [`TopologyDelta`] of the insertion: every new edge
    /// (all incident to `id`) plus `id`'s resulting neighbor lists —
    /// from which the recode set `1n ∪ 2n ∪ {n}` follows without
    /// another graph traversal.
    ///
    /// # Panics
    /// Panics if `id` already exists.
    pub fn insert_node(&mut self, id: NodeId, cfg: NodeConfig) -> TopologyDelta {
        assert!(
            !self.graph.contains(id),
            "insert_node: {id} already present"
        );
        self.graph.insert_node(id);
        *self.config_slot(id) = Some(cfg);
        self.next_id = self.next_id.max(id.0 + 1);
        self.grid.insert(id.0, cfg.pos, cfg.range);
        self.rewire(id, DeltaKind::Insert)
    }

    /// Convenience: insert at a fresh id. Returns the id.
    pub fn join(&mut self, cfg: NodeConfig) -> NodeId {
        self.join_delta(cfg).0
    }

    /// Inserts at a fresh id, returning both the id and the insertion's
    /// [`TopologyDelta`].
    pub fn join_delta(&mut self, cfg: NodeConfig) -> (NodeId, TopologyDelta) {
        let id = self.next_id();
        let delta = self.insert_node(id, cfg);
        (id, delta)
    }

    /// Removes node `id`, its edges, and its color.
    ///
    /// Returns the [`TopologyDelta`] listing every severed edge. A
    /// removal only *removes* constraints (§4.3: `RecodeDecreasePow-
    /// OrLeave` is passive), so consumers need the delta for cache
    /// invalidation and accounting, never for recoding.
    ///
    /// # Panics
    /// Panics if `id` is absent.
    pub fn remove_node(&mut self, id: NodeId) -> TopologyDelta {
        assert!(self.graph.contains(id), "remove_node: missing {id}");
        let mut removed = self.scratch.take_edge_buf();
        removed.extend(self.graph.out_neighbors(id).iter().map(|&v| (id, v)));
        removed.extend(self.graph.in_neighbors(id).iter().map(|&u| (u, id)));
        self.graph.remove_node(id);
        self.configs[id.index()] = None;
        self.grid.remove(id.0);
        self.assignment.unset(id);
        let added = self.scratch.take_edge_buf();
        let out_after = self.scratch.take_id_buf();
        let in_after = self.scratch.take_id_buf();
        TopologyDelta::new(DeltaKind::Remove, id, added, removed, out_after, in_after)
    }

    /// Moves node `id` to `to` and recomputes its incident edges. The
    /// node keeps its (possibly now-conflicting) color; the strategy
    /// decides what to recode from the returned [`TopologyDelta`].
    ///
    /// # Panics
    /// Panics if `id` is absent.
    pub fn move_node(&mut self, id: NodeId, to: Point) -> TopologyDelta {
        let cfg = self
            .configs
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .expect("move_node: missing node");
        cfg.pos = to;
        self.grid.relocate(id.0, to);
        self.rewire(id, DeltaKind::Move)
    }

    /// Sets node `id`'s transmission range. Only *out*-edges of `id`
    /// change (who `id` can reach); in-edges depend on the other nodes'
    /// ranges and are untouched.
    ///
    /// The returned [`TopologyDelta`]'s added edges all leave `id` —
    /// exactly the new constraints a power increase creates (§4.2), so
    /// strategies recode from the delta without diffing conflict sets.
    ///
    /// # Panics
    /// Panics if `id` is absent or the range is invalid.
    pub fn set_range(&mut self, id: NodeId, range: f64) -> TopologyDelta {
        assert!(
            range.is_finite() && range >= 0.0,
            "range must be finite and non-negative, got {range}"
        );
        let cfg = self
            .configs
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .expect("set_range: missing node");
        cfg.range = range;
        let pos = cfg.pos;
        // Migrates across range tiers when the range crosses a tier
        // boundary — this is where the reverse-reach bound tightens on
        // a power decrease.
        self.grid.set_range(id.0, range);
        let Network {
            graph,
            grid,
            obstacles,
            scratch,
            ..
        } = self;
        // Recompute out-edges from scratch, on reusable buffers.
        scratch.old_out.clear();
        scratch.old_out.extend_from_slice(graph.out_neighbors(id));
        for i in 0..scratch.old_out.len() {
            graph.remove_edge(id, scratch.old_out[i]);
        }
        scratch.out.clear();
        let targets = &mut scratch.out;
        grid.for_each_within(&pos, range, |other, opos| {
            if other != id.0 && !obstacles.blocked(&pos, &opos) {
                targets.push(NodeId(other));
            }
        });
        for i in 0..scratch.out.len() {
            graph.add_edge(id, scratch.out[i]);
        }
        scratch.out.sort_unstable();
        let mut added = scratch.take_edge_buf();
        let mut removed = scratch.take_edge_buf();
        diff_sorted(
            &scratch.old_out,
            &scratch.out,
            |v| removed.push((id, v)),
            |v| added.push((id, v)),
        );
        let mut out_after = scratch.take_id_buf();
        out_after.extend_from_slice(&scratch.out);
        let mut in_after = scratch.take_id_buf();
        in_after.extend_from_slice(graph.in_neighbors(id));
        TopologyDelta::new(DeltaKind::SetRange, id, added, removed, out_after, in_after)
    }

    /// Recomputes **all** edges incident to `id` (both directions) from
    /// the geometry, returning the exact edge delta. Used on insert,
    /// move, and obstacle installation.
    ///
    /// Runs entirely on the [`RewireScratch`] workspace: candidate
    /// buffers are reused across events and the delta's owned lists
    /// come from the recycle pools, so in steady state (with
    /// [`Network::recycle_delta`] returning buffers) the whole path is
    /// allocation-free.
    fn rewire(&mut self, id: NodeId, kind: DeltaKind) -> TopologyDelta {
        let cfg = self.config(id).expect("rewire: missing node");
        let Network {
            graph,
            grid,
            obstacles,
            scratch,
            ..
        } = self;
        scratch.old_out.clear();
        scratch.old_out.extend_from_slice(graph.out_neighbors(id));
        scratch.old_in.clear();
        scratch.old_in.extend_from_slice(graph.in_neighbors(id));
        graph.clear_node_edges(id);
        // Out-edges: nodes within our range and line of sight.
        scratch.out.clear();
        let out = &mut scratch.out;
        grid.for_each_within(&cfg.pos, cfg.range, |other, opos| {
            if other != id.0 && !obstacles.blocked(&cfg.pos, &opos) {
                out.push(NodeId(other));
            }
        });
        for i in 0..scratch.out.len() {
            graph.add_edge(id, scratch.out[i]);
        }
        // In-edges: nodes whose own range covers us — the stratified
        // reverse-reach query scans each occupied tier at that tier's
        // range cap (instead of one scan at the global maximum), and
        // already filters by each candidate's actual range.
        scratch.inn.clear();
        let inn = &mut scratch.inn;
        grid.for_each_reaching(&cfg.pos, |other, opos, _| {
            if other != id.0 && !obstacles.blocked(&opos, &cfg.pos) {
                inn.push(NodeId(other));
            }
        });
        for i in 0..scratch.inn.len() {
            graph.add_edge(scratch.inn[i], id);
        }
        scratch.out.sort_unstable();
        scratch.inn.sort_unstable();
        let mut added = scratch.take_edge_buf();
        let mut removed = scratch.take_edge_buf();
        diff_sorted(
            &scratch.old_out,
            &scratch.out,
            |v| removed.push((id, v)),
            |v| added.push((id, v)),
        );
        diff_sorted(
            &scratch.old_in,
            &scratch.inn,
            |u| removed.push((u, id)),
            |u| added.push((u, id)),
        );
        let mut out_after = scratch.take_id_buf();
        out_after.extend_from_slice(&scratch.out);
        let mut in_after = scratch.take_id_buf();
        in_after.extend_from_slice(&scratch.inn);
        TopologyDelta::new(kind, id, added, removed, out_after, in_after)
    }

    /// The Fig 2 partition of the existing nodes around `n`.
    ///
    /// Event handlers should prefer [`TopologyDelta::partitions`] —
    /// the delta already carries the neighborhood, so this graph read
    /// is redundant on the event path. This accessor remains for
    /// analysis of standing networks (bounds, traces, tests).
    ///
    /// # Panics
    /// Panics if `n` is absent.
    pub fn partitions(&self, n: NodeId) -> JoinPartitions {
        JoinPartitions::from_sorted_neighbors(
            self.graph.in_neighbors(n),
            self.graph.out_neighbors(n),
        )
    }

    /// The recode set of a join/move at `n`: `1n ∪ 2n ∪ {n}`, sorted.
    pub fn recode_set(&self, n: NodeId) -> Vec<NodeId> {
        let p = self.partitions(n);
        let mut v = p.in_union();
        match v.binary_search(&n) {
            Ok(_) => {}
            Err(i) => v.insert(i, n),
        }
        v
    }

    /// Whether the paper's *Minimal Connectivity* assumption holds for
    /// `n`: some node hears `n`, and `n` hears some node.
    pub fn minimally_connected(&self, n: NodeId) -> bool {
        self.graph.contains(n)
            && !self.graph.out_neighbors(n).is_empty()
            && !self.graph.in_neighbors(n).is_empty()
    }

    /// The maximum color index currently assigned (0 when uncolored).
    pub fn max_color_index(&self) -> u32 {
        self.assignment.max_color_index()
    }

    /// Convenience for tests: set a node's color.
    pub fn set_color(&mut self, n: NodeId, c: Color) {
        assert!(self.graph.contains(n), "set_color: missing {n}");
        self.assignment.set(n, c);
    }

    /// Rebuilds the full graph from scratch (O(n · neighborhood)) and
    /// asserts it matches the incrementally maintained one. Debug aid
    /// used by tests and failure injection.
    pub fn check_topology(&self) {
        for u in self.iter_nodes() {
            let cu = self.configs[u.index()].expect("present node");
            for v in self.iter_nodes() {
                if u == v {
                    continue;
                }
                let cv = self.configs[v.index()].expect("present node");
                let expect =
                    cu.pos.within(&cv.pos, cu.range) && !self.line_blocked(&cu.pos, &cv.pos);
                assert_eq!(
                    self.graph.has_edge(u, v),
                    expect,
                    "topology drift on {u} → {v}"
                );
            }
        }
        self.graph.check_invariants();
    }

    /// Whether this network runs on the flat (single-tier, monotone
    /// watermark) spatial index rather than the range-stratified one.
    /// Snapshot encoders persist this so a restored network keeps the
    /// same index mode (the two are result-identical; only costs and
    /// the [`Network::range_bound`] trajectory differ).
    pub fn is_flat(&self) -> bool {
        self.grid.is_flat()
    }

    /// Raises the id watermark so the next [`Network::next_id`] call
    /// returns at least `next`. Never lowers it. Snapshot restore uses
    /// this to reproduce an id allocator that had advanced past the
    /// highest *surviving* node (departed nodes leave watermark gaps
    /// that [`Network::insert_node`] alone cannot recreate).
    pub fn restore_id_watermark(&mut self, next: u32) {
        self.next_id = self.next_id.max(next);
    }

    /// The structural fingerprint: `O(1)`, shared by the resident
    /// executor's reseed check and `minim-serve`'s recovery
    /// verification.
    pub fn fingerprint(&self) -> NetworkFingerprint {
        NetworkFingerprint {
            nodes: self.node_count(),
            next_id: self.next_id,
            edges: self.graph.edge_count(),
            max_color: self.max_color_index(),
        }
    }

    /// A strong `O(N + E + walls)` digest of the observable network
    /// state: every node's id, position bits, range bits, and color,
    /// every edge, every obstacle, and the id watermark, folded
    /// through FNV-1a. Two networks with equal digests agree on
    /// everything event application can observe — the recovery tests'
    /// one-word "bit-identical" witness. (Hash equality is of course
    /// probabilistic; the tests additionally compare
    /// [`Network::describe`] outputs on mismatch-free paths.)
    pub fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |word: u64| {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        fold(self.next_id as u64);
        for (i, cfg) in self.configs.iter().enumerate() {
            if let Some(cfg) = cfg {
                fold(i as u64);
                fold(cfg.pos.x.to_bits());
                fold(cfg.pos.y.to_bits());
                fold(cfg.range.to_bits());
                let id = NodeId(i as u32);
                match self.assignment.get(id) {
                    Some(c) => fold(1 + c.index() as u64),
                    None => fold(0),
                }
                for &v in self.graph.out_neighbors(id) {
                    fold(u64::from(v.0) | 1 << 40);
                }
            }
        }
        for wall in self.obstacles.walls() {
            fold(wall.a.x.to_bits());
            fold(wall.a.y.to_bits());
            fold(wall.b.x.to_bits());
            fold(wall.b.y.to_bits());
        }
        h
    }

    /// Snapshot of the current assignment (for before/after diffs).
    pub fn snapshot_assignment(&self) -> Assignment {
        self.assignment.clone()
    }

    /// Access to the arena-independent spatial state, for rendering and
    /// debugging: `(id, position, range, color)` tuples sorted by id.
    pub fn describe(&self) -> Vec<(NodeId, Point, f64, Option<Color>)> {
        self.configs
            .iter()
            .enumerate()
            .filter_map(|(i, cfg)| {
                let id = NodeId(i as u32);
                cfg.map(|c| (id, c.pos, c.range, self.assignment.get(id)))
            })
            .collect()
    }
}

/// A list of directed edges, as a delta stores them.
type EdgeList = Vec<(NodeId, NodeId)>;

/// Single merge pass over two sorted id lists, calling `on_old_only`
/// for ids that disappeared and `on_new_only` for ids that appeared.
fn diff_sorted(
    old: &[NodeId],
    new: &[NodeId],
    mut on_old_only: impl FnMut(NodeId),
    mut on_new_only: impl FnMut(NodeId),
) {
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                on_old_only(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                on_new_only(new[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    for &v in &old[i..] {
        on_old_only(v);
    }
    for &v in &new[j..] {
        on_new_only(v);
    }
}

/// Builds a network from explicit `(position, range)` pairs with ids
/// `0..k`, leaving all nodes uncolored. Test/example helper.
pub fn network_from_configs(cell_hint: f64, configs: &[(Point, f64)]) -> Network {
    let mut net = Network::new(cell_hint);
    for &(pos, range) in configs {
        net.join(NodeConfig::new(pos, range));
    }
    net
}

/// The standard arena of the paper's experiments.
pub fn paper_arena() -> Rect {
    Rect::paper_arena()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn join_wires_edges_by_range_asymmetrically() {
        let mut net = Network::new(5.0);
        // a reaches b (range 10 ≥ dist 6); b does not reach a (range 4).
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        assert!(net.graph().has_edge(a, b));
        assert!(!net.graph().has_edge(b, a));
        net.check_topology();
    }

    #[test]
    fn boundary_distance_is_connected() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 1.0));
        assert!(net.graph().has_edge(a, b), "d == r is connected");
        assert!(!net.graph().has_edge(b, a));
    }

    #[test]
    fn insert_existing_node_panics() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.insert_node(a, NodeConfig::new(Point::new(1.0, 1.0), 2.0));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn remove_node_clears_everything() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(3.0, 0.0), 10.0));
        net.set_color(b, Color::new(2));
        net.remove_node(b);
        assert!(!net.contains(b));
        assert_eq!(net.node_count(), 1);
        assert!(net.graph().out_neighbors(a).is_empty());
        assert_eq!(net.assignment().get(b), None);
        net.check_topology();
    }

    #[test]
    fn move_node_rewires_both_directions() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 8.0));
        let b = net.join(NodeConfig::new(Point::new(20.0, 0.0), 8.0));
        assert_eq!(net.graph().edge_count(), 0);
        net.move_node(b, Point::new(5.0, 0.0));
        assert!(net.graph().has_edge(a, b));
        assert!(net.graph().has_edge(b, a));
        net.check_topology();
        net.move_node(b, Point::new(50.0, 50.0));
        assert_eq!(net.graph().edge_count(), 0);
        net.check_topology();
    }

    #[test]
    fn set_range_only_affects_out_edges() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        assert!(net.graph().has_edge(a, b));
        assert!(!net.graph().has_edge(b, a));
        net.set_range(b, 7.0);
        assert!(net.graph().has_edge(b, a), "b now reaches a");
        assert!(net.graph().has_edge(a, b), "a → b untouched");
        net.set_range(b, 1.0);
        assert!(!net.graph().has_edge(b, a));
        assert!(net.graph().has_edge(a, b));
        net.check_topology();
    }

    #[test]
    fn partitions_classify_neighbors() {
        let mut net = Network::new(5.0);
        // Geometry: n at origin with range 10.
        //   one: hears us? no wait — `one` = nodes that REACH n only.
        let nid = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        // in-only: u reaches n (range 20 ≥ 15) but n (10) can't reach u.
        let u = net.join(NodeConfig::new(Point::new(15.0, 0.0), 20.0));
        // bidirectional: close and strong.
        let v = net.join(NodeConfig::new(Point::new(5.0, 0.0), 9.0));
        // out-only: n reaches w (8 ≤ 10) but w's range 2 is too small.
        let w = net.join(NodeConfig::new(Point::new(0.0, 8.0), 2.0));
        // unrelated far node.
        let x = net.join(NodeConfig::new(Point::new(90.0, 90.0), 5.0));

        let p = net.partitions(nid);
        assert_eq!(p.one, vec![u]);
        assert_eq!(p.two, vec![v]);
        assert_eq!(p.three, vec![w]);
        assert_eq!(p.in_union(), vec![u, v]);
        assert_eq!(net.recode_set(nid), vec![nid, u, v]);
        assert!(!p.one.contains(&x));
    }

    #[test]
    fn minimal_connectivity_check() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        assert!(!net.minimally_connected(a), "isolated");
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 10.0));
        assert!(net.minimally_connected(a));
        assert!(net.minimally_connected(b));
    }

    #[test]
    fn next_id_is_monotone_and_respects_explicit_inserts() {
        let mut net = Network::new(5.0);
        let a = net.next_id();
        assert_eq!(a, n(0));
        net.insert_node(n(10), NodeConfig::new(Point::new(0.0, 0.0), 1.0));
        let b = net.next_id();
        assert_eq!(b, n(11), "allocator must skip past explicit ids");
    }

    #[test]
    fn validate_reflects_assignment() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(5.0, 0.0), 10.0));
        assert!(net.validate().is_err(), "uncolored nodes are invalid");
        net.set_color(a, Color::new(1));
        net.set_color(b, Color::new(1));
        assert!(net.validate().is_err(), "primary collision");
        net.set_color(b, Color::new(2));
        assert!(net.validate().is_ok());
    }

    #[test]
    fn describe_lists_nodes_in_id_order() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(1.0, 2.0), 3.0));
        let b = net.join(NodeConfig::new(Point::new(4.0, 5.0), 6.0));
        net.set_color(a, Color::new(9));
        let d = net.describe();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, a);
        assert_eq!(d[0].3, Some(Color::new(9)));
        assert_eq!(d[1].0, b);
        assert_eq!(d[1].3, None);
    }

    #[test]
    fn obstacles_block_links_and_only_remove_constraints() {
        use minim_geom::Segment;
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 12.0));
        let b = net.join(NodeConfig::new(Point::new(10.0, 0.0), 12.0));
        net.set_color(a, Color::new(1));
        net.set_color(b, Color::new(2));
        assert!(net.graph().has_edge(a, b));
        assert!(net.validate().is_ok());

        // A wall between them severs both directions; the assignment
        // stays valid (constraints only shrank) and nodes could now
        // even share a code.
        net.add_obstacle(Segment::new(Point::new(5.0, -20.0), Point::new(5.0, 20.0)));
        assert!(!net.graph().has_edge(a, b));
        assert!(!net.graph().has_edge(b, a));
        assert!(net.validate().is_ok());
        net.set_color(b, Color::new(1));
        assert!(net.validate().is_ok(), "wall permits code reuse");
        net.check_topology();

        // Joins behind the wall only see their own side.
        let c = net.join(NodeConfig::new(Point::new(2.0, 1.0), 12.0));
        assert!(net.graph().has_edge(c, a));
        assert!(!net.graph().has_edge(c, b), "wall blocks the new link too");
        net.check_topology();

        // Movement across the wall rewires correctly.
        net.move_node(c, Point::new(8.0, 1.0));
        assert!(!net.graph().has_edge(c, a));
        assert!(net.graph().has_edge(c, b));
        net.check_topology();
    }

    #[test]
    fn obstacle_blocks_set_range_links_too() {
        use minim_geom::Segment;
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 3.0));
        let b = net.join(NodeConfig::new(Point::new(10.0, 0.0), 3.0));
        net.add_obstacle(Segment::new(Point::new(5.0, -5.0), Point::new(5.0, 5.0)));
        net.set_range(a, 20.0);
        assert!(
            !net.graph().has_edge(a, b),
            "boost cannot punch through walls"
        );
        net.check_topology();
        let _ = b;
    }

    #[test]
    fn insert_delta_lists_every_new_edge_and_neighborhood() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(12.0, 0.0), 20.0));
        // c lands between them, within range of both: every incident
        // edge (c ↔ a at dist 6, c ↔ b at dist 6) wires both ways.
        let c = net.next_id();
        let d = net.insert_node(c, NodeConfig::new(Point::new(6.0, 0.0), 8.0));
        assert_eq!(d.kind(), DeltaKind::Insert);
        assert_eq!(d.node(), c);
        assert!(d.removed.is_empty(), "an insert only adds edges");
        // Every added edge exists and touches c.
        for &(u, v) in &d.added {
            assert!(net.graph().has_edge(u, v));
            assert!(u == c || v == c);
        }
        assert_eq!(
            d.added.len(),
            net.graph().out_degree(c) + net.graph().in_degree(c)
        );
        assert_eq!(d.out_after, net.graph().out_neighbors(c));
        assert_eq!(d.in_after, net.graph().in_neighbors(c));
        assert_eq!(d.partitions(), net.partitions(c));
        assert_eq!(d.recode_set(), net.recode_set(c));
        let _ = (a, b);
    }

    #[test]
    fn remove_delta_lists_every_severed_edge() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        let c = net.join(NodeConfig::new(Point::new(3.0, 0.0), 10.0));
        let before: Vec<_> = net.graph().edges().collect();
        let d = net.remove_node(c);
        assert_eq!(d.kind(), DeltaKind::Remove);
        assert!(d.added.is_empty());
        assert!(d.out_after.is_empty() && d.in_after.is_empty());
        let after: Vec<_> = net.graph().edges().collect();
        let mut expected: Vec<_> = before.into_iter().filter(|e| !after.contains(e)).collect();
        expected.sort_unstable();
        assert_eq!(d.removed, expected);
        assert!(d.touched().contains(&a) && d.touched().contains(&c));
        let _ = b;
    }

    #[test]
    fn move_delta_diffs_old_and_new_neighborhoods() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 8.0));
        let b = net.join(NodeConfig::new(Point::new(30.0, 0.0), 8.0));
        let c = net.join(NodeConfig::new(Point::new(5.0, 0.0), 8.0));
        // c currently links with a; moving near b swaps the neighborhood.
        let d = net.move_node(c, Point::new(27.0, 0.0));
        assert_eq!(d.kind(), DeltaKind::Move);
        assert_eq!(d.removed, vec![(a, c), (c, a)]);
        assert_eq!(d.added, vec![(b, c), (c, b)]);
        assert_eq!(d.touched(), vec![a, b, c]);
        assert_eq!(d.out_after, vec![b]);
        assert_eq!(d.in_after, vec![b]);
        // A move that changes nothing is an edge no-op.
        let d2 = net.move_node(c, Point::new(26.0, 0.0));
        assert!(d2.is_edge_noop());
        net.check_topology();
    }

    #[test]
    fn set_range_delta_only_touches_out_edges() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 4.0));
        let d = net.set_range(b, 7.0);
        assert_eq!(d.kind(), DeltaKind::SetRange);
        assert_eq!(d.added, vec![(b, a)]);
        assert!(d.removed.is_empty());
        assert_eq!(d.new_receivers().collect::<Vec<_>>(), vec![a]);
        assert_eq!(d.new_transmitters().count(), 0);
        let d2 = net.set_range(b, 1.0);
        assert_eq!(d2.removed, vec![(b, a)]);
        assert!(d2.added.is_empty());
        assert_eq!(d2.in_after, vec![a], "in-edges survive the range drop");
        net.check_topology();
    }

    #[test]
    fn obstacle_deltas_cover_each_severed_edge_once() {
        use minim_geom::Segment;
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 12.0));
        let b = net.join(NodeConfig::new(Point::new(10.0, 0.0), 12.0));
        let c = net.join(NodeConfig::new(Point::new(0.0, 5.0), 12.0));
        let deltas = net.add_obstacle(Segment::new(Point::new(5.0, -20.0), Point::new(5.0, 20.0)));
        let mut removed: Vec<_> = deltas.iter().flat_map(|d| d.removed.clone()).collect();
        removed.sort_unstable();
        // Both directions of a–b and c–b are gone; nothing is double
        // counted and nothing was added.
        assert_eq!(removed, vec![(a, b), (b, a), (b, c), (c, b)]);
        assert!(deltas.iter().all(|d| d.added.is_empty()));
        assert!(deltas.iter().all(|d| d.kind() == DeltaKind::Rewire));
        net.check_topology();
    }

    #[test]
    fn iter_nodes_matches_node_ids() {
        let mut net = Network::new(5.0);
        for i in 0..5 {
            net.join(NodeConfig::new(Point::new(i as f64 * 3.0, 0.0), 4.0));
        }
        assert_eq!(net.iter_nodes().collect::<Vec<_>>(), net.node_ids());
    }

    /// Regression for the watermark bug: `max_range_bound` never
    /// shrank after `set_range` lowered a node's range or `remove_node`
    /// deleted the longest-range node, so one lighthouse permanently
    /// inflated every later reverse-reach scan (and every batch claim
    /// radius). The bound is now derived from range-tier occupancy.
    #[test]
    fn range_bound_shrinks_when_lighthouse_leaves() {
        let mut net = Network::new(25.0);
        for i in 0..20 {
            net.join(NodeConfig::new(Point::new(i as f64 * 7.0, 0.0), 20.0));
        }
        let small_bound = net.range_bound();
        assert!(
            small_bound <= 50.0,
            "short-range tier cap, got {small_bound}"
        );

        // The lighthouse joins: the bound must cover it...
        let lh = net.join(NodeConfig::new(Point::new(70.0, 50.0), 2000.0));
        assert!(net.range_bound() >= 2000.0);
        // ...and fall back once it leaves — joins get cheap again.
        net.remove_node(lh);
        assert_eq!(net.range_bound(), small_bound, "lighthouse left");

        // Same via set_range: powering the lighthouse down re-tiers it.
        let lh = net.join(NodeConfig::new(Point::new(70.0, 50.0), 2000.0));
        assert!(net.range_bound() >= 2000.0);
        net.set_range(lh, 10.0);
        assert_eq!(net.range_bound(), small_bound, "lighthouse powered down");
        net.check_topology();

        // The flat arm reproduces the legacy monotone behavior.
        let mut flat = Network::new_flat(25.0);
        let lh = flat.join(NodeConfig::new(Point::new(0.0, 0.0), 2000.0));
        flat.join(NodeConfig::new(Point::new(5.0, 0.0), 20.0));
        flat.remove_node(lh);
        assert!(flat.range_bound() >= 2000.0, "flat bound never shrinks");
    }

    #[test]
    fn recycled_deltas_keep_results_identical() {
        // Two identical event streams, one recycling deltas after each
        // event: final networks (and each delta's contents) must match.
        let mut a = Network::new(10.0);
        let mut b = Network::new(10.0);
        let cfgs = [
            (Point::new(0.0, 0.0), 8.0),
            (Point::new(5.0, 0.0), 8.0),
            (Point::new(9.0, 3.0), 12.0),
            (Point::new(2.0, 7.0), 6.0),
        ];
        for &(p, r) in &cfgs {
            let da = a.insert_node(a.peek_next_id(), NodeConfig::new(p, r));
            let db = b.insert_node(b.peek_next_id(), NodeConfig::new(p, r));
            assert_eq!(da, db);
            b.recycle_delta(db);
        }
        for _ in 0..3 {
            let da = a.move_node(n(2), Point::new(1.0, 1.0));
            let db = b.move_node(n(2), Point::new(1.0, 1.0));
            assert_eq!(da, db);
            b.recycle_delta(db);
            let da = a.move_node(n(2), Point::new(9.0, 3.0));
            let db = b.move_node(n(2), Point::new(9.0, 3.0));
            assert_eq!(da, db);
            b.recycle_delta(db);
            let da = a.set_range(n(0), 15.0);
            let db = b.set_range(n(0), 15.0);
            assert_eq!(da, db);
            b.recycle_delta(db);
            let da = a.set_range(n(0), 8.0);
            let db = b.set_range(n(0), 8.0);
            assert_eq!(da, db);
            b.recycle_delta(db);
        }
        let da = a.remove_node(n(1));
        let db = b.remove_node(n(1));
        assert_eq!(da, db);
        b.recycle_delta(db);
        assert_eq!(a.describe(), b.describe());
        a.check_topology();
        b.check_topology();
    }

    #[test]
    fn flat_and_stratified_networks_agree_on_topology() {
        let cfgs = [
            (Point::new(0.0, 0.0), 6.0),
            (Point::new(5.0, 0.0), 60.0),
            (Point::new(10.0, 0.0), 6.0),
            (Point::new(55.0, 0.0), 6.0),
            (Point::new(30.0, 20.0), 200.0),
        ];
        let strat = network_from_configs(10.0, &cfgs);
        let mut flat = Network::new_flat(10.0);
        for &(pos, range) in &cfgs {
            flat.join(NodeConfig::new(pos, range));
        }
        let ga: Vec<_> = strat.graph().edges().collect();
        let gb: Vec<_> = flat.graph().edges().collect();
        assert_eq!(ga, gb);
        strat.check_topology();
        flat.check_topology();
    }

    #[test]
    fn network_from_configs_builder() {
        let net = network_from_configs(
            5.0,
            &[
                (Point::new(0.0, 0.0), 6.0),
                (Point::new(5.0, 0.0), 6.0),
                (Point::new(10.0, 0.0), 6.0),
            ],
        );
        assert_eq!(net.node_count(), 3);
        // Chain topology 0 <-> 1 <-> 2 but not 0 <-> 2.
        assert!(net.graph().has_edge(n(0), n(1)));
        assert!(net.graph().has_edge(n(1), n(2)));
        assert!(!net.graph().has_edge(n(0), n(2)));
    }
}
