//! Network statistics: the structural quantities the paper's analysis
//! leans on (degree `k`, density, connectivity) plus assignment-level
//! summaries, for experiment logging and the examples.

use crate::Network;
use minim_graph::{conflict, hops};

/// A structural and assignment snapshot of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed links.
    pub edges: usize,
    /// Maximum of in-/out-degree over all nodes (the paper's `k`).
    pub max_degree: usize,
    /// Mean undirected degree.
    pub mean_degree: f64,
    /// Fraction of ordered node pairs that are linked.
    pub density: f64,
    /// Whether the underlying undirected graph is connected.
    pub connected: bool,
    /// Fraction of links that are one-way (power asymmetry).
    pub asymmetric_fraction: f64,
    /// Maximum color index in use (0 when uncolored).
    pub max_color: u32,
    /// Number of distinct colors in use.
    pub distinct_colors: usize,
    /// Greedy clique lower bound on the conflict graph — no correct
    /// assignment can use fewer colors than this.
    pub conflict_clique_lb: usize,
}

/// Computes the snapshot. `O(n · neighborhood)` plus one conflict-graph
/// build; intended for logging, not hot loops.
pub fn network_stats(net: &Network) -> NetworkStats {
    let g = net.graph();
    let n = g.node_count();
    let edges = g.edge_count();
    let mut asym = 0usize;
    for (u, v) in g.edges() {
        if !g.has_edge(v, u) {
            asym += 1;
        }
    }
    let mean_degree = if n == 0 {
        0.0
    } else {
        g.nodes().map(|v| g.undirected_degree(v)).sum::<usize>() as f64 / n as f64
    };
    let density = if n <= 1 {
        0.0
    } else {
        edges as f64 / (n * (n - 1)) as f64
    };
    let (ug, _) = conflict::conflict_graph(g);
    NetworkStats {
        nodes: n,
        edges,
        max_degree: g.max_degree(),
        mean_degree,
        density,
        connected: hops::is_connected(g),
        asymmetric_fraction: if edges == 0 {
            0.0
        } else {
            asym as f64 / edges as f64
        },
        max_color: net.max_color_index(),
        distinct_colors: net.assignment().distinct_colors(),
        conflict_clique_lb: ug.greedy_clique_lower_bound(),
    }
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} links ({:.0}% one-way), k={}, mean degree {:.1}, \
             density {:.3}, {}connected; {} colors (max index {}, clique lb {})",
            self.nodes,
            self.edges,
            self.asymmetric_fraction * 100.0,
            self.max_degree,
            self.mean_degree,
            self.density,
            if self.connected { "" } else { "dis" },
            self.distinct_colors,
            self.max_color,
            self.conflict_clique_lb,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{network_from_configs, NodeConfig};
    use minim_geom::Point;
    use minim_graph::Color;

    #[test]
    fn stats_on_empty_network() {
        let net = Network::new(10.0);
        let s = network_stats(&net);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.density, 0.0);
        assert!(s.connected, "empty graph counts as connected");
        assert_eq!(s.max_color, 0);
    }

    #[test]
    fn stats_on_asymmetric_pair() {
        let mut net = Network::new(10.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 10.0));
        let b = net.join(NodeConfig::new(Point::new(6.0, 0.0), 3.0));
        net.set_color(a, Color::new(1));
        net.set_color(b, Color::new(2));
        let s = network_stats(&net);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.edges, 1);
        assert_eq!(s.asymmetric_fraction, 1.0);
        assert!(s.connected);
        assert_eq!(s.distinct_colors, 2);
        assert_eq!(s.max_color, 2);
        assert!(s.conflict_clique_lb >= 2);
        assert_eq!(s.density, 0.5);
    }

    #[test]
    fn stats_on_chain() {
        let net = network_from_configs(
            10.0,
            &[
                (Point::new(0.0, 0.0), 7.0),
                (Point::new(6.0, 0.0), 7.0),
                (Point::new(12.0, 0.0), 7.0),
            ],
        );
        let s = network_stats(&net);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 4, "two bidirectional links");
        assert_eq!(s.asymmetric_fraction, 0.0);
        assert_eq!(s.max_degree, 2);
        assert!(s.connected);
        assert!((s.mean_degree - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders() {
        let net = Network::new(10.0);
        let text = network_stats(&net).to_string();
        assert!(text.contains("0 nodes"));
    }
}
