//! Random workload generators matching §5 of the paper, plus the
//! richer regimes the scenario lab sweeps over.
//!
//! The paper's three workloads:
//!
//! * [`JoinWorkload`] — §5.1: `N` nodes join consecutively, positions
//!   uniform in the arena, ranges uniform in `(minr, maxr)`.
//! * [`PowerRaiseWorkload`] — §5.2: half the nodes (chosen at random)
//!   raise their range by a factor `raisefactor`.
//! * [`MovementWorkload`] — §5.3: `RoundNo` rounds, each moving every
//!   node once, in a random direction by a displacement uniform in
//!   `[0, maxdisp]`.
//!
//! Extensions used by `minim-sim`'s declarative scenarios:
//!
//! * [`Placement`] — where joiners appear: uniform over the arena, or
//!   clustered (gaussian scatter around sampled cluster centers, the
//!   Poisson-clustered deployment model).
//! * [`RangeDist`] — how transmission ranges are drawn: one uniform
//!   interval, or a heterogeneous short/long population mix.
//! * [`ChurnWorkload`] — sustained join/leave churn.
//! * [`MixWorkload`] — fully interleaved churn: every step is a join,
//!   a departure, or a single-node move, which exercises all of the
//!   paper's event handlers against each other.
//!
//! Generators are deterministic given an `Rng`, and produce concrete
//! event lists against the current network state.

use crate::event::Event;
use crate::{Network, NodeConfig};
use minim_geom::{sample, Point, Rect};
use minim_graph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// §5.1 join workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct JoinWorkload {
    /// Number of consecutive joins (`N`).
    pub count: usize,
    /// Lower range bound (`minr`), paper default 20.5.
    pub minr: f64,
    /// Upper range bound (`maxr`), paper default 30.5.
    pub maxr: f64,
    /// Deployment arena, paper default `[0,100]²`.
    pub arena: Rect,
}

impl JoinWorkload {
    /// The paper's default join workload with `count` nodes.
    pub fn paper(count: usize) -> Self {
        JoinWorkload {
            count,
            minr: 20.5,
            maxr: 30.5,
            arena: Rect::paper_arena(),
        }
    }

    /// Variant used by the Fig 10(d–f) sweep: ranges uniform in an
    /// interval of width 5 centered on `avg_r`.
    pub fn with_avg_range(count: usize, avg_r: f64) -> Self {
        JoinWorkload {
            count,
            minr: (avg_r - 2.5).max(0.0),
            maxr: avg_r + 2.5,
            arena: Rect::paper_arena(),
        }
    }

    /// Generates the join events.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Event> {
        (0..self.count)
            .map(|_| Event::Join {
                cfg: NodeConfig::new(
                    sample::uniform_point(rng, &self.arena),
                    sample::uniform_range(rng, self.minr, self.maxr),
                ),
            })
            .collect()
    }
}

/// §5.2 power-raise workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerRaiseWorkload {
    /// Fraction of nodes whose range is raised (paper: 0.5).
    pub fraction: f64,
    /// Multiplicative raise factor (`raisefactor`, swept 1..6).
    pub raisefactor: f64,
}

impl PowerRaiseWorkload {
    /// The paper's configuration: half the nodes, given factor.
    pub fn paper(raisefactor: f64) -> Self {
        PowerRaiseWorkload {
            fraction: 0.5,
            raisefactor,
        }
    }

    /// Picks the victims from the current network and emits `SetRange`
    /// events raising each one's range by `raisefactor`.
    pub fn generate<R: Rng + ?Sized>(&self, net: &Network, rng: &mut R) -> Vec<Event> {
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "fraction must be in [0,1], got {}",
            self.fraction
        );
        assert!(
            self.raisefactor >= 1.0,
            "raisefactor must be >= 1 (this is a raise), got {}",
            self.raisefactor
        );
        // The shuffle needs an owned list; collect from the borrowing
        // iterator.
        let mut ids: Vec<NodeId> = net.iter_nodes().collect();
        ids.shuffle(rng);
        let k = ((ids.len() as f64) * self.fraction).round() as usize;
        ids.truncate(k);
        ids.sort_unstable(); // deterministic application order
        ids.into_iter()
            .map(|id| {
                let cur = net.config(id).expect("listed node exists").range;
                Event::SetRange {
                    node: id,
                    range: cur * self.raisefactor,
                }
            })
            .collect()
    }
}

/// §5.3 movement workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct MovementWorkload {
    /// Maximum displacement per move (`maxdisp`).
    pub maxdisp: f64,
    /// Number of rounds (`RoundNo`); each round moves every node once.
    pub rounds: usize,
    /// Deployment arena (moves are clamped to it).
    pub arena: Rect,
}

impl MovementWorkload {
    /// The paper's configuration.
    pub fn paper(maxdisp: f64, rounds: usize) -> Self {
        MovementWorkload {
            maxdisp,
            rounds,
            arena: Rect::paper_arena(),
        }
    }

    /// Generates **one round** of moves against the current network
    /// state: every present node moves once, in ascending id order
    /// (the paper moves them "one by one").
    pub fn generate_round<R: Rng + ?Sized>(&self, net: &Network, rng: &mut R) -> Vec<Event> {
        net.iter_nodes()
            .map(|id| {
                let from = net.config(id).expect("listed node exists").pos;
                Event::Move {
                    node: id,
                    to: sample::random_move(rng, from, self.maxdisp, &self.arena),
                }
            })
            .collect()
    }
}

/// A sustained arrival/departure churn workload: each step is a join
/// with probability `join_prob` (position/range as in [`JoinWorkload`])
/// or otherwise the departure of a uniformly random present node. The
/// population hovers around `join_prob / (1 - join_prob)` times the
/// departure pressure; used by the long-horizon stability studies.
#[derive(Debug, Clone, Copy)]
pub struct ChurnWorkload {
    /// Probability that a step is a join (vs a leave).
    pub join_prob: f64,
    /// Number of steps to generate.
    pub steps: usize,
    /// Range bounds for joiners.
    pub minr: f64,
    /// Upper range bound.
    pub maxr: f64,
    /// Deployment arena.
    pub arena: Rect,
}

impl ChurnWorkload {
    /// A churn workload with the paper's range parameters.
    pub fn paper(steps: usize, join_prob: f64) -> Self {
        ChurnWorkload {
            join_prob,
            steps,
            minr: 20.5,
            maxr: 30.5,
            arena: Rect::paper_arena(),
        }
    }

    /// Generates the next step against the current network state (the
    /// leave target depends on who is present, so churn is generated
    /// step by step).
    pub fn next_event<R: Rng + ?Sized>(&self, net: &Network, rng: &mut R) -> Event {
        assert!(
            (0.0..=1.0).contains(&self.join_prob),
            "join_prob must be a probability"
        );
        let count = net.node_count();
        if count == 0 || rng.gen_bool(self.join_prob) {
            Event::Join {
                cfg: NodeConfig::new(
                    sample::uniform_point(rng, &self.arena),
                    sample::uniform_range(rng, self.minr, self.maxr),
                ),
            }
        } else {
            let k = rng.gen_range(0..count);
            Event::Leave {
                node: net.iter_nodes().nth(k).expect("k < node_count"),
            }
        }
    }
}

/// Where joining nodes are placed.
///
/// [`Placement::Uniform`] reproduces the paper's §5 deployment
/// (positions independently uniform over the arena).
/// [`Placement::Clustered`] scatters joiners gaussianly around a fixed
/// set of cluster centers — the Poisson-clustered deployment model
/// studied for discrete power control (Liu et al.), which produces
/// dense conflict hot-spots instead of uniform density.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Uniform over the arena (paper default).
    Uniform {
        /// Deployment arena.
        arena: Rect,
    },
    /// Gaussian scatter of `spread` per axis around a uniformly random
    /// cluster center per join, clamped to the arena.
    Clustered {
        /// Cluster centers (sampled once per replicate by the caller).
        centers: Vec<Point>,
        /// Per-axis standard deviation of the member scatter.
        spread: f64,
        /// Deployment arena (members are clamped into it).
        arena: Rect,
    },
}

impl Placement {
    /// The deployment arena.
    pub fn arena(&self) -> &Rect {
        match self {
            Placement::Uniform { arena } => arena,
            Placement::Clustered { arena, .. } => arena,
        }
    }

    /// Samples one joiner position.
    ///
    /// # Panics
    /// Panics on a clustered placement with no centers.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        match self {
            Placement::Uniform { arena } => sample::uniform_point(rng, arena),
            Placement::Clustered {
                centers,
                spread,
                arena,
            } => {
                assert!(!centers.is_empty(), "clustered placement needs centers");
                let center = centers[rng.gen_range(0..centers.len())];
                sample::clustered_point(rng, center, *spread, arena)
            }
        }
    }
}

/// How joiner transmission ranges are drawn.
///
/// [`RangeDist::Interval`] is the paper's `(minr, maxr)` uniform draw.
/// [`RangeDist::Heterogeneous`] mixes a short-range majority with a
/// long-range minority (relays/gateways), the regime where power
/// heterogeneity drives asymmetric `1n`/`3n` partitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeDist {
    /// Uniform over `(minr, maxr)` — the paper's distribution.
    Interval {
        /// Lower range bound.
        minr: f64,
        /// Upper range bound.
        maxr: f64,
    },
    /// With probability `long_fraction` draw uniformly from `long`,
    /// otherwise from `short`. Both are `(min, max)` intervals.
    Heterogeneous {
        /// Range interval of the short-range majority.
        short: (f64, f64),
        /// Range interval of the long-range minority.
        long: (f64, f64),
        /// Probability that a joiner belongs to the long-range class.
        long_fraction: f64,
    },
}

impl RangeDist {
    /// The paper's default interval `(20.5, 30.5)`.
    pub fn paper() -> Self {
        RangeDist::Interval {
            minr: 20.5,
            maxr: 30.5,
        }
    }

    /// Samples one transmission range.
    ///
    /// # Panics
    /// Panics on invalid intervals or a `long_fraction` outside `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            RangeDist::Interval { minr, maxr } => sample::uniform_range(rng, minr, maxr),
            RangeDist::Heterogeneous {
                short,
                long,
                long_fraction,
            } => {
                assert!(
                    (0.0..=1.0).contains(&long_fraction),
                    "long_fraction must be a probability, got {long_fraction}"
                );
                if rng.gen_bool(long_fraction) {
                    sample::uniform_range(rng, long.0, long.1)
                } else {
                    sample::uniform_range(rng, short.0, short.1)
                }
            }
        }
    }

    /// An upper bound on any sampled range — used to size spatial-grid
    /// cells before the first draw.
    pub fn upper_bound(&self) -> f64 {
        match *self {
            RangeDist::Interval { maxr, .. } => maxr,
            RangeDist::Heterogeneous { short, long, .. } => short.1.max(long.1),
        }
    }
}

/// Fully interleaved churn: every step is a join (probability
/// `join_prob`), a departure of a random present node (`leave_prob`),
/// or a single random-displacement move of a present node (the
/// remainder). On an empty network every step is a join.
///
/// This is the workload the paper's evaluation never runs — all four
/// event handlers firing against each other in one stream — and the
/// one long-lived deployments actually see.
#[derive(Debug, Clone, PartialEq)]
pub struct MixWorkload {
    /// Number of steps to generate.
    pub steps: usize,
    /// Probability that a step is a join.
    pub join_prob: f64,
    /// Probability that a step is a departure.
    pub leave_prob: f64,
    /// Maximum displacement of a move step.
    pub maxdisp: f64,
    /// Placement of joiners.
    pub placement: Placement,
    /// Range distribution of joiners.
    pub ranges: RangeDist,
}

impl MixWorkload {
    /// Generates the next step against the current network state (leave
    /// and move targets depend on who is present, so the mix is
    /// generated step by step).
    ///
    /// # Panics
    /// Panics if the probabilities are negative or sum past 1.
    pub fn next_event<R: Rng + ?Sized>(&self, net: &Network, rng: &mut R) -> Event {
        assert!(
            self.join_prob >= 0.0 && self.leave_prob >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(
            self.join_prob + self.leave_prob <= 1.0 + 1e-12,
            "join_prob + leave_prob must be <= 1, got {} + {}",
            self.join_prob,
            self.leave_prob
        );
        let count = net.node_count();
        let u: f64 = rng.gen();
        let pick = |net: &Network, k: usize| -> NodeId {
            net.iter_nodes().nth(k).expect("k < node_count")
        };
        if count == 0 || u < self.join_prob {
            Event::Join {
                cfg: NodeConfig::new(self.placement.sample(rng), self.ranges.sample(rng)),
            }
        } else if u < self.join_prob + self.leave_prob {
            Event::Leave {
                node: pick(net, rng.gen_range(0..count)),
            }
        } else {
            let node = pick(net, rng.gen_range(0..count));
            let from = net.config(node).expect("listed node exists").pos;
            Event::Move {
                node,
                to: sample::random_move(rng, from, self.maxdisp, self.placement.arena()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn join_workload_respects_parameters() {
        let w = JoinWorkload::paper(50);
        let mut rng = StdRng::seed_from_u64(1);
        let events = w.generate(&mut rng);
        assert_eq!(events.len(), 50);
        for e in &events {
            let Event::Join { cfg } = e else {
                panic!("non-join event in join workload");
            };
            assert!(w.arena.contains(&cfg.pos));
            assert!((w.minr..w.maxr).contains(&cfg.range));
        }
    }

    #[test]
    fn with_avg_range_centers_interval() {
        let w = JoinWorkload::with_avg_range(10, 40.0);
        assert_eq!(w.minr, 37.5);
        assert_eq!(w.maxr, 42.5);
        // Clamped at zero for small averages.
        let w = JoinWorkload::with_avg_range(10, 1.0);
        assert_eq!(w.minr, 0.0);
    }

    #[test]
    fn power_raise_targets_half_the_nodes() {
        let mut net = Network::new(10.0);
        let mut rng = StdRng::seed_from_u64(2);
        for e in JoinWorkload::paper(20).generate(&mut rng) {
            crate::event::apply_topology(&mut net, &e);
        }
        let w = PowerRaiseWorkload::paper(3.0);
        let events = w.generate(&net, &mut rng);
        assert_eq!(events.len(), 10);
        for e in &events {
            let Event::SetRange { node, range } = e else {
                panic!("non-range event");
            };
            let cur = net.config(*node).unwrap().range;
            assert!((range / cur - 3.0).abs() < 1e-9);
        }
        // Events are sorted by node id (deterministic application).
        let ids: Vec<NodeId> = events
            .iter()
            .map(|e| match e {
                Event::SetRange { node, .. } => *node,
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    #[should_panic(expected = "raisefactor")]
    fn power_raise_below_one_panics() {
        let net = Network::new(10.0);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = PowerRaiseWorkload {
            fraction: 0.5,
            raisefactor: 0.5,
        }
        .generate(&net, &mut rng);
    }

    #[test]
    fn movement_round_moves_every_node_within_bounds() {
        let mut net = Network::new(10.0);
        let mut rng = StdRng::seed_from_u64(4);
        for e in JoinWorkload::paper(15).generate(&mut rng) {
            crate::event::apply_topology(&mut net, &e);
        }
        let w = MovementWorkload::paper(40.0, 1);
        let events = w.generate_round(&net, &mut rng);
        assert_eq!(events.len(), 15);
        for e in &events {
            let Event::Move { node, to } = e else {
                panic!("non-move event");
            };
            assert!(w.arena.contains(to));
            let from = net.config(*node).unwrap().pos;
            assert!(from.dist(to) <= 40.0 + 1e-9);
        }
    }

    #[test]
    fn churn_keeps_population_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Network::new(25.0);
        let w = ChurnWorkload::paper(400, 0.5);
        let mut joins = 0usize;
        let mut leaves = 0usize;
        for _ in 0..w.steps {
            let e = w.next_event(&net, &mut rng);
            match &e {
                Event::Join { .. } => joins += 1,
                Event::Leave { .. } => leaves += 1,
                _ => panic!("churn emits only joins/leaves"),
            }
            crate::event::apply_topology(&mut net, &e);
        }
        assert_eq!(joins + leaves, 400);
        // Balanced churn keeps both kinds frequent.
        assert!(joins > 100 && leaves > 100);
        // Leaves always target present nodes, so this never panicked
        // and the population is consistent.
        assert_eq!(net.node_count(), joins - leaves);
    }

    #[test]
    fn churn_with_certain_join_only_grows() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Network::new(25.0);
        let w = ChurnWorkload::paper(30, 1.0);
        for _ in 0..w.steps {
            let e = w.next_event(&net, &mut rng);
            assert!(matches!(e, Event::Join { .. }));
            crate::event::apply_topology(&mut net, &e);
        }
        assert_eq!(net.node_count(), 30);
    }

    #[test]
    fn clustered_placement_concentrates_density() {
        let arena = Rect::paper_arena();
        let centers = vec![Point::new(20.0, 20.0), Point::new(80.0, 80.0)];
        let placement = Placement::Clustered {
            centers: centers.clone(),
            spread: 4.0,
            arena,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut near = 0usize;
        for _ in 0..500 {
            let p = placement.sample(&mut rng);
            assert!(arena.contains(&p));
            if centers.iter().any(|c| c.dist(&p) < 16.0) {
                near += 1;
            }
        }
        // 4 sigma covers essentially everything.
        assert!(near > 480, "only {near}/500 samples near a center");
    }

    #[test]
    fn heterogeneous_ranges_hit_both_classes() {
        let dist = RangeDist::Heterogeneous {
            short: (8.0, 12.0),
            long: (30.0, 40.0),
            long_fraction: 0.3,
        };
        assert_eq!(dist.upper_bound(), 40.0);
        let mut rng = StdRng::seed_from_u64(12);
        let mut longs = 0usize;
        for _ in 0..1000 {
            let r = dist.sample(&mut rng);
            assert!((8.0..12.0).contains(&r) || (30.0..40.0).contains(&r));
            if r >= 30.0 {
                longs += 1;
            }
        }
        assert!((200..400).contains(&longs), "long draws = {longs}");
    }

    #[test]
    fn mix_workload_interleaves_all_event_kinds() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Network::new(25.0);
        let w = MixWorkload {
            steps: 300,
            join_prob: 0.4,
            leave_prob: 0.2,
            maxdisp: 20.0,
            placement: Placement::Uniform {
                arena: Rect::paper_arena(),
            },
            ranges: RangeDist::paper(),
        };
        let (mut joins, mut leaves, mut moves) = (0usize, 0usize, 0usize);
        for _ in 0..w.steps {
            let e = w.next_event(&net, &mut rng);
            match &e {
                Event::Join { .. } => joins += 1,
                Event::Leave { .. } => leaves += 1,
                Event::Move { .. } => moves += 1,
                Event::SetRange { .. } => panic!("mix never changes power"),
            }
            crate::event::apply_topology(&mut net, &e);
        }
        assert_eq!(joins + leaves + moves, 300);
        assert!(joins > 60 && leaves > 20 && moves > 60);
        // Leaves never outnumber joins (they only target present nodes).
        assert_eq!(net.node_count(), joins - leaves);
    }

    #[test]
    #[should_panic(expected = "join_prob + leave_prob")]
    fn mix_workload_rejects_overweight_probabilities() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut net = Network::new(25.0);
        net.join(NodeConfig::new(Point::new(1.0, 1.0), 5.0));
        let w = MixWorkload {
            steps: 1,
            join_prob: 0.7,
            leave_prob: 0.7,
            maxdisp: 5.0,
            placement: Placement::Uniform {
                arena: Rect::paper_arena(),
            },
            ranges: RangeDist::paper(),
        };
        let _ = w.next_event(&net, &mut rng);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let w = JoinWorkload::paper(10);
        let a = w.generate(&mut StdRng::seed_from_u64(7));
        let b = w.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = w.generate(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}
