//! Random workload generators matching §5 of the paper.
//!
//! * [`JoinWorkload`] — §5.1: `N` nodes join consecutively, positions
//!   uniform in the arena, ranges uniform in `(minr, maxr)`.
//! * [`PowerRaiseWorkload`] — §5.2: half the nodes (chosen at random)
//!   raise their range by a factor `raisefactor`.
//! * [`MovementWorkload`] — §5.3: `RoundNo` rounds, each moving every
//!   node once, in a random direction by a displacement uniform in
//!   `[0, maxdisp]`.
//!
//! Generators are deterministic given an `Rng`, and produce concrete
//! event lists against the current network state.

use crate::event::Event;
use crate::{Network, NodeConfig};
use minim_geom::{sample, Rect};
use minim_graph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// §5.1 join workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct JoinWorkload {
    /// Number of consecutive joins (`N`).
    pub count: usize,
    /// Lower range bound (`minr`), paper default 20.5.
    pub minr: f64,
    /// Upper range bound (`maxr`), paper default 30.5.
    pub maxr: f64,
    /// Deployment arena, paper default `[0,100]²`.
    pub arena: Rect,
}

impl JoinWorkload {
    /// The paper's default join workload with `count` nodes.
    pub fn paper(count: usize) -> Self {
        JoinWorkload {
            count,
            minr: 20.5,
            maxr: 30.5,
            arena: Rect::paper_arena(),
        }
    }

    /// Variant used by the Fig 10(d–f) sweep: ranges uniform in an
    /// interval of width 5 centered on `avg_r`.
    pub fn with_avg_range(count: usize, avg_r: f64) -> Self {
        JoinWorkload {
            count,
            minr: (avg_r - 2.5).max(0.0),
            maxr: avg_r + 2.5,
            arena: Rect::paper_arena(),
        }
    }

    /// Generates the join events.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Event> {
        (0..self.count)
            .map(|_| Event::Join {
                cfg: NodeConfig::new(
                    sample::uniform_point(rng, &self.arena),
                    sample::uniform_range(rng, self.minr, self.maxr),
                ),
            })
            .collect()
    }
}

/// §5.2 power-raise workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerRaiseWorkload {
    /// Fraction of nodes whose range is raised (paper: 0.5).
    pub fraction: f64,
    /// Multiplicative raise factor (`raisefactor`, swept 1..6).
    pub raisefactor: f64,
}

impl PowerRaiseWorkload {
    /// The paper's configuration: half the nodes, given factor.
    pub fn paper(raisefactor: f64) -> Self {
        PowerRaiseWorkload {
            fraction: 0.5,
            raisefactor,
        }
    }

    /// Picks the victims from the current network and emits `SetRange`
    /// events raising each one's range by `raisefactor`.
    pub fn generate<R: Rng + ?Sized>(&self, net: &Network, rng: &mut R) -> Vec<Event> {
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "fraction must be in [0,1], got {}",
            self.fraction
        );
        assert!(
            self.raisefactor >= 1.0,
            "raisefactor must be >= 1 (this is a raise), got {}",
            self.raisefactor
        );
        let mut ids: Vec<NodeId> = net.node_ids();
        ids.shuffle(rng);
        let k = ((ids.len() as f64) * self.fraction).round() as usize;
        ids.truncate(k);
        ids.sort_unstable(); // deterministic application order
        ids.into_iter()
            .map(|id| {
                let cur = net.config(id).expect("listed node exists").range;
                Event::SetRange {
                    node: id,
                    range: cur * self.raisefactor,
                }
            })
            .collect()
    }
}

/// §5.3 movement workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct MovementWorkload {
    /// Maximum displacement per move (`maxdisp`).
    pub maxdisp: f64,
    /// Number of rounds (`RoundNo`); each round moves every node once.
    pub rounds: usize,
    /// Deployment arena (moves are clamped to it).
    pub arena: Rect,
}

impl MovementWorkload {
    /// The paper's configuration.
    pub fn paper(maxdisp: f64, rounds: usize) -> Self {
        MovementWorkload {
            maxdisp,
            rounds,
            arena: Rect::paper_arena(),
        }
    }

    /// Generates **one round** of moves against the current network
    /// state: every present node moves once, in ascending id order
    /// (the paper moves them "one by one").
    pub fn generate_round<R: Rng + ?Sized>(&self, net: &Network, rng: &mut R) -> Vec<Event> {
        net.iter_nodes()
            .map(|id| {
                let from = net.config(id).expect("listed node exists").pos;
                Event::Move {
                    node: id,
                    to: sample::random_move(rng, from, self.maxdisp, &self.arena),
                }
            })
            .collect()
    }
}

/// A sustained arrival/departure churn workload: each step is a join
/// with probability `join_prob` (position/range as in [`JoinWorkload`])
/// or otherwise the departure of a uniformly random present node. The
/// population hovers around `join_prob / (1 - join_prob)` times the
/// departure pressure; used by the long-horizon stability studies.
#[derive(Debug, Clone, Copy)]
pub struct ChurnWorkload {
    /// Probability that a step is a join (vs a leave).
    pub join_prob: f64,
    /// Number of steps to generate.
    pub steps: usize,
    /// Range bounds for joiners.
    pub minr: f64,
    /// Upper range bound.
    pub maxr: f64,
    /// Deployment arena.
    pub arena: Rect,
}

impl ChurnWorkload {
    /// A churn workload with the paper's range parameters.
    pub fn paper(steps: usize, join_prob: f64) -> Self {
        ChurnWorkload {
            join_prob,
            steps,
            minr: 20.5,
            maxr: 30.5,
            arena: Rect::paper_arena(),
        }
    }

    /// Generates the next step against the current network state (the
    /// leave target depends on who is present, so churn is generated
    /// step by step).
    pub fn next_event<R: Rng + ?Sized>(&self, net: &Network, rng: &mut R) -> Event {
        assert!(
            (0.0..=1.0).contains(&self.join_prob),
            "join_prob must be a probability"
        );
        let ids = net.node_ids();
        if ids.is_empty() || rng.gen_bool(self.join_prob) {
            Event::Join {
                cfg: NodeConfig::new(
                    sample::uniform_point(rng, &self.arena),
                    sample::uniform_range(rng, self.minr, self.maxr),
                ),
            }
        } else {
            Event::Leave {
                node: ids[rng.gen_range(0..ids.len())],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn join_workload_respects_parameters() {
        let w = JoinWorkload::paper(50);
        let mut rng = StdRng::seed_from_u64(1);
        let events = w.generate(&mut rng);
        assert_eq!(events.len(), 50);
        for e in &events {
            let Event::Join { cfg } = e else {
                panic!("non-join event in join workload");
            };
            assert!(w.arena.contains(&cfg.pos));
            assert!((w.minr..w.maxr).contains(&cfg.range));
        }
    }

    #[test]
    fn with_avg_range_centers_interval() {
        let w = JoinWorkload::with_avg_range(10, 40.0);
        assert_eq!(w.minr, 37.5);
        assert_eq!(w.maxr, 42.5);
        // Clamped at zero for small averages.
        let w = JoinWorkload::with_avg_range(10, 1.0);
        assert_eq!(w.minr, 0.0);
    }

    #[test]
    fn power_raise_targets_half_the_nodes() {
        let mut net = Network::new(10.0);
        let mut rng = StdRng::seed_from_u64(2);
        for e in JoinWorkload::paper(20).generate(&mut rng) {
            crate::event::apply_topology(&mut net, &e);
        }
        let w = PowerRaiseWorkload::paper(3.0);
        let events = w.generate(&net, &mut rng);
        assert_eq!(events.len(), 10);
        for e in &events {
            let Event::SetRange { node, range } = e else {
                panic!("non-range event");
            };
            let cur = net.config(*node).unwrap().range;
            assert!((range / cur - 3.0).abs() < 1e-9);
        }
        // Events are sorted by node id (deterministic application).
        let ids: Vec<NodeId> = events
            .iter()
            .map(|e| match e {
                Event::SetRange { node, .. } => *node,
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    #[should_panic(expected = "raisefactor")]
    fn power_raise_below_one_panics() {
        let net = Network::new(10.0);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = PowerRaiseWorkload {
            fraction: 0.5,
            raisefactor: 0.5,
        }
        .generate(&net, &mut rng);
    }

    #[test]
    fn movement_round_moves_every_node_within_bounds() {
        let mut net = Network::new(10.0);
        let mut rng = StdRng::seed_from_u64(4);
        for e in JoinWorkload::paper(15).generate(&mut rng) {
            crate::event::apply_topology(&mut net, &e);
        }
        let w = MovementWorkload::paper(40.0, 1);
        let events = w.generate_round(&net, &mut rng);
        assert_eq!(events.len(), 15);
        for e in &events {
            let Event::Move { node, to } = e else {
                panic!("non-move event");
            };
            assert!(w.arena.contains(to));
            let from = net.config(*node).unwrap().pos;
            assert!(from.dist(to) <= 40.0 + 1e-9);
        }
    }

    #[test]
    fn churn_keeps_population_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Network::new(25.0);
        let w = ChurnWorkload::paper(400, 0.5);
        let mut joins = 0usize;
        let mut leaves = 0usize;
        for _ in 0..w.steps {
            let e = w.next_event(&net, &mut rng);
            match &e {
                Event::Join { .. } => joins += 1,
                Event::Leave { .. } => leaves += 1,
                _ => panic!("churn emits only joins/leaves"),
            }
            crate::event::apply_topology(&mut net, &e);
        }
        assert_eq!(joins + leaves, 400);
        // Balanced churn keeps both kinds frequent.
        assert!(joins > 100 && leaves > 100);
        // Leaves always target present nodes, so this never panicked
        // and the population is consistent.
        assert_eq!(net.node_count(), joins - leaves);
    }

    #[test]
    fn churn_with_certain_join_only_grows() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Network::new(25.0);
        let w = ChurnWorkload::paper(30, 1.0);
        for _ in 0..w.steps {
            let e = w.next_event(&net, &mut rng);
            assert!(matches!(e, Event::Join { .. }));
            crate::event::apply_topology(&mut net, &e);
        }
        assert_eq!(net.node_count(), 30);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let w = JoinWorkload::paper(10);
        let a = w.generate(&mut StdRng::seed_from_u64(7));
        let b = w.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = w.generate(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}
