//! Mobility models beyond §5.3's random-displacement rounds.
//!
//! The paper's movement experiment teleports nodes by uniform random
//! displacements. Real ad-hoc deployments (the §1 scenarios: conference
//! floors, battlefields, satellite constellations) move with temporal
//! correlation, which stresses `RecodeOnMove` differently: many small
//! correlated hops instead of rare large ones. Two standard models are
//! provided:
//!
//! * [`RandomWaypoint`] — each node picks a destination uniformly in
//!   the arena and a speed, walks toward it tick by tick, then picks a
//!   new one. The de-facto standard MANET mobility model.
//! * [`GroupMobility`] — reference-point group mobility (RPGM): each
//!   group's virtual reference point does a random waypoint walk;
//!   members hold formation offsets around it with bounded jitter.
//!
//! Both are deterministic given an `Rng` and emit ordinary
//! [`Event::Move`]s, so every strategy and experiment consumes them
//! unchanged.

use crate::event::Event;
use crate::Network;
use minim_geom::{sample, Point, Rect};
use minim_graph::NodeId;
use rand::Rng;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Waypoint {
    destination: Point,
    speed: f64,
}

/// Per-node random-waypoint walker.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    arena: Rect,
    min_speed: f64,
    max_speed: f64,
    state: HashMap<NodeId, Waypoint>,
}

impl RandomWaypoint {
    /// Creates the model. Speeds are drawn uniformly per leg.
    ///
    /// # Panics
    /// Panics unless `0 < min_speed <= max_speed`.
    pub fn new(arena: Rect, min_speed: f64, max_speed: f64) -> Self {
        assert!(
            0.0 < min_speed && min_speed <= max_speed,
            "need 0 < min_speed <= max_speed, got {min_speed}..{max_speed}"
        );
        RandomWaypoint {
            arena,
            min_speed,
            max_speed,
            state: HashMap::new(),
        }
    }

    fn fresh_leg<R: Rng + ?Sized>(&self, rng: &mut R) -> Waypoint {
        Waypoint {
            destination: sample::uniform_point(rng, &self.arena),
            speed: rng.gen_range(self.min_speed..=self.max_speed),
        }
    }

    /// Advances every present node by `dt` time units, returning one
    /// `Move` per node (in id order). Nodes appearing for the first
    /// time get a fresh leg; nodes that left the network are forgotten.
    pub fn tick<R: Rng + ?Sized>(&mut self, net: &Network, dt: f64, rng: &mut R) -> Vec<Event> {
        assert!(dt > 0.0, "dt must be positive");
        self.state.retain(|id, _| net.contains(*id));
        let mut events = Vec::with_capacity(net.node_count());
        for id in net.iter_nodes() {
            let here = net.config(id).expect("listed node exists").pos;
            let mut leg = match self.state.get(&id) {
                Some(&l) => l,
                None => self.fresh_leg(rng),
            };
            let mut budget = leg.speed * dt;
            let mut pos = here;
            // Walk legs until the tick budget is spent (a node can
            // reach its waypoint mid-tick and start the next leg).
            loop {
                let remaining = pos.dist(&leg.destination);
                if remaining <= budget {
                    pos = leg.destination;
                    budget -= remaining;
                    leg = self.fresh_leg(rng);
                    if budget <= 1e-12 {
                        break;
                    }
                } else {
                    let frac = budget / remaining;
                    pos = Point::new(
                        pos.x + (leg.destination.x - pos.x) * frac,
                        pos.y + (leg.destination.y - pos.y) * frac,
                    );
                    break;
                }
            }
            self.state.insert(id, leg);
            events.push(Event::Move {
                node: id,
                to: self.arena.clamp(pos),
            });
        }
        events
    }
}

/// One mobility group: a virtual reference point plus member offsets.
#[derive(Debug, Clone)]
struct Group {
    members: Vec<(NodeId, Point)>, // (node, formation offset)
    reference: Point,
    leg: Waypoint,
}

/// Reference-point group mobility (RPGM).
#[derive(Debug, Clone)]
pub struct GroupMobility {
    arena: Rect,
    speed: f64,
    jitter: f64,
    groups: Vec<Group>,
}

impl GroupMobility {
    /// Creates the model from explicit group memberships. Each member's
    /// formation offset is its current position relative to the group
    /// centroid; per tick it tracks `reference + offset` with uniform
    /// jitter of at most `jitter`.
    ///
    /// # Panics
    /// Panics on empty groups, non-positive speed, or negative jitter.
    pub fn new<R: Rng + ?Sized>(
        net: &Network,
        arena: Rect,
        groups: &[Vec<NodeId>],
        speed: f64,
        jitter: f64,
        rng: &mut R,
    ) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        assert!(jitter >= 0.0, "jitter must be non-negative");
        let built = groups
            .iter()
            .map(|members| {
                assert!(!members.is_empty(), "empty mobility group");
                let pts: Vec<Point> = members
                    .iter()
                    .map(|&m| net.config(m).expect("group member must exist").pos)
                    .collect();
                let cx = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
                let cy = pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64;
                let reference = Point::new(cx, cy);
                Group {
                    members: members
                        .iter()
                        .zip(&pts)
                        .map(|(&m, p)| (m, Point::new(p.x - cx, p.y - cy)))
                        .collect(),
                    reference,
                    leg: Waypoint {
                        destination: sample::uniform_point(rng, &arena),
                        speed,
                    },
                }
            })
            .collect();
        GroupMobility {
            arena,
            speed,
            jitter,
            groups: built,
        }
    }

    /// Advances every group's reference point by `dt` and emits one
    /// `Move` per surviving member toward its formation slot.
    pub fn tick<R: Rng + ?Sized>(&mut self, net: &Network, dt: f64, rng: &mut R) -> Vec<Event> {
        assert!(dt > 0.0, "dt must be positive");
        let mut events = Vec::new();
        for group in &mut self.groups {
            // Move the reference point along its leg.
            let budget = group.leg.speed * dt;
            let remaining = group.reference.dist(&group.leg.destination);
            if remaining <= budget {
                group.reference = group.leg.destination;
                group.leg = Waypoint {
                    destination: sample::uniform_point(rng, &self.arena),
                    speed: self.speed,
                };
            } else {
                let frac = budget / remaining;
                group.reference = Point::new(
                    group.reference.x + (group.leg.destination.x - group.reference.x) * frac,
                    group.reference.y + (group.leg.destination.y - group.reference.y) * frac,
                );
            }
            for &(member, offset) in &group.members {
                if !net.contains(member) {
                    continue;
                }
                let jx = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..=self.jitter)
                } else {
                    0.0
                };
                let jy = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..=self.jitter)
                } else {
                    0.0
                };
                let slot = Point::new(
                    group.reference.x + offset.x + jx,
                    group.reference.y + offset.y + jy,
                );
                events.push(Event::Move {
                    node: member,
                    to: self.arena.clamp(slot),
                });
            }
        }
        events.sort_by_key(|e| match e {
            Event::Move { node, .. } => *node,
            _ => unreachable!("group mobility emits only moves"),
        });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::apply_topology;
    use crate::workload::JoinWorkload;
    use crate::NodeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn populated(n: usize, seed: u64) -> (Network, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(25.0);
        for e in JoinWorkload::paper(n).generate(&mut rng) {
            apply_topology(&mut net, &e);
        }
        (net, rng)
    }

    #[test]
    fn waypoint_moves_are_speed_bounded_and_in_arena() {
        let (mut net, mut rng) = populated(20, 1);
        let mut model = RandomWaypoint::new(Rect::paper_arena(), 1.0, 5.0);
        for _ in 0..50 {
            let events = model.tick(&net, 2.0, &mut rng);
            assert_eq!(events.len(), 20);
            for e in &events {
                let Event::Move { node, to } = e else {
                    panic!()
                };
                let from = net.config(*node).unwrap().pos;
                // Max travel = max_speed * dt (+ slack for multi-leg
                // corners, which can only shorten net displacement).
                assert!(from.dist(to) <= 5.0 * 2.0 + 1e-9);
                assert!(Rect::paper_arena().contains(to));
                apply_topology(&mut net, e);
            }
        }
    }

    #[test]
    fn waypoint_walker_makes_progress() {
        let (mut net, mut rng) = populated(5, 2);
        let mut model = RandomWaypoint::new(Rect::paper_arena(), 2.0, 2.0);
        // Total path length over many ticks ~ speed * time.
        let mut travelled = 0.0;
        for _ in 0..100 {
            for e in model.tick(&net, 1.0, &mut rng) {
                let Event::Move { node, to } = e else {
                    panic!()
                };
                travelled += net.config(node).unwrap().pos.dist(&to);
                apply_topology(&mut net, &Event::Move { node, to });
            }
        }
        // 5 nodes × 100 ticks × speed 2 = 1000 expected; corners lose a
        // little. Require at least half.
        assert!(travelled > 500.0, "travelled only {travelled}");
    }

    #[test]
    fn waypoint_forgets_departed_nodes() {
        let (mut net, mut rng) = populated(6, 3);
        let mut model = RandomWaypoint::new(Rect::paper_arena(), 1.0, 2.0);
        model.tick(&net, 1.0, &mut rng);
        let victim = net.node_ids()[0];
        net.remove_node(victim);
        let events = model.tick(&net, 1.0, &mut rng);
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| match e {
            Event::Move { node, .. } => *node != victim,
            _ => false,
        }));
    }

    #[test]
    fn group_mobility_keeps_formation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Network::new(25.0);
        // Two tight squads far apart.
        let mut squads = Vec::new();
        for (gx, gy) in [(20.0, 20.0), (80.0, 80.0)] {
            let mut squad = Vec::new();
            for k in 0..4 {
                let id = net.join(NodeConfig::new(
                    Point::new(gx + (k % 2) as f64 * 3.0, gy + (k / 2) as f64 * 3.0),
                    10.0,
                ));
                squad.push(id);
            }
            squads.push(squad);
        }
        let mut model = GroupMobility::new(&net, Rect::paper_arena(), &squads, 4.0, 0.5, &mut rng);
        for _ in 0..60 {
            for e in model.tick(&net, 1.0, &mut rng) {
                apply_topology(&mut net, &e);
            }
            net.check_topology();
            // Formation: within each squad, pairwise distances stay
            // near the original 3–4.3 spread (+ 2×jitter slack).
            for squad in &squads {
                for (i, &a) in squad.iter().enumerate() {
                    for &b in &squad[i + 1..] {
                        let d = net.config(a).unwrap().pos.dist(&net.config(b).unwrap().pos);
                        assert!(d <= 4.3 + 2.0, "squad drifted apart: {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn group_reference_points_travel() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Network::new(25.0);
        let squad: Vec<NodeId> = (0..3)
            .map(|k| net.join(NodeConfig::new(Point::new(10.0 + k as f64, 10.0), 8.0)))
            .collect();
        let start = net.config(squad[0]).unwrap().pos;
        let mut model = GroupMobility::new(
            &net,
            Rect::paper_arena(),
            std::slice::from_ref(&squad),
            5.0,
            0.0,
            &mut rng,
        );
        for _ in 0..40 {
            for e in model.tick(&net, 1.0, &mut rng) {
                apply_topology(&mut net, &e);
            }
        }
        let end = net.config(squad[0]).unwrap().pos;
        assert!(start.dist(&end) > 5.0, "group never went anywhere");
    }

    #[test]
    #[should_panic(expected = "min_speed")]
    fn waypoint_rejects_bad_speeds() {
        let _ = RandomWaypoint::new(Rect::paper_arena(), 0.0, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, _) = populated(10, 6);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = RandomWaypoint::new(Rect::paper_arena(), 1.0, 3.0);
            model.tick(&net, 1.5, &mut rng)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
