//! Persistent spatial-ownership shard map — the planning layer of the
//! resident executor.
//!
//! [`crate::batch::BatchPlan`] re-derives a partition from scratch for
//! every event slice: union-find over the slice's claim cells, fresh
//! shard vectors, and (in `minim-sim`'s per-slice executor) a fresh
//! subnetwork extraction walking **every node in the network** — fine
//! at `N = 10k`, a wall at `N = 10⁶`. A [`ShardMap`] inverts the
//! lifetime: the arena is partitioned once into **persistent ownership
//! regions** (grid cells mapped to a fixed set of shards, seeded from
//! the claim-cell union-find over the current node population and the
//! same cell geometry the stratified index uses), and each slice is
//! merely *routed* against that standing partition in `O(events ·
//! claim cells)` — independent of `N`.
//!
//! # Routing and the border rule
//!
//! Every event claims the same conservative footprint as the batch
//! planner: every cell intersecting a disc of radius `3B` (`4B` for
//! range changes) around its anchors, where `B` is the slice-wide
//! range bound. Routing walks the slice in order and classifies each
//! event:
//!
//! * **Interior** — every claimed cell is owned by one shard (cells
//!   not yet owned by anyone are *annexed* to that shard on the
//!   spot). The event can run on that shard's resident subnetwork,
//!   concurrently with other shards' interior events.
//! * **Border** — the claim touches cells owned by ≥ 2 shards. The
//!   event must run in the serialized border pass (see
//!   `minim-sim::runner`'s resident executor), after every earlier
//!   interior event and before every later one. Unowned claimed cells
//!   are annexed to the lowest-numbered touched shard.
//!
//! # Why this is order-sound
//!
//! Two events of one slice can read or write common state only if
//! their claims share a cell (the batch module's conservative-radius
//! argument, verbatim). Walk the routing scan: when event `a` claims
//! cell `c`, `c` ends up owned by a's shard (interior) or by some
//! touched shard (border) — ownership never changes afterwards. A
//! later event `b` claiming `c` therefore *sees* `c` owned:
//!
//! * if `b` is interior to the same shard, FIFO order within the
//!   shard preserves `a` before `b`;
//! * in every other case at least one of `a`, `b` is a border event,
//!   and the border pass is a barrier: it runs after all earlier
//!   interior events have flushed and before any later event starts.
//!
//! So every claim-sharing pair executes in original order, and
//! disjoint-claim pairs commute — the schedule is
//! conflict-serializable, equivalent to sequential execution. The
//! equivalence suite (`tests/resident_equivalence.rs`) pins the
//! resulting bit-identity; docs/ARCHITECTURE.md spells the argument
//! out alongside the replica-coherence invariant the executor
//! maintains.

use crate::event::Event;
use crate::Network;
use minim_geom::grid::{cell_coord, cell_cover};
use minim_geom::Point;
use minim_graph::{NodeId, UnionFind};
use std::collections::HashMap;

/// Seeding connects populated cells within this Chebyshev distance
/// (in cells) into one ownership region. Any value is *sound* — the
/// border rule serializes whatever the seed misses — but larger
/// values merge regions (fewer frontier crossings, less parallelism)
/// and smaller values split them (more border events). Four cells ≈
/// the `3B`–`4B` claim reach at the seeded cell size.
const SEED_REACH: i32 = 4;

/// How one routed event executes under a persistent ownership map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Every claimed cell is owned by this shard: the event runs on
    /// the shard's resident subnetwork, in parallel with other
    /// shards' interior events.
    Interior(u32),
    /// The claim crosses a shard frontier: the event runs in the
    /// serialized border pass. The owning shards it touches are
    /// `SliceRoute::touched[touched_start..touched_end]`, ascending.
    Border {
        /// Start of this event's slice of `SliceRoute::touched`.
        touched_start: u32,
        /// End (exclusive) of this event's slice of
        /// `SliceRoute::touched`.
        touched_end: u32,
    },
}

/// One slice's routing decision, with every buffer recycled across
/// slices — steady-state routing allocates nothing (pinned by
/// `tests/alloc_smoke.rs`).
#[derive(Debug, Default)]
pub struct SliceRoute {
    /// Pre-assigned join ids, parallel to the slice (`None` for
    /// non-join events) — matches sequential allocation order exactly
    /// like `BatchPlan::join_id`.
    pub join_ids: Vec<Option<NodeId>>,
    /// Per-event routing decision, parallel to the slice.
    pub disposition: Vec<Disposition>,
    /// Flattened touched-shard lists for border events; indexed by
    /// [`Disposition::Border`] ranges.
    pub touched: Vec<u32>,
    /// Number of border events in the slice (the numerator of the
    /// border-event fraction the lab reports).
    pub border_events: usize,
    /// In-slice ghost positions (joins and moves update it), cleared
    /// per route.
    ghost: HashMap<NodeId, Point>,
    /// Per-event anchor buffer.
    anchors: Vec<Point>,
    /// Distinct owners seen across the current event's claim.
    owners_seen: Vec<u32>,
}

impl SliceRoute {
    /// The touched-shard list of a border disposition (empty for
    /// interior events).
    pub fn touched_of(&self, d: Disposition) -> &[u32] {
        match d {
            Disposition::Interior(_) => &[],
            Disposition::Border {
                touched_start,
                touched_end,
            } => &self.touched[touched_start as usize..touched_end as usize],
        }
    }
}

/// A persistent partition of the arena into shard-owned cell regions.
///
/// Unlike a [`crate::BatchPlan`] — whose shards live for one slice —
/// a `ShardMap` survives across slices: ownership only ever *grows*
/// (unowned cells are annexed as events claim them), so a shard's
/// resident subnetwork stays meaningful from slice to slice. The
/// shard count is fixed at seeding and deliberately **decoupled from
/// the worker count**: routing is a single-threaded scan, so every
/// disposition, annexation, and health counter is bit-identical
/// regardless of how many threads later execute the waves.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    /// Ownership-cell side length, fixed at seeding (claim radii stay
    /// distance-based, so a per-slice range bound larger than the
    /// seeded cell only widens footprints — never unsoundness).
    cell: f64,
    owner: HashMap<(i32, i32), u32>,
    /// Owned-cell count per shard.
    owned: Vec<u32>,
    /// Round-robin cursor for events whose claims touch no owned cell
    /// yet (fresh territory).
    next_rr: u32,
}

impl ShardMap {
    /// Partitions the current node population of `net` into `shards`
    /// persistent ownership regions.
    ///
    /// Populated cells are clustered by the claim-cell union-find
    /// (cells within `SEED_REACH` union into one region — the same
    /// conservative "could share a claim" relation the batch planner
    /// closes over), then regions are dealt to shards by greedy
    /// node-count balancing, largest region first. Deterministic:
    /// cells are visited in sorted order and ties break toward the
    /// lowest shard index.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn seed(net: &Network, shards: usize) -> ShardMap {
        assert!(shards >= 1, "shard map needs at least one shard");
        let bound = net.range_bound();
        let cell = if bound > 0.0 {
            bound
        } else {
            net.cell_size_hint().max(1.0)
        };

        // Populated cells in deterministic (sorted) order, run-length
        // encoded with their node counts.
        let mut raw: Vec<(i32, i32)> = net
            .iter_nodes()
            .map(|id| {
                let p = net.config(id).expect("listed node has a config").pos;
                (cell_coord(p.x, cell), cell_coord(p.y, cell))
            })
            .collect();
        raw.sort_unstable();
        let mut cells: Vec<((i32, i32), u32)> = Vec::new();
        for c in raw {
            match cells.last_mut() {
                Some((last, count)) if *last == c => *count += 1,
                _ => cells.push((c, 1)),
            }
        }

        // Union cells within the seed reach (forward half-window, so
        // each unordered pair is probed once).
        let index: HashMap<(i32, i32), usize> = cells
            .iter()
            .enumerate()
            .map(|(i, &(c, _))| (c, i))
            .collect();
        let mut uf = UnionFind::new(cells.len());
        for (i, &((cx, cy), _)) in cells.iter().enumerate() {
            for dx in 0..=SEED_REACH {
                for dy in -SEED_REACH..=SEED_REACH {
                    if dx == 0 && dy <= 0 {
                        continue;
                    }
                    if let Some(&j) = index.get(&(cx + dx, cy + dy)) {
                        uf.union(i, j);
                    }
                }
            }
        }

        // Regions in first-cell order, with node totals.
        let mut region_of_root: HashMap<usize, usize> = HashMap::new();
        let mut region_cells: Vec<Vec<usize>> = Vec::new();
        let mut region_nodes: Vec<u64> = Vec::new();
        for (i, &(_, count)) in cells.iter().enumerate() {
            let root = uf.find(i);
            let r = *region_of_root.entry(root).or_insert_with(|| {
                region_cells.push(Vec::new());
                region_nodes.push(0);
                region_cells.len() - 1
            });
            region_cells[r].push(i);
            region_nodes[r] += count as u64;
        }

        // Greedy balance: largest region first onto the least-loaded
        // shard; ties break toward earlier regions / lower shards.
        let mut order: Vec<usize> = (0..region_cells.len()).collect();
        order.sort_by_key(|&r| (std::cmp::Reverse(region_nodes[r]), r));
        let mut load = vec![0u64; shards];
        let mut owner = HashMap::with_capacity(cells.len());
        let mut owned = vec![0u32; shards];
        for r in order {
            let s = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .expect(">= 1 shard");
            load[s] += region_nodes[r];
            for &ci in &region_cells[r] {
                owner.insert(cells[ci].0, s as u32);
                owned[s] += 1;
            }
        }

        ShardMap {
            shards,
            cell,
            owner,
            owned,
            next_rr: 0,
        }
    }

    /// The fixed shard count (the resident executor keeps one
    /// subnetwork per shard).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The ownership-cell side length.
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Shards currently owning at least one cell.
    pub fn active_shards(&self) -> u32 {
        self.owned.iter().filter(|&&c| c > 0).count() as u32
    }

    /// The shard owning the cell containing `p`, if any.
    pub fn owner_of(&self, p: &Point) -> Option<u32> {
        self.owner
            .get(&(cell_coord(p.x, self.cell), cell_coord(p.y, self.cell)))
            .copied()
    }

    /// Routes one slice against the standing partition, filling
    /// `route` (buffers recycled). Walks events in order, computing
    /// each event's conservative claim footprint exactly like
    /// `BatchPlan` (same `3B`/`4B` radii off the slice-wide range
    /// bound, ghost positions tracking in-slice joins and moves) and
    /// classifying it interior or border per the module docs. Unowned
    /// claimed cells are annexed as a side effect, so the partition
    /// is total over everything this slice can touch.
    ///
    /// Single-threaded and deterministic: the same map state and
    /// slice always produce the same route, independent of any worker
    /// count.
    ///
    /// # Panics
    /// Panics if an event references a node that is neither present
    /// in `net` nor created by an earlier event of the slice.
    pub fn route(&mut self, net: &Network, events: &[Event], route: &mut SliceRoute) {
        route.join_ids.clear();
        route.join_ids.resize(events.len(), None);
        route.disposition.clear();
        route.touched.clear();
        route.border_events = 0;
        route.ghost.clear();

        // Slice-wide range bound, exactly as the batch planner joins
        // it: conservative for every event of the slice.
        let mut bound = net.range_bound();
        for e in events {
            match e {
                Event::Join { cfg } => bound = bound.max(cfg.range),
                Event::SetRange { range, .. } => bound = bound.max(*range),
                _ => {}
            }
        }

        let pos_of = |ghost: &HashMap<NodeId, Point>, id: NodeId| -> Point {
            ghost.get(&id).copied().unwrap_or_else(|| {
                net.config(id)
                    .unwrap_or_else(|| panic!("shard route: event references missing node {id}"))
                    .pos
            })
        };

        let mut next_join = net.peek_next_id().0;
        for (i, e) in events.iter().enumerate() {
            route.anchors.clear();
            let claim = match e {
                Event::Join { cfg } => {
                    let id = NodeId(next_join);
                    next_join += 1;
                    route.join_ids[i] = Some(id);
                    route.ghost.insert(id, cfg.pos);
                    route.anchors.push(cfg.pos);
                    3.0 * bound
                }
                Event::Leave { node } => {
                    let p = pos_of(&route.ghost, *node);
                    route.ghost.remove(node);
                    route.anchors.push(p);
                    3.0 * bound
                }
                Event::Move { node, to } => {
                    let from = pos_of(&route.ghost, *node);
                    route.ghost.insert(*node, *to);
                    route.anchors.push(from);
                    route.anchors.push(*to);
                    3.0 * bound
                }
                Event::SetRange { node, .. } => {
                    route.anchors.push(pos_of(&route.ghost, *node));
                    4.0 * bound
                }
            };

            // Pass 1: which shards own any part of the claim?
            route.owners_seen.clear();
            for a in &route.anchors {
                for cx in cell_cover(a.x, claim, self.cell) {
                    for cy in cell_cover(a.y, claim, self.cell) {
                        if let Some(&s) = self.owner.get(&(cx, cy)) {
                            if !route.owners_seen.contains(&s) {
                                route.owners_seen.push(s);
                            }
                        }
                    }
                }
            }

            // Classify, picking the shard that annexes any unowned
            // claimed cells.
            let disposition = if route.owners_seen.len() <= 1 {
                let target = route.owners_seen.first().copied().unwrap_or_else(|| {
                    // Fresh territory: deal it round-robin so early
                    // slices (e.g. joins into an empty arena) spread
                    // across the shard set.
                    let s = self.next_rr % self.shards as u32;
                    self.next_rr = self.next_rr.wrapping_add(1);
                    s
                });
                Disposition::Interior(target)
            } else {
                route.owners_seen.sort_unstable();
                let start = route.touched.len() as u32;
                route.touched.extend_from_slice(&route.owners_seen);
                route.border_events += 1;
                Disposition::Border {
                    touched_start: start,
                    touched_end: start + route.owners_seen.len() as u32,
                }
            };
            let annex_to = match disposition {
                Disposition::Interior(s) => s,
                // Deterministic: the lowest-numbered touched shard
                // takes the no-man's-land the border event claims.
                Disposition::Border { touched_start, .. } => route.touched[touched_start as usize],
            };

            // Pass 2: annex unowned claimed cells, so later events
            // claiming them are ordered against this one.
            for a in &route.anchors {
                for cx in cell_cover(a.x, claim, self.cell) {
                    for cy in cell_cover(a.y, claim, self.cell) {
                        if let std::collections::hash_map::Entry::Vacant(v) =
                            self.owner.entry((cx, cy))
                        {
                            v.insert(annex_to);
                            self.owned[annex_to as usize] += 1;
                        }
                    }
                }
            }
            route.disposition.push(disposition);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;

    fn join_at(x: f64, y: f64, r: f64) -> Event {
        Event::Join {
            cfg: NodeConfig::new(Point::new(x, y), r),
        }
    }

    /// Two well-separated populations seed into distinct shards, and
    /// events near each route interior to their own shard.
    #[test]
    fn seed_splits_separated_populations() {
        let mut net = Network::new(5.0);
        for k in 0..5 {
            net.join(NodeConfig::new(Point::new(k as f64 * 3.0, 0.0), 5.0));
            net.join(NodeConfig::new(
                Point::new(1000.0 + k as f64 * 3.0, 0.0),
                5.0,
            ));
        }
        let mut map = ShardMap::seed(&net, 2);
        assert_eq!(map.shard_count(), 2);
        assert_eq!(map.active_shards(), 2);
        let left = map.owner_of(&Point::new(0.0, 0.0)).unwrap();
        let right = map.owner_of(&Point::new(1000.0, 0.0)).unwrap();
        assert_ne!(left, right, "separated populations get distinct owners");

        let events = vec![join_at(2.0, 2.0, 5.0), join_at(1002.0, 2.0, 5.0)];
        let mut route = SliceRoute::default();
        map.route(&net, &events, &mut route);
        assert_eq!(route.border_events, 0);
        assert_eq!(route.disposition[0], Disposition::Interior(left));
        assert_eq!(route.disposition[1], Disposition::Interior(right));
    }

    /// An event whose claim reaches both regions is a border event
    /// touching both shards, ascending.
    #[test]
    fn frontier_crossing_claims_go_border() {
        let mut net = Network::new(5.0);
        for k in 0..4 {
            net.join(NodeConfig::new(Point::new(k as f64 * 3.0, 0.0), 5.0));
            net.join(NodeConfig::new(
                Point::new(200.0 + k as f64 * 3.0, 0.0),
                5.0,
            ));
        }
        let mut map = ShardMap::seed(&net, 2);
        let a = map.owner_of(&Point::new(0.0, 0.0)).unwrap();
        let b = map.owner_of(&Point::new(200.0, 0.0)).unwrap();
        assert_ne!(a, b);
        // A join midway with a range whose 3B claim spans both camps.
        let events = vec![join_at(100.0, 0.0, 40.0)];
        let mut route = SliceRoute::default();
        map.route(&net, &events, &mut route);
        assert_eq!(route.border_events, 1);
        let d = route.disposition[0];
        assert!(matches!(d, Disposition::Border { .. }));
        assert_eq!(route.touched_of(d), &[a.min(b), a.max(b)]);
    }

    /// Claim-sharing events never route interior to *different*
    /// shards: the first annexes, the second sees the owner.
    #[test]
    fn annexation_orders_claim_sharing_events() {
        let net = Network::new(5.0);
        let mut map = ShardMap::seed(&net, 4);
        // Empty arena: both joins claim overlapping fresh territory.
        let events = vec![join_at(0.0, 0.0, 5.0), join_at(8.0, 0.0, 5.0)];
        let mut route = SliceRoute::default();
        map.route(&net, &events, &mut route);
        let Disposition::Interior(first) = route.disposition[0] else {
            panic!("fresh territory is interior");
        };
        match route.disposition[1] {
            Disposition::Interior(s) => assert_eq!(s, first, "shared claim ⇒ same shard"),
            Disposition::Border { .. } => {}
        }
    }

    /// Far-apart fresh territory deals round-robin across shards.
    #[test]
    fn fresh_territory_spreads_round_robin() {
        let net = Network::new(5.0);
        let mut map = ShardMap::seed(&net, 2);
        let events = vec![join_at(0.0, 0.0, 5.0), join_at(5000.0, 0.0, 5.0)];
        let mut route = SliceRoute::default();
        map.route(&net, &events, &mut route);
        assert_eq!(route.disposition[0], Disposition::Interior(0));
        assert_eq!(route.disposition[1], Disposition::Interior(1));
        assert_eq!(map.active_shards(), 2);
    }

    /// Routing is stable across repeated identical slices (the
    /// steady-state shape the allocation smoke test pins), and the
    /// ghost overlay tracks in-slice moves like the batch planner.
    #[test]
    fn routing_is_idempotent_and_ghost_tracked() {
        let mut net = Network::new(5.0);
        let a = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        net.join(NodeConfig::new(Point::new(3.0, 0.0), 5.0));
        let mut map = ShardMap::seed(&net, 2);
        let events = vec![
            Event::Move {
                node: a,
                to: Point::new(6.0, 0.0),
            },
            Event::Leave { node: a },
        ];
        let mut r1 = SliceRoute::default();
        map.route(&net, &events, &mut r1);
        let d1 = r1.disposition.clone();
        let mut r2 = SliceRoute::default();
        map.route(&net, &events, &mut r2);
        assert_eq!(d1, r2.disposition, "steady-state routing is stable");
        // The leave anchors at the *new* position — same shard as the
        // move destination.
        assert_eq!(r2.disposition[0], r2.disposition[1]);
    }
}
