//! Event trace recording, replay, and a line-oriented text format.
//!
//! Experiments and bug reports need reproducible event sequences; a
//! [`Trace`] captures them, serializes to a stable human-readable text
//! format (one event per line), parses back, and replays against any
//! strategy or bare topology. No external serialization crate — the
//! format is a dozen lines of code and stays greppable:
//!
//! ```text
//! # minim-trace v1
//! join 12.5 7.25 20.5
//! move 3 40 60.125
//! range 3 61.5
//! leave 7
//! ```
//!
//! Floats are printed with enough precision (`{:?}`, shortest
//! round-trip representation) that replaying a parsed trace is
//! bit-identical to the original.

use crate::event::Event;
use crate::NodeConfig;
use minim_geom::Point;
use minim_graph::NodeId;
use std::fmt::Write as _;

/// A recorded event sequence.
///
/// ```
/// use minim_net::trace::Trace;
/// let text = "# minim-trace v1\njoin 10.0 20.0 5.5\nmove 0 12.0 21.0\n";
/// let trace = Trace::from_text(text).unwrap();
/// assert_eq!(trace.len(), 2);
/// let round_trip = Trace::from_text(&trace.to_text()).unwrap();
/// assert_eq!(round_trip, trace);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The events, in application order.
    pub events: Vec<Event>,
}

/// A parse failure: line number (1-based) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes to the line format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# minim-trace v1\n");
        for e in &self.events {
            match e {
                Event::Join { cfg } => {
                    let _ = writeln!(out, "join {:?} {:?} {:?}", cfg.pos.x, cfg.pos.y, cfg.range);
                }
                Event::Leave { node } => {
                    let _ = writeln!(out, "leave {}", node.0);
                }
                Event::Move { node, to } => {
                    let _ = writeln!(out, "move {} {:?} {:?}", node.0, to.x, to.y);
                }
                Event::SetRange { node, range } => {
                    let _ = writeln!(out, "range {} {:?}", node.0, range);
                }
            }
        }
        out
    }

    /// Parses the line format. Blank lines and `#` comments are
    /// ignored.
    pub fn from_text(text: &str) -> Result<Trace, TraceParseError> {
        let mut trace = Trace::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().expect("non-empty line has a first token");
            let err = |message: String| TraceParseError {
                line: line_no,
                message,
            };
            let next_f64 = |parts: &mut std::str::SplitWhitespace<'_>,
                            what: &str|
             -> Result<f64, TraceParseError> {
                parts
                    .next()
                    .ok_or_else(|| err(format!("missing {what}")))?
                    .parse()
                    .map_err(|e| err(format!("bad {what}: {e}")))
            };
            let next_id =
                |parts: &mut std::str::SplitWhitespace<'_>| -> Result<NodeId, TraceParseError> {
                    Ok(NodeId(
                        parts
                            .next()
                            .ok_or_else(|| err("missing node id".into()))?
                            .parse()
                            .map_err(|e| err(format!("bad node id: {e}")))?,
                    ))
                };
            let event = match kind {
                "join" => {
                    let x = next_f64(&mut parts, "x")?;
                    let y = next_f64(&mut parts, "y")?;
                    let r = next_f64(&mut parts, "range")?;
                    Event::Join {
                        cfg: NodeConfig::new(Point::new(x, y), r),
                    }
                }
                "leave" => Event::Leave {
                    node: next_id(&mut parts)?,
                },
                "move" => {
                    let node = next_id(&mut parts)?;
                    let x = next_f64(&mut parts, "x")?;
                    let y = next_f64(&mut parts, "y")?;
                    Event::Move {
                        node,
                        to: Point::new(x, y),
                    }
                }
                "range" => {
                    let node = next_id(&mut parts)?;
                    let r = next_f64(&mut parts, "range")?;
                    Event::SetRange { node, range: r }
                }
                other => return Err(err(format!("unknown event kind '{other}'"))),
            };
            if let Some(extra) = parts.next() {
                return Err(err(format!("trailing token '{extra}'")));
            }
            trace.push(event);
        }
        Ok(trace)
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{JoinWorkload, MovementWorkload, PowerRaiseWorkload};
    use crate::{event::apply_topology, Network};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trips_a_realistic_trace() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Network::new(25.0);
        let mut trace = Trace::new();
        for e in JoinWorkload::paper(20).generate(&mut rng) {
            apply_topology(&mut net, &e);
            trace.push(e);
        }
        for e in PowerRaiseWorkload::paper(2.0).generate(&net, &mut rng) {
            apply_topology(&mut net, &e);
            trace.push(e);
        }
        for e in MovementWorkload::paper(30.0, 1).generate_round(&net, &mut rng) {
            apply_topology(&mut net, &e);
            trace.push(e);
        }
        let ids = net.node_ids();
        trace.push(Event::Leave { node: ids[3] });

        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("round trip parses");
        assert_eq!(parsed, trace, "bit-identical round trip");

        // Replaying the parsed trace reproduces the topology.
        let mut net2 = Network::new(25.0);
        for e in &parsed.events {
            apply_topology(&mut net2, e);
        }
        // (net also applied the leave inline:)
        apply_topology(&mut net, &Event::Leave { node: ids[3] });
        assert_eq!(net.node_count(), net2.node_count());
        assert_eq!(net.graph().edge_count(), net2.graph().edge_count());
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# minim-trace v1\n\n  # comment\njoin 1.0 2.0 3.0\nleave 0\n";
        let t = Trace::from_text(text).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let e = Trace::from_text("join 1 2 3\nfrobnicate 9\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = Trace::from_text("move 3 1.0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing"));

        let e = Trace::from_text("leave 1 extra\n").unwrap_err();
        assert!(e.message.contains("trailing"));

        let e = Trace::from_text("range x 2.0\n").unwrap_err();
        assert!(e.message.contains("bad node id"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_text("# nothing\n").unwrap();
        assert!(t.is_empty());
        assert_eq!(Trace::from_text(&t.to_text()).unwrap(), t);
    }

    proptest! {
        /// Arbitrary float payloads survive the round trip exactly
        /// (shortest round-trip formatting).
        #[test]
        fn join_floats_round_trip(
            x in -1e6..1e6f64, y in -1e6..1e6f64, r in 0.0..1e6f64
        ) {
            let mut t = Trace::new();
            t.push(Event::Join {
                cfg: NodeConfig::new(Point::new(x, y), r),
            });
            let parsed = Trace::from_text(&t.to_text()).unwrap();
            prop_assert_eq!(parsed, t);
        }

        #[test]
        fn random_event_sequences_round_trip(
            ops in proptest::collection::vec((0u8..4, 0u32..50, -100.0..200.0f64, -100.0..200.0f64), 0..60)
        ) {
            let mut t = Trace::new();
            for (k, id, a, b) in ops {
                let e = match k {
                    0 => Event::Join { cfg: NodeConfig::new(Point::new(a, b), b.abs()) },
                    1 => Event::Leave { node: NodeId(id) },
                    2 => Event::Move { node: NodeId(id), to: Point::new(a, b) },
                    _ => Event::SetRange { node: NodeId(id), range: a.abs() },
                };
                t.push(e);
            }
            let parsed = Trace::from_text(&t.to_text()).unwrap();
            prop_assert_eq!(parsed, t);
        }
    }
}
