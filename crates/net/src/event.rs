//! Reconfiguration events.
//!
//! The paper's four event types (§2): join, leave, move, and power
//! change. Events are reified so workloads, the simulator, and the
//! distributed protocol layer can all speak the same language, and so
//! event traces can be logged and replayed.

use crate::{Network, NodeConfig};
use minim_geom::Point;
use minim_graph::NodeId;

/// A single network reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new node appears with the given configuration. The id is
    /// chosen by the applier (fresh ids ascend).
    Join {
        /// The joiner's radio configuration.
        cfg: NodeConfig,
    },
    /// Node `node` disconnects.
    Leave {
        /// The leaving node.
        node: NodeId,
    },
    /// Node `node` moves to `to` (same range).
    Move {
        /// The moving node.
        node: NodeId,
        /// Destination position.
        to: Point,
    },
    /// Node `node` changes its transmission range to `range`.
    SetRange {
        /// The reconfiguring node.
        node: NodeId,
        /// The new maximum transmission range.
        range: f64,
    },
}

impl Event {
    /// Classifies a `SetRange` as increase/decrease relative to the
    /// node's current range in `net`. Joins/leaves/moves return `None`.
    pub fn power_direction(&self, net: &Network) -> Option<PowerDirection> {
        match self {
            Event::SetRange { node, range } => {
                let current = net.config(*node)?.range;
                Some(if *range > current {
                    PowerDirection::Increase
                } else if *range < current {
                    PowerDirection::Decrease
                } else {
                    PowerDirection::Unchanged
                })
            }
            _ => None,
        }
    }
}

/// Direction of a power (range) change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerDirection {
    /// Range grows — may create new conflicts (needs `RecodeOnPowIncrease`).
    Increase,
    /// Range shrinks — provably conflict-free (passive strategy).
    Decrease,
    /// No-op.
    Unchanged,
}

/// What the applier did, so strategies know which node was touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppliedEvent {
    /// A join happened and this id was allocated.
    Joined(NodeId),
    /// This node left.
    Left(NodeId),
    /// This node moved.
    Moved(NodeId),
    /// This node's range changed, in the given direction.
    RangeChanged(NodeId, PowerDirection),
}

impl AppliedEvent {
    /// The node the event concerned.
    pub fn node(&self) -> NodeId {
        match *self {
            AppliedEvent::Joined(n)
            | AppliedEvent::Left(n)
            | AppliedEvent::Moved(n)
            | AppliedEvent::RangeChanged(n, _) => n,
        }
    }
}

/// Applies `event` to the network topology **only** (no recoding).
/// Returns what happened. Recoding strategies in `minim-core` wrap this
/// with their color logic; they typically need state *before* the
/// application too, so they call the underlying `Network` methods
/// directly — this helper exists for replay/debug tooling.
pub fn apply_topology(net: &mut Network, event: &Event) -> AppliedEvent {
    apply_topology_delta(net, event, None).0
}

/// [`apply_topology`] keeping the [`crate::TopologyDelta`] and
/// optionally pinning the id a join allocates.
///
/// The batch executor applies a wave's events out of original order;
/// passing each join's sequentially pre-assigned id (from
/// [`Network::peek_next_id`](crate::Network::peek_next_id) accounting)
/// keeps id allocation — and therefore every downstream color decision
/// — bit-identical to sequential execution. `join_id` is ignored for
/// non-join events.
///
/// # Panics
/// Panics if a pinned `join_id` is already present.
pub fn apply_topology_delta(
    net: &mut Network,
    event: &Event,
    join_id: Option<NodeId>,
) -> (AppliedEvent, crate::TopologyDelta) {
    match event {
        Event::Join { cfg } => {
            minim_obs::counter!("net.apply.join", 1);
            let id = join_id.unwrap_or_else(|| net.next_id());
            let delta = net.insert_node(id, *cfg);
            (AppliedEvent::Joined(id), delta)
        }
        Event::Leave { node } => {
            minim_obs::counter!("net.apply.leave", 1);
            let delta = net.remove_node(*node);
            (AppliedEvent::Left(*node), delta)
        }
        Event::Move { node, to } => {
            minim_obs::counter!("net.apply.move", 1);
            let delta = net.move_node(*node, *to);
            (AppliedEvent::Moved(*node), delta)
        }
        Event::SetRange { node, range } => {
            minim_obs::counter!("net.apply.set_range", 1);
            let dir = event.power_direction(net).expect("node must exist");
            let delta = net.set_range(*node, *range);
            (AppliedEvent::RangeChanged(*node, dir), delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_geom::Point;

    #[test]
    fn apply_join_allocates_ascending_ids() {
        let mut net = Network::new(5.0);
        let e = Event::Join {
            cfg: NodeConfig::new(Point::new(0.0, 0.0), 5.0),
        };
        let a = apply_topology(&mut net, &e);
        let b = apply_topology(&mut net, &e);
        match (a, b) {
            (AppliedEvent::Joined(x), AppliedEvent::Joined(y)) => {
                assert!(x < y);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn power_direction_classification() {
        let mut net = Network::new(5.0);
        let id = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let up = Event::SetRange {
            node: id,
            range: 9.0,
        };
        let down = Event::SetRange {
            node: id,
            range: 2.0,
        };
        let same = Event::SetRange {
            node: id,
            range: 5.0,
        };
        assert_eq!(up.power_direction(&net), Some(PowerDirection::Increase));
        assert_eq!(down.power_direction(&net), Some(PowerDirection::Decrease));
        assert_eq!(same.power_direction(&net), Some(PowerDirection::Unchanged));
        let join = Event::Join {
            cfg: NodeConfig::new(Point::new(0.0, 0.0), 5.0),
        };
        assert_eq!(join.power_direction(&net), None);
    }

    #[test]
    fn leave_and_move_round_trip() {
        let mut net = Network::new(5.0);
        let id = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        let moved = apply_topology(
            &mut net,
            &Event::Move {
                node: id,
                to: Point::new(10.0, 10.0),
            },
        );
        assert_eq!(moved, AppliedEvent::Moved(id));
        assert_eq!(moved.node(), id);
        assert_eq!(net.config(id).unwrap().pos, Point::new(10.0, 10.0));
        let left = apply_topology(&mut net, &Event::Leave { node: id });
        assert_eq!(left, AppliedEvent::Left(id));
        assert_eq!(net.node_count(), 0);
    }
}
