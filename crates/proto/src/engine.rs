//! Synchronous-round message engine.
//!
//! Messages travel along the *underlying undirected* radio adjacency
//! (a data link exists when at least one direction can transmit; \[3\]
//! assumes symmetric links, and acknowledgments in the asymmetric case
//! are routed over short reverse paths — we charge one message either
//! way). Delivery is synchronous: everything sent in round `r` is
//! readable in round `r + 1`. The engine is deliberately simple — the
//! protocols in [`crate::join`] drive it explicitly, which keeps the
//! message/round accounting transparent and auditable.

use minim_graph::{Color, NodeId};
use std::collections::{HashMap, VecDeque};

/// Protocol payloads exchanged by the join protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Joiner announces itself and asks 1-hop neighbors for state.
    JoinQuery,
    /// A neighbor reports its color, its constraint list, and who
    /// transmits into it (all from its standing 1/2-hop cache, which
    /// \[3\] assumes is maintained by beaconing).
    ConstraintReport {
        /// The reporter's current color (None while reselecting).
        color: Option<Color>,
        /// `(partner, partner's color)` for each of the reporter's
        /// CA1/CA2 conflict partners — the joiner filters these to
        /// partners outside the recode set (Fig 3 step 1).
        constraints: Vec<(NodeId, Color)>,
        /// `(transmitter, color)` for each of the reporter's
        /// in-neighbors — the joiner derives its own CA2 constraints
        /// from these (Fig 3 step 2).
        in_neighbors: Vec<(NodeId, Color)>,
    },
    /// The joiner (Minim) instructs a node to adopt a new color.
    Recolor(Color),
    /// CP: the joiner tells a duplicated node to reselect.
    Reselect,
    /// CP: a node announces its newly selected color to its 2-hop
    /// vicinity (relayed by 1-hop neighbors). Also used by the
    /// power-increase protocol to publish the initiator's new color.
    ColorUpdate(Color),
    /// A node announces it is leaving (or departing a position);
    /// receivers drop their cache entries. No recoding follows (§4.3).
    Leaving,
    /// A node announces a range decrease; receivers refresh caches.
    RangeChanged,
    /// Acknowledgment (commit).
    Ack,
}

/// A point-to-point message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Contents.
    pub payload: Payload,
}

/// Per-protocol cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolMetrics {
    /// Total point-to-point messages sent (relays counted).
    pub messages: usize,
    /// Synchronous rounds elapsed.
    pub rounds: usize,
}

/// The message engine: mailboxes plus a next-round buffer.
#[derive(Debug, Default)]
pub struct Engine {
    inboxes: HashMap<NodeId, VecDeque<Message>>,
    in_flight: Vec<Message>,
    metrics: ProtocolMetrics,
}

impl Engine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Queues `msg` for delivery at the next round tick.
    pub fn send(&mut self, msg: Message) {
        self.metrics.messages += 1;
        self.in_flight.push(msg);
    }

    /// Convenience: build and send.
    pub fn send_to(&mut self, from: NodeId, to: NodeId, payload: Payload) {
        self.send(Message { from, to, payload });
    }

    /// Advances one synchronous round: all in-flight messages land in
    /// their receivers' mailboxes.
    pub fn tick(&mut self) {
        self.metrics.rounds += 1;
        for msg in self.in_flight.drain(..) {
            self.inboxes.entry(msg.to).or_default().push_back(msg);
        }
    }

    /// Drains the mailbox of `node` (messages delivered by previous
    /// ticks), in send order.
    pub fn drain(&mut self, node: NodeId) -> Vec<Message> {
        self.inboxes
            .get_mut(&node)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// Whether any message is queued or in flight.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty() && self.inboxes.values().all(VecDeque::is_empty)
    }

    /// The running cost counters.
    pub fn metrics(&self) -> ProtocolMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn messages_deliver_on_next_tick_only() {
        let mut e = Engine::new();
        e.send_to(n(1), n(2), Payload::JoinQuery);
        assert!(e.drain(n(2)).is_empty(), "not yet delivered");
        e.tick();
        let got = e.drain(n(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, n(1));
        assert_eq!(got[0].payload, Payload::JoinQuery);
        assert!(e.is_quiescent());
    }

    #[test]
    fn metrics_count_messages_and_rounds() {
        let mut e = Engine::new();
        e.send_to(n(1), n(2), Payload::Ack);
        e.send_to(n(1), n(3), Payload::Ack);
        e.tick();
        e.send_to(n(2), n(1), Payload::Ack);
        e.tick();
        assert_eq!(
            e.metrics(),
            ProtocolMetrics {
                messages: 3,
                rounds: 2
            }
        );
    }

    #[test]
    fn drain_preserves_send_order() {
        let mut e = Engine::new();
        e.send_to(n(1), n(9), Payload::Recolor(Color::new(1)));
        e.send_to(n(2), n(9), Payload::Recolor(Color::new(2)));
        e.send_to(n(3), n(9), Payload::Recolor(Color::new(3)));
        e.tick();
        let got = e.drain(n(9));
        let froms: Vec<NodeId> = got.iter().map(|m| m.from).collect();
        assert_eq!(froms, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn quiescence_tracks_in_flight_and_mailboxes() {
        let mut e = Engine::new();
        assert!(e.is_quiescent());
        e.send_to(n(1), n(2), Payload::Ack);
        assert!(!e.is_quiescent(), "in flight");
        e.tick();
        assert!(!e.is_quiescent(), "in mailbox");
        e.drain(n(2));
        assert!(e.is_quiescent());
    }
}
