//! Concurrent event execution — Theorem 4.1.10.
//!
//! "The algorithm supports simultaneous additions of new nodes when any
//! two of them are at least 5 hops apart." The bound is tight in the
//! following sense: a join's recode set lies within 1 hop of the
//! joiner, and the constraints it reads lie within 2 hops of the recode
//! set, i.e. within 3 hops of the joiner. With joiners ≥ 5 hops apart,
//! `B(n1, 1) ∩ B(n2, 3) = ∅`, so neither join's writes intersect the
//! other's reads and the two recodes commute; below 5 hops the reads
//! and writes can overlap and concurrent execution can garble the
//! assignment ([`parallel_minim_joins_unchecked`] plus the tests
//! construct an explicit counterexample).
//!
//! [`parallel_minim_joins`] executes a batch of joins *truly
//! concurrently*: every join's matching is computed against the same
//! pre-event assignment snapshot, then all plans are applied at once —
//! exactly the semantics of simultaneous distributed executions.

use minim_core::{gather_recode_inputs, plan_recode, RecodeOutcome, KEEP_WEIGHT};
use minim_graph::{hops, NodeId};
use minim_net::{Network, NodeConfig};

/// Why a parallel join batch was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelJoinError {
    /// Two joiners are closer than the 5-hop separation bound.
    TooClose {
        /// First joiner.
        a: NodeId,
        /// Second joiner.
        b: NodeId,
        /// Their undirected hop distance (joiners in the same
        /// connected component are always at finite distance).
        hops: usize,
    },
}

impl std::fmt::Display for ParallelJoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelJoinError::TooClose { a, b, hops } => write!(
                f,
                "joiners {a} and {b} are only {hops} hops apart (need >= 5)"
            ),
        }
    }
}

impl std::error::Error for ParallelJoinError {}

/// Inserts all joiners, verifies the pairwise 5-hop separation of
/// Theorem 4.1.10, and recodes all joins concurrently (all matchings
/// computed against the pre-event snapshot, all plans applied
/// together). On a separation violation the joiners are removed again
/// and an error is returned.
pub fn parallel_minim_joins(
    net: &mut Network,
    joins: &[(NodeId, NodeConfig)],
) -> Result<Vec<RecodeOutcome>, ParallelJoinError> {
    for &(id, cfg) in joins {
        net.insert_node(id, cfg);
    }
    for (i, &(a, _)) in joins.iter().enumerate() {
        for &(b, _) in &joins[i + 1..] {
            if let Some(d) = hops::hop_distance(net.graph(), a, b) {
                if d < 5 {
                    for &(id, _) in joins {
                        net.remove_node(id);
                    }
                    return Err(ParallelJoinError::TooClose { a, b, hops: d });
                }
            }
        }
    }
    Ok(parallel_minim_joins_unchecked(net, joins))
}

/// The concurrent recode **without** the separation check. Public so
/// tests and examples can demonstrate why Theorem 4.1.10's condition
/// matters: with joiners too close, the returned assignment may
/// violate CA1/CA2. Joiners must already be inserted.
pub fn parallel_minim_joins_unchecked(
    net: &mut Network,
    joins: &[(NodeId, NodeConfig)],
) -> Vec<RecodeOutcome> {
    let snapshot = net.snapshot_assignment();
    // Plan every join against the same snapshot (true concurrency).
    let mut plans = Vec::with_capacity(joins.len());
    for &(id, _) in joins {
        let set = net.recode_set(id);
        let (old, forbidden) = gather_recode_inputs(net, &set);
        let plan = plan_recode(&old, &forbidden, KEEP_WEIGHT);
        plans.push((set, plan));
    }
    // Apply all plans at once.
    for (set, plan) in &plans {
        for (i, &u) in set.iter().enumerate() {
            net.assignment_mut().set(u, plan[i]);
        }
    }
    // Per-join outcomes relative to the shared snapshot.
    plans
        .iter()
        .map(|(set, plan)| {
            let recoded = set
                .iter()
                .enumerate()
                .filter(|&(i, &u)| snapshot.get(u) != Some(plan[i]))
                .map(|(i, &u)| (u, snapshot.get(u), plan[i]))
                .collect();
            RecodeOutcome {
                recoded,
                max_color_after: net.max_color_index(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_core::{Minim, RecodingStrategy};
    use minim_geom::Point;
    use minim_graph::Color;

    /// A long chain of bidirectional links spaced `gap` apart along x,
    /// colored by Minim joins.
    fn chain(nodes: usize, gap: f64, range: f64) -> Network {
        let mut net = Network::new(range.max(1.0));
        let mut m = Minim::default();
        for i in 0..nodes {
            let id = net.next_id();
            m.on_join(
                &mut net,
                id,
                NodeConfig::new(Point::new(i as f64 * gap, 0.0), range),
            );
        }
        assert!(net.validate().is_ok());
        net
    }

    #[test]
    fn far_apart_parallel_joins_commute_with_sequential() {
        // Chain of 12 nodes, joiners attach near the two ends: > 5 hops.
        let net0 = chain(12, 6.0, 7.0);
        let id_a = NodeId(100);
        let id_b = NodeId(101);
        let cfg_a = NodeConfig::new(Point::new(0.0, 5.0), 7.0);
        let cfg_b = NodeConfig::new(Point::new(66.0, 5.0), 7.0);

        let mut net_par = net0.clone();
        let outcomes = parallel_minim_joins(&mut net_par, &[(id_a, cfg_a), (id_b, cfg_b)])
            .expect("ends of the chain are >= 5 hops apart");
        assert_eq!(outcomes.len(), 2);
        assert!(net_par.validate().is_ok());

        // Sequential in both orders must give the same assignment.
        let mut m = Minim::default();
        let mut net_ab = net0.clone();
        m.on_join(&mut net_ab, id_a, cfg_a);
        m.on_join(&mut net_ab, id_b, cfg_b);
        let mut net_ba = net0.clone();
        m.on_join(&mut net_ba, id_b, cfg_b);
        m.on_join(&mut net_ba, id_a, cfg_a);

        assert_eq!(net_par.snapshot_assignment(), net_ab.snapshot_assignment());
        assert_eq!(net_par.snapshot_assignment(), net_ba.snapshot_assignment());
    }

    #[test]
    fn close_parallel_joins_are_rejected() {
        let net0 = chain(6, 6.0, 7.0);
        let mut net = net0.clone();
        // Two joiners adjacent to the same chain node: 2 hops apart.
        let err = parallel_minim_joins(
            &mut net,
            &[
                (NodeId(100), NodeConfig::new(Point::new(12.0, 5.0), 7.0)),
                (NodeId(101), NodeConfig::new(Point::new(12.0, -5.0), 7.0)),
            ],
        )
        .unwrap_err();
        let ParallelJoinError::TooClose { hops, .. } = err;
        assert!(hops < 5);
        // Rollback: the joiners are gone and the old state is intact.
        assert_eq!(net.node_count(), net0.node_count());
        assert_eq!(net.snapshot_assignment(), net0.snapshot_assignment());
        assert!(net.validate().is_ok());
    }

    #[test]
    fn unchecked_close_joins_can_violate_ca2() {
        // The Theorem 4.1.10 counterexample: joiners 2 hops apart via a
        // shared receiver x. Each concurrent plan sees only {itself, x}
        // and hands the joiner the same fresh color; both then transmit
        // into x with equal codes — a hidden collision.
        let mut net = Network::new(10.0);
        let x = net.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        net.set_color(x, Color::new(1));
        let a = NodeId(10);
        let b = NodeId(11);
        let cfg_a = NodeConfig::new(Point::new(4.0, 0.0), 5.0);
        let cfg_b = NodeConfig::new(Point::new(-4.0, 0.0), 5.0);
        net.insert_node(a, cfg_a);
        net.insert_node(b, cfg_b);
        assert!(net.graph().has_edge(a, x) && net.graph().has_edge(b, x));
        assert!(!net.graph().has_edge(a, b), "joiners out of mutual range");

        parallel_minim_joins_unchecked(&mut net, &[(a, cfg_a), (b, cfg_b)]);
        assert_eq!(net.assignment().get(a), net.assignment().get(b));
        assert!(
            net.validate().is_err(),
            "concurrent close joins must garble the assignment — this is why 5 hops matter"
        );

        // And the checked API refuses exactly this configuration.
        let mut net2 = Network::new(10.0);
        let x2 = net2.join(NodeConfig::new(Point::new(0.0, 0.0), 5.0));
        net2.set_color(x2, Color::new(1));
        let err = parallel_minim_joins(&mut net2, &[(a, cfg_a), (b, cfg_b)]).unwrap_err();
        let ParallelJoinError::TooClose { hops, .. } = err;
        assert_eq!(hops, 2);
    }

    #[test]
    fn disconnected_joiners_are_always_parallelizable() {
        let net0 = chain(4, 6.0, 7.0);
        let mut net = net0.clone();
        // One joiner on the chain, one in deep space (disconnected →
        // hop_distance None → no constraint violated).
        let outcomes = parallel_minim_joins(
            &mut net,
            &[
                (NodeId(100), NodeConfig::new(Point::new(0.0, 5.0), 7.0)),
                (NodeId(101), NodeConfig::new(Point::new(500.0, 500.0), 7.0)),
            ],
        )
        .expect("disconnected joiners cannot interfere");
        assert_eq!(outcomes.len(), 2);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn batch_of_three_separated_joins() {
        let net0 = chain(20, 6.0, 7.0);
        let mut net = net0.clone();
        let joins = [
            (NodeId(100), NodeConfig::new(Point::new(0.0, 5.0), 7.0)),
            (NodeId(101), NodeConfig::new(Point::new(60.0, 5.0), 7.0)),
            (NodeId(102), NodeConfig::new(Point::new(114.0, 5.0), 7.0)),
        ];
        let outcomes = parallel_minim_joins(&mut net, &joins).expect("well separated");
        assert_eq!(outcomes.len(), 3);
        assert!(net.validate().is_ok());
        for (out, &(id, _)) in outcomes.iter().zip(&joins) {
            assert!(
                out.recoded.iter().any(|&(n, _, _)| n == id),
                "each joiner gets a first color"
            );
        }
    }
}
