//! Distributed realizations of the remaining event types: move and
//! power change.
//!
//! * **Move** — the paper (§4.4) builds `RecodeOnMove` from the same
//!   machinery as the join; the distributed version is a departure
//!   announcement at the old position (its ex-neighbors simply drop
//!   their cache entries — `RecodeDecreasePowOrLeave` is passive),
//!   followed by the join-style gather → match-at-the-mover → recolor
//!   flow at the new position, with the mover's old color kept in the
//!   instance (Fig 8 step 4 weighs it like everyone else's).
//! * **Power increase** — §4.2: all new constraints involve the
//!   initiator, so the protocol is a pure gather: the initiator
//!   queries its (new) out-neighbors, learns their colors and their
//!   in-neighbor colors, decides locally, and announces its new color
//!   if it had to change. No other node is ever recoded.
//! * **Power decrease / leave** — passive: one departure/shrink
//!   announcement so neighbors refresh their caches; zero recodings
//!   (§4.3).
//!
//! All functions return the same assignments as the centralized
//! [`minim_core::Minim`] handlers (asserted by the tests) plus the
//! message/round bill.

use crate::engine::{Engine, Payload, ProtocolMetrics};
use crate::join::minim_gather_match_recolor;
use minim_core::RecodeOutcome;
use minim_geom::Point;
use minim_graph::{Color, NodeId};
use minim_net::Network;

/// Distributed `RecodeOnMove`: departure announcement, topology move,
/// then the join engine with the old color remembered.
pub fn distributed_minim_move(
    net: &mut Network,
    id: NodeId,
    to: Point,
) -> (RecodeOutcome, ProtocolMetrics) {
    let before = net.snapshot_assignment();
    let mut eng = Engine::new();

    let delta = net.move_node(id, to);

    // Departure announcement to the old neighborhood (they update
    // their caches; nobody recodes — §4.3). The pre-move adjacency
    // is reconstructed from the delta.
    let old_neighbors = delta.undirected_before();
    for &u in &old_neighbors {
        eng.send_to(id, u, Payload::Leaving);
    }
    eng.tick();
    for &u in &old_neighbors {
        let _ = eng.drain(u);
    }

    let outcome = minim_gather_match_recolor(net, &delta, &mut eng, &before);
    debug_assert!(net.validate().is_ok(), "distributed move invalid");
    (outcome, eng.metrics())
}

/// Distributed `RecodeOnPowIncrease` (also handles decreases, which
/// are passive beyond a cache-refresh announcement).
pub fn distributed_minim_set_range(
    net: &mut Network,
    id: NodeId,
    range: f64,
) -> (RecodeOutcome, ProtocolMetrics) {
    let before = net.snapshot_assignment();
    let old_range = net.config(id).expect("node must exist").range;
    let mut eng = Engine::new();
    let delta = net.set_range(id, range);

    if range <= old_range {
        // Decrease: announce so ex-receivers drop the link from their
        // caches; provably nothing to recode (§4.3). The announcement
        // must reach the *pre-decrease* neighborhood — exactly the
        // nodes whose cached link just went stale.
        let neighbors = delta.undirected_before();
        for &u in &neighbors {
            eng.send_to(id, u, Payload::RangeChanged);
        }
        eng.tick();
        for &u in &neighbors {
            let _ = eng.drain(u);
        }
        debug_assert!(net.validate().is_ok());
        return (RecodeOutcome::from_diff(net, &before), eng.metrics());
    }

    // Increase. Round 1: query every node now in transmission range
    // (they hear the announcement directly) — the delta's resulting
    // out-list, no graph read.
    let out_neighbors: Vec<NodeId> = delta.out_after.clone();
    for &u in &out_neighbors {
        eng.send_to(id, u, Payload::JoinQuery);
    }
    eng.tick();

    // Round 2: each replies with its color and its in-neighbor colors
    // (from which the initiator derives its CA2 constraints).
    for &u in &out_neighbors {
        let _ = eng.drain(u);
        let in_neighbors: Vec<(NodeId, Color)> = net
            .graph()
            .in_neighbors(u)
            .iter()
            .filter_map(|&w| net.assignment().get(w).map(|c| (w, c)))
            .collect();
        eng.send_to(
            u,
            id,
            Payload::ConstraintReport {
                color: net.assignment().get(u),
                constraints: Vec::new(),
                in_neighbors,
            },
        );
    }
    eng.tick();

    // Round 3: local decision at the initiator, from messages alone.
    let mut forbidden: Vec<Color> = Vec::new();
    for m in eng.drain(id) {
        if let Payload::ConstraintReport {
            color,
            in_neighbors,
            ..
        } = m.payload
        {
            if let Some(c) = color {
                forbidden.push(c); // CA1 with the receiver
            }
            for (w, c) in in_neighbors {
                if w != id {
                    forbidden.push(c); // CA2 at the shared receiver
                }
            }
        }
    }
    // CA1 with the initiator's own in-neighbors (standing cache).
    for &w in &delta.in_after {
        if let Some(c) = net.assignment().get(w) {
            forbidden.push(c);
        }
    }
    forbidden.sort_unstable();
    forbidden.dedup();

    let current = net.assignment().get(id);
    let clash = match current {
        Some(c) => forbidden.contains(&c),
        None => true,
    };
    if clash {
        let c = Color::lowest_excluding(forbidden);
        net.assignment_mut().set(id, c);
        // Round 4: announce the new color to the whole neighborhood.
        let neighbors = delta.undirected_after();
        for &u in &neighbors {
            eng.send_to(id, u, Payload::ColorUpdate(c));
        }
        eng.tick();
        for &u in &neighbors {
            let _ = eng.drain(u);
        }
    }

    debug_assert!(net.validate().is_ok(), "distributed power change invalid");
    (RecodeOutcome::from_diff(net, &before), eng.metrics())
}

/// Distributed leave: a departure announcement; provably no recoding.
pub fn distributed_minim_leave(net: &mut Network, id: NodeId) -> (RecodeOutcome, ProtocolMetrics) {
    let before = net.snapshot_assignment();
    let mut eng = Engine::new();
    let delta = net.remove_node(id);
    // The delta's severed edges name exactly the ex-neighbors who must
    // hear the goodbye.
    let neighbors = delta.undirected_before();
    for &u in &neighbors {
        eng.send_to(id, u, Payload::Leaving);
    }
    eng.tick();
    for &u in &neighbors {
        let _ = eng.drain(u);
    }
    debug_assert!(net.validate().is_ok());
    (RecodeOutcome::from_diff(net, &before), eng.metrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_core::{Minim, RecodingStrategy};
    use minim_geom::{sample, Rect};
    use minim_net::workload::JoinWorkload;
    use minim_net::NodeConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn base_net(count: usize, seed: u64) -> (Network, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(25.0);
        let mut m = Minim::default();
        for e in JoinWorkload::paper(count).generate(&mut rng) {
            m.apply(&mut net, &e);
        }
        (net, rng)
    }

    #[test]
    fn distributed_move_matches_centralized() {
        for seed in 0..12 {
            let (net0, mut rng) = base_net(30, seed);
            let ids = net0.node_ids();
            let victim = ids[rng.gen_range(0..ids.len())];
            let to = sample::random_move(
                &mut rng,
                net0.config(victim).unwrap().pos,
                40.0,
                &Rect::paper_arena(),
            );

            let mut net_d = net0.clone();
            let (out_d, metrics) = distributed_minim_move(&mut net_d, victim, to);
            assert!(net_d.validate().is_ok());
            assert!(metrics.rounds >= 5, "departure + join flow");

            let mut net_c = net0.clone();
            let mut m = Minim::default();
            let out_c = m.on_move(&mut net_c, victim, to);
            assert_eq!(
                net_d.snapshot_assignment(),
                net_c.snapshot_assignment(),
                "seed {seed}"
            );
            assert_eq!(out_d.recoded, out_c.recoded);
        }
    }

    #[test]
    fn distributed_power_increase_matches_centralized() {
        for seed in 20..32 {
            let (net0, mut rng) = base_net(30, seed);
            let ids = net0.node_ids();
            let victim = ids[rng.gen_range(0..ids.len())];
            let factor = rng.gen_range(1.2..3.0);
            let new_range = net0.config(victim).unwrap().range * factor;

            let mut net_d = net0.clone();
            let (out_d, _) = distributed_minim_set_range(&mut net_d, victim, new_range);
            assert!(net_d.validate().is_ok());
            assert!(out_d.recodings() <= 1, "at most the initiator");

            let mut net_c = net0.clone();
            let mut m = Minim::default();
            let out_c = m.on_set_range(&mut net_c, victim, new_range);
            assert_eq!(
                net_d.snapshot_assignment(),
                net_c.snapshot_assignment(),
                "seed {seed}"
            );
            assert_eq!(out_d.recoded, out_c.recoded);
        }
    }

    #[test]
    fn distributed_power_decrease_is_passive() {
        let (net0, mut rng) = base_net(20, 50);
        let ids = net0.node_ids();
        let victim = ids[rng.gen_range(0..ids.len())];
        let mut net = net0.clone();
        let old = net.config(victim).unwrap().range;
        let (out, metrics) = distributed_minim_set_range(&mut net, victim, old * 0.5);
        assert_eq!(out.recodings(), 0);
        assert_eq!(metrics.rounds, 1, "one cache-refresh round");
        assert!(net.validate().is_ok());
    }

    #[test]
    fn distributed_leave_is_passive_and_local() {
        let (net0, _) = base_net(20, 51);
        let victim = net0.node_ids()[5];
        let degree = net0.graph().undirected_degree(victim);
        let mut net = net0.clone();
        let (out, metrics) = distributed_minim_leave(&mut net, victim);
        assert_eq!(out.recodings(), 0);
        assert_eq!(metrics.messages, degree, "one goodbye per neighbor");
        assert!(!net.contains(victim));
        assert!(net.validate().is_ok());
    }

    /// Full distributed lifecycle: a network driven exclusively through
    /// the message-passing protocols stays valid and tracks the
    /// centralized execution event for event.
    #[test]
    fn fully_distributed_lifecycle_tracks_centralized() {
        let mut rng = StdRng::seed_from_u64(60);
        let mut net_d = Network::new(25.0);
        let mut net_c = Network::new(25.0);
        let mut m = Minim::default();
        let arena = Rect::paper_arena();
        for step in 0..120 {
            let roll: f64 = rng.gen();
            if net_d.node_count() < 5 || roll < 0.4 {
                let cfg = NodeConfig::new(
                    sample::uniform_point(&mut rng, &arena),
                    sample::uniform_range(&mut rng, 15.0, 30.0),
                );
                let id_d = net_d.next_id();
                crate::join::distributed_minim_join(&mut net_d, id_d, cfg);
                let id_c = net_c.next_id();
                m.on_join(&mut net_c, id_c, cfg);
            } else {
                let ids = net_d.node_ids();
                let victim = ids[rng.gen_range(0..ids.len())];
                if roll < 0.55 {
                    distributed_minim_leave(&mut net_d, victim);
                    m.on_leave(&mut net_c, victim);
                } else if roll < 0.8 {
                    let to = sample::random_move(
                        &mut rng,
                        net_d.config(victim).unwrap().pos,
                        30.0,
                        &arena,
                    );
                    distributed_minim_move(&mut net_d, victim, to);
                    m.on_move(&mut net_c, victim, to);
                } else {
                    let r = net_d.config(victim).unwrap().range * rng.gen_range(0.6..2.0);
                    distributed_minim_set_range(&mut net_d, victim, r);
                    m.on_set_range(&mut net_c, victim, r);
                }
            }
            assert_eq!(
                net_d.snapshot_assignment(),
                net_c.snapshot_assignment(),
                "divergence at step {step}"
            );
            assert!(net_d.validate().is_ok());
        }
    }
}
