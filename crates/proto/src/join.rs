//! Distributed join protocols.
//!
//! ## Minim join (Fig 3, distributed reading)
//!
//! 1. **Round 1** — the joiner `n` announces itself: one `JoinQuery`
//!    per undirected radio neighbor (`1n ∪ 2n ∪ 3n`). Members of `3n`
//!    receive it over the `n → u` link; their replies are routed back
//!    over short reverse paths and charged one message like everything
//!    else.
//! 2. **Round 2** — every queried node replies with a
//!    `ConstraintReport`: its color, its own CA1/CA2 constraint list
//!    (for its row of the matching, if it lands in the recode set) and
//!    its in-neighbor colors (from which `n` derives its own CA2
//!    constraints). All of this is the reporter's standing local
//!    1/2-hop state — \[3\] assumes it is maintained by beaconing.
//! 3. **Round 3** — `n` classifies reporters into `1n/2n/3n` from its
//!    own adjacency, reconstructs the matching instance **from the
//!    messages alone**, runs [`minim_core::plan_recode`] (the exact
//!    kernel the centralized strategy uses — "the onus of recoding is
//!    locally centralized at node n", §4.1), and sends `Recolor` to
//!    every member whose color changes.
//! 4. **Round 4** — members apply and `Ack`; everyone switches at the
//!    round boundary (Fig 3 step 6: "agreeing on when to change
//!    color").
//!
//! ## CP join (§3)
//!
//! Query/report rounds as above, then the joiner notifies duplicated
//! in-neighbors to reselect; reselection proceeds in *waves*: a node
//! selects once it is the highest-identity unassigned node within its
//! 2-hop vicinity, picks the lowest color unused within 2 hops, and
//! announces the choice to its 2-hop vicinity (1-hop broadcast plus
//! one relay per 2-hop member). Waves end when everyone is colored.

use crate::engine::{Engine, Payload, ProtocolMetrics};
use minim_core::{plan_recode, RecodeOutcome, KEEP_WEIGHT};
use minim_graph::{conflict, hops, Color, NodeId};
use minim_net::{Network, NodeConfig, TopologyDelta};
use std::collections::{HashMap, HashSet};

/// A neighbor's reply, as the joiner stores it: own color, constraint
/// list, and in-neighbor colors.
type Report = (Option<Color>, Vec<(NodeId, Color)>, Vec<(NodeId, Color)>);

/// Runs the distributed Minim join of `id` with configuration `cfg`.
/// Produces the identical assignment to `Minim::on_join` (asserted in
/// tests) plus the message/round bill.
pub fn distributed_minim_join(
    net: &mut Network,
    id: NodeId,
    cfg: NodeConfig,
) -> (RecodeOutcome, ProtocolMetrics) {
    let before = net.snapshot_assignment();
    let delta = net.insert_node(id, cfg);
    let mut eng = Engine::new();
    let outcome = minim_gather_match_recolor(net, &delta, &mut eng, &before);
    debug_assert!(net.validate().is_ok(), "distributed Minim join invalid");
    (outcome, eng.metrics())
}

/// The shared Minim flow (Fig 3 / Fig 8 steps 1–6) after the topology
/// change: query the neighborhood, gather constraint reports, run
/// [`minim_core::plan_recode`] locally at `id`, distribute the
/// recolors, commit. Used by the join and the move protocols.
pub(crate) fn minim_gather_match_recolor(
    net: &mut Network,
    delta: &TopologyDelta,
    eng: &mut Engine,
    before: &minim_graph::Assignment,
) -> RecodeOutcome {
    let id = delta.node();
    // Round 1: announce/query. The joiner's radio adjacency is exactly
    // the delta's post-event neighborhood — no graph read needed.
    let neighbors = delta.undirected_after();
    for &u in &neighbors {
        eng.send_to(id, u, Payload::JoinQuery);
    }
    eng.tick();

    // Round 2: every queried node replies from its local state.
    for &u in &neighbors {
        let inbox = eng.drain(u);
        if !inbox
            .iter()
            .any(|m| matches!(m.payload, Payload::JoinQuery))
        {
            continue;
        }
        let constraints: Vec<(NodeId, Color)> = conflict::conflicts_of(net.graph(), u)
            .into_iter()
            .filter_map(|p| net.assignment().get(p).map(|c| (p, c)))
            .collect();
        let in_neighbors: Vec<(NodeId, Color)> = net
            .graph()
            .in_neighbors(u)
            .iter()
            .filter_map(|&w| net.assignment().get(w).map(|c| (w, c)))
            .collect();
        eng.send_to(
            u,
            id,
            Payload::ConstraintReport {
                color: net.assignment().get(u),
                constraints,
                in_neighbors,
            },
        );
    }
    eng.tick();

    // Round 3: the joiner reconstructs the instance from messages.
    let reports: HashMap<NodeId, Report> = eng
        .drain(id)
        .into_iter()
        .filter_map(|m| match m.payload {
            Payload::ConstraintReport {
                color,
                constraints,
                in_neighbors,
            } => Some((m.from, (color, constraints, in_neighbors))),
            _ => None,
        })
        .collect();

    // The joiner knows the partition from its own radio adjacency,
    // i.e. from the delta it just caused.
    let set = delta.recode_set(); // = sorted(1n ∪ 2n ∪ {id})
    let out_only: Vec<NodeId> = delta.partitions().three;

    let mut old = Vec::with_capacity(set.len());
    let mut forbidden: Vec<Vec<u32>> = Vec::with_capacity(set.len());
    for &u in &set {
        if u == id {
            // The initiator's own constraints (Fig 3 step 2): colors of
            // 3n (CA1) plus other in-neighbors of nodes n transmits
            // into (CA2), all read from the reports, filtered to
            // outside the set. A joiner has no old color; a mover keeps
            // its keep-edge (Fig 8 step 4).
            old.push(net.assignment().get(id));
            let mut f: Vec<u32> = Vec::new();
            for &v in &out_only {
                if let Some((Some(c), _, _)) = reports.get(&v) {
                    f.push(c.index());
                }
            }
            for v in &delta.out_after {
                if let Some((_, _, inn)) = reports.get(v) {
                    for &(w, c) in inn {
                        if w != id && set.binary_search(&w).is_err() {
                            f.push(c.index());
                        }
                    }
                }
            }
            f.sort_unstable();
            f.dedup();
            forbidden.push(f);
        } else {
            let (color, constraints, _) = reports
                .get(&u)
                .expect("every recode-set member heard the query and reported");
            old.push(*color);
            let mut f: Vec<u32> = constraints
                .iter()
                .filter(|(p, _)| set.binary_search(p).is_err())
                .map(|(_, c)| c.index())
                .collect();
            f.sort_unstable();
            f.dedup();
            forbidden.push(f);
        }
    }

    let plan = plan_recode(&old, &forbidden, KEEP_WEIGHT);

    // Round 3 sends the recolors; round 4 acks & applies.
    let mut changed = Vec::new();
    for (i, &u) in set.iter().enumerate() {
        if old[i] != Some(plan[i]) {
            changed.push((u, plan[i]));
            if u != id {
                eng.send_to(id, u, Payload::Recolor(plan[i]));
            }
        }
    }
    eng.tick();
    for &(u, c) in &changed {
        if u != id {
            let _ = eng.drain(u);
            eng.send_to(u, id, Payload::Ack);
        }
        net.assignment_mut().set(u, c);
    }
    eng.tick();
    let _ = eng.drain(id);

    RecodeOutcome::from_diff(net, before)
}

/// Runs the distributed CP join of `id`. Produces the identical
/// assignment to `Cp::on_join` (descending-identity waves are the
/// unique linearization of the vicinity rule — see module docs) plus
/// the message/round bill.
pub fn distributed_cp_join(
    net: &mut Network,
    id: NodeId,
    cfg: NodeConfig,
) -> (RecodeOutcome, ProtocolMetrics) {
    let before = net.snapshot_assignment();
    let delta = net.insert_node(id, cfg);
    let mut eng = Engine::new();

    // Rounds 1–2: query + color reports (the CP exchange of §3).
    let neighbors = delta.undirected_after();
    for &u in &neighbors {
        eng.send_to(id, u, Payload::JoinQuery);
    }
    eng.tick();
    for &u in &neighbors {
        let _ = eng.drain(u);
        eng.send_to(
            u,
            id,
            Payload::ConstraintReport {
                color: net.assignment().get(u),
                constraints: Vec::new(),
                in_neighbors: Vec::new(),
            },
        );
    }
    eng.tick();
    let colors: HashMap<NodeId, Option<Color>> = eng
        .drain(id)
        .into_iter()
        .filter_map(|m| match m.payload {
            Payload::ConstraintReport { color, .. } => Some((m.from, color)),
            _ => None,
        })
        .collect();

    // Round 3: the joiner tells the duplicated-color in-neighbors (the
    // pairs violating CA2 through it) to reselect.
    let in_union = delta.partitions().in_union();
    let mut by_color: HashMap<Color, Vec<NodeId>> = HashMap::new();
    for &u in &in_union {
        if let Some(Some(c)) = colors.get(&u) {
            by_color.entry(*c).or_default().push(u);
        }
    }
    let mut unassigned: HashSet<NodeId> = by_color
        .into_values()
        .filter(|v| v.len() >= 2)
        .flatten()
        .collect();
    for &u in &unassigned {
        eng.send_to(id, u, Payload::Reselect);
    }
    unassigned.insert(id);
    for &u in &unassigned {
        net.assignment_mut().unset(u);
    }
    eng.tick();
    for &u in &unassigned {
        let _ = eng.drain(u);
    }

    // Waves: highest-identity unassigned node in each 2-hop vicinity
    // selects the lowest color unused within 2 hops, then announces it
    // (1-hop broadcast + one relay per 2-hop member).
    while !unassigned.is_empty() {
        let eligible: Vec<NodeId> = unassigned
            .iter()
            .copied()
            .filter(|&u| {
                hops::within_hops(net.graph(), u, 2)
                    .into_iter()
                    .all(|(v, _)| v < u || !unassigned.contains(&v))
            })
            .collect();
        assert!(
            !eligible.is_empty(),
            "the maximum-identity unassigned node is always eligible"
        );
        // Simultaneous selections: all eligible nodes read the same
        // pre-wave colors (eligible nodes are > 2 hops apart, so their
        // choices cannot constrain each other).
        let picks: Vec<(NodeId, Color)> = eligible
            .iter()
            .map(|&u| {
                let vicinity = hops::within_hops(net.graph(), u, 2);
                let used: Vec<Color> = vicinity
                    .iter()
                    .filter_map(|&(v, _)| net.assignment().get(v))
                    .collect();
                (u, Color::lowest_excluding(used))
            })
            .collect();
        for &(u, c) in &picks {
            net.assignment_mut().set(u, c);
            unassigned.remove(&u);
            // Announce to the 2-hop vicinity: one message per member
            // (1-hop direct, 2-hop relayed).
            for (v, _) in hops::within_hops(net.graph(), u, 2) {
                eng.send_to(u, v, Payload::ColorUpdate(c));
            }
        }
        eng.tick();
        // Receivers refresh their caches (drain; state already global).
        for n in net.iter_nodes() {
            let _ = eng.drain(n);
        }
    }

    debug_assert!(net.validate().is_ok(), "distributed CP join invalid");
    (RecodeOutcome::from_diff(net, &before), eng.metrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_core::{Cp, Minim, RecodingStrategy};
    use minim_geom::Point;
    use minim_net::event::Event;
    use minim_net::workload::JoinWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a base network with `count` Minim-handled joins.
    fn base_net(count: usize, seed: u64) -> (Network, Vec<Event>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let events = JoinWorkload::paper(count).generate(&mut rng);
        let mut net = Network::new(25.0);
        let mut m = Minim::default();
        for e in &events {
            m.apply(&mut net, e);
        }
        let extra = JoinWorkload::paper(5).generate(&mut rng);
        (net, extra)
    }

    #[test]
    fn distributed_minim_matches_centralized_exactly() {
        for seed in 0..10 {
            let (net0, extras) = base_net(30, seed);
            for e in &extras {
                let Event::Join { cfg } = e else {
                    unreachable!()
                };
                let mut net_d = net0.clone();
                let id = net_d.next_id();
                let (out_d, metrics) = distributed_minim_join(&mut net_d, id, *cfg);
                assert!(net_d.validate().is_ok());
                assert!(metrics.rounds >= 4);

                let mut net_c = net0.clone();
                let mut m = Minim::default();
                let id_c = net_c.next_id();
                let out_c = m.on_join(&mut net_c, id_c, *cfg);
                assert_eq!(id, id_c);
                assert_eq!(
                    net_d.snapshot_assignment(),
                    net_c.snapshot_assignment(),
                    "seed {seed}: distributed and centralized Minim must agree"
                );
                assert_eq!(out_d.recoded, out_c.recoded);
            }
        }
    }

    #[test]
    fn distributed_cp_matches_centralized_exactly() {
        for seed in 20..30 {
            let (mut net_cp_base, extras) = base_net(30, seed);
            // Rebuild the base with CP so both paths share CP history.
            let _ = &mut net_cp_base;
            for e in &extras {
                let Event::Join { cfg } = e else {
                    unreachable!()
                };
                let mut net_d = net_cp_base.clone();
                let id = net_d.next_id();
                let (out_d, _metrics) = distributed_cp_join(&mut net_d, id, *cfg);
                assert!(net_d.validate().is_ok());

                let mut net_c = net_cp_base.clone();
                let mut cp = Cp::default();
                let out_c = {
                    let id_c = net_c.next_id();
                    assert_eq!(id, id_c);
                    cp.on_join(&mut net_c, id_c, *cfg)
                };
                assert_eq!(
                    net_d.snapshot_assignment(),
                    net_c.snapshot_assignment(),
                    "seed {seed}: distributed and centralized CP must agree"
                );
                assert_eq!(out_d.recoded, out_c.recoded);
            }
        }
    }

    #[test]
    fn minim_join_message_cost_is_local_not_global() {
        // The same corner join in networks of very different sizes must
        // cost (nearly) the same number of messages: communication is
        // local to the event (§1).
        let cfg = NodeConfig::new(Point::new(2.0, 2.0), 8.0);
        let mut costs = Vec::new();
        for &count in &[20usize, 60, 120] {
            let mut rng = StdRng::seed_from_u64(4);
            // Place the population in the far corner quadrant so the
            // joiner's neighborhood stays fixed.
            let mut net = Network::new(25.0);
            let mut m = Minim::default();
            let w = JoinWorkload {
                count,
                minr: 10.0,
                maxr: 15.0,
                arena: minim_geom::Rect::new(50.0, 50.0, 100.0, 100.0),
            };
            for e in w.generate(&mut rng) {
                m.apply(&mut net, &e);
            }
            let id = net.next_id();
            let (_, metrics) = distributed_minim_join(&mut net, id, cfg);
            costs.push(metrics.messages);
        }
        // The corner joiner has no neighbors in any of the populations:
        // identical (minimal) cost regardless of N.
        assert_eq!(costs[0], costs[1]);
        assert_eq!(costs[1], costs[2]);
    }

    #[test]
    fn minim_join_message_cost_scales_with_degree() {
        // A hub joiner: messages grow with its neighborhood, not with N.
        let mut net = Network::new(10.0);
        let mut ids = Vec::new();
        for k in 0..8 {
            let angle = k as f64 * std::f64::consts::TAU / 8.0;
            let p = Point::new(50.0 + 5.0 * angle.cos(), 50.0 + 5.0 * angle.sin());
            ids.push(net.join(NodeConfig::new(p, 7.0)));
        }
        let mut m = Minim::default();
        // Color the ring via re-join trick: recode each as if joining.
        // Simpler: give them colors with Minim join on a fresh net.
        let mut net2 = Network::new(10.0);
        for k in 0..8 {
            let angle = k as f64 * std::f64::consts::TAU / 8.0;
            let p = Point::new(50.0 + 5.0 * angle.cos(), 50.0 + 5.0 * angle.sin());
            let id = net2.next_id();
            m.on_join(&mut net2, id, NodeConfig::new(p, 7.0));
        }
        let id = net2.next_id();
        let (_, metrics) =
            distributed_minim_join(&mut net2, id, NodeConfig::new(Point::new(50.0, 50.0), 7.0));
        // 8 queries + 8 reports + recolors + acks ≥ 16.
        assert!(metrics.messages >= 16, "got {}", metrics.messages);
        assert!(net2.validate().is_ok());
    }

    #[test]
    fn cp_waves_terminate_and_round_count_reflects_chains() {
        // Duplicates around the joiner force at least one wave.
        let mut net = Network::new(10.0);
        let s1 = net.join(NodeConfig::new(Point::new(44.0, 50.0), 7.0));
        let s2 = net.join(NodeConfig::new(Point::new(56.0, 50.0), 7.0));
        net.set_color(s1, Color::new(1));
        net.set_color(s2, Color::new(1));
        assert!(net.validate().is_ok());
        let id = net.next_id();
        let (out, metrics) =
            distributed_cp_join(&mut net, id, NodeConfig::new(Point::new(50.0, 50.0), 7.0));
        assert!(net.validate().is_ok());
        assert!(out.recodings() >= 1);
        // 2 query/report rounds + reselect round + ≥1 wave.
        assert!(metrics.rounds >= 4, "got {}", metrics.rounds);
    }
}
