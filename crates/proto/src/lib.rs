//! Distributed message-passing realization of the recoding strategies.
//!
//! The paper stresses that its algorithms "involve communication only
//! local to the event and are distributed, i.e., they require no
//! central coordination" (§1), and that `RecodeOnJoin` is "locally
//! centralized at node n, using only local information" (§4.1). This
//! crate makes those claims executable:
//!
//! * [`engine`] — a synchronous-round message engine over the radio
//!   topology with per-protocol message and round accounting.
//! * [`join`] — the distributed join protocols: Minim's
//!   gather → match-at-the-joiner → recolor flow, and CP's
//!   identity-ordered wave selection.
//! * [`parallel`] — concurrent event execution under the Theorem
//!   4.1.10 separation condition (joins at least 5 hops apart commute
//!   and can run simultaneously), including a counterexample
//!   constructor showing why the separation is needed.
//!
//! The protocols drive the same algorithmic kernels as `minim-core`
//! (the bipartite matching, the lowest-available rule), so distributed
//! and centralized executions produce **identical** assignments — this
//! is asserted by the tests, and is the faithful reading of the paper:
//! the distribution changes who computes, not what is computed.

#![deny(missing_docs)]

pub mod engine;
pub mod events;
pub mod join;
pub mod parallel;

pub use engine::{Engine, Message, Payload, ProtocolMetrics};
pub use events::{distributed_minim_leave, distributed_minim_move, distributed_minim_set_range};
pub use join::{distributed_cp_join, distributed_minim_join};
pub use parallel::{parallel_minim_joins, ParallelJoinError};
