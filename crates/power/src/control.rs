//! The closed-loop distributed power-control iteration.
//!
//! Foschini–Miljanic: every link scales its transmit power by the
//! ratio of its target SINR to its measured SINR,
//!
//! ```text
//! p_i ← clamp( γ / SINR_i(p) · p_i )  =  clamp( γ · I_i(p) / (L · g_ii) )
//! ```
//!
//! where `I_i(p)` is the noise-plus-interference at `i`'s receiver.
//! The right-hand side is a *standard interference function*
//! (positive, monotone, scalable), so with the max-power clamp the
//! synchronous iteration converges from any starting point; started
//! from the minimum power it converges **monotonically from below**,
//! which is what [`run`] does and what the tests pin.
//!
//! Real handsets cannot emit arbitrary powers: [`PowerLadder`]
//! optionally quantizes every update **up** to the next discrete
//! level (ceiling quantization keeps the iteration standard and makes
//! the state space finite, so discrete runs reach an exact fixed
//! point). Feasibility is read off the fixed point: if every link
//! meets its target the instance is [`Feasibility::Converged`]; if
//! some links sit at the power cap below target the instance is
//! overloaded ([`Feasibility::PowerCapped`] names them — the
//! textbook near-far outcome); if the iteration budget runs out
//! before the fixed point the instance is [`Feasibility::Diverging`].

use crate::sinr::SinrField;

/// The discrete transmit-power levels a radio can emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerLadder {
    /// Any power in `[min_power, max_power]` — the idealized
    /// continuous loop.
    Continuous,
    /// `levels` geometrically spaced rungs from `min_power` to
    /// `max_power` inclusive; updates quantize **up** to the next
    /// rung (a radio rounds its power request up so the target is
    /// still met).
    Geometric {
        /// Number of rungs (≥ 2).
        levels: usize,
    },
}

impl PowerLadder {
    /// Quantizes a clamped power request onto the ladder. Continuous
    /// ladders pass through; geometric ladders round up to the next
    /// rung (the top rung for requests beyond it).
    pub fn quantize_up(&self, p: f64, min_power: f64, max_power: f64) -> f64 {
        match *self {
            PowerLadder::Continuous => p,
            PowerLadder::Geometric { levels } => {
                debug_assert!(levels >= 2);
                if p <= min_power {
                    return min_power;
                }
                if p >= max_power {
                    return max_power;
                }
                let step = (max_power / min_power).ln() / (levels - 1) as f64;
                let k = ((p / min_power).ln() / step).ceil();
                (min_power * (k * step).exp()).min(max_power)
            }
        }
    }

    /// Every rung of the ladder within `[min_power, max_power]`
    /// (a two-element vector for continuous ladders: the bounds).
    pub fn levels(&self, min_power: f64, max_power: f64) -> Vec<f64> {
        match *self {
            PowerLadder::Continuous => vec![min_power, max_power],
            PowerLadder::Geometric { levels } => {
                let step = (max_power / min_power).ln() / (levels - 1) as f64;
                (0..levels)
                    .map(|k| (min_power * (k as f64 * step).exp()).min(max_power))
                    .collect()
            }
        }
    }
}

/// Parameters of one control-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Target SINR `γ` every link drives toward (linear, not dB).
    pub target_sinr: f64,
    /// Smallest emittable power (also the starting point — the loop
    /// converges monotonically from below).
    pub min_power: f64,
    /// The power cap; links stuck here below target are infeasible.
    pub max_power: f64,
    /// The radio's power ladder.
    pub ladder: PowerLadder,
    /// Relative-change convergence tolerance for continuous ladders
    /// (discrete ladders stop on exact fixed points).
    pub tol: f64,
    /// Iteration budget; exhausting it is [`Feasibility::Diverging`].
    pub max_iters: usize,
}

impl ControlConfig {
    /// A sensible loop for targets around `target_sinr`: powers
    /// spanning `[min_power, max_power]`, continuous ladder, `1e-6`
    /// tolerance, 200-iteration budget.
    pub fn new(target_sinr: f64, min_power: f64, max_power: f64) -> Self {
        ControlConfig {
            target_sinr,
            min_power,
            max_power,
            ladder: PowerLadder::Continuous,
            tol: 1e-6,
            max_iters: 200,
        }
    }

    /// Asserts the configuration is runnable.
    ///
    /// # Panics
    /// Panics on a non-positive target, an empty/inverted power
    /// interval, a degenerate ladder, a non-positive tolerance, or a
    /// zero iteration budget.
    pub fn validate(&self) {
        assert!(
            self.target_sinr.is_finite() && self.target_sinr > 0.0,
            "target_sinr must be positive, got {}",
            self.target_sinr
        );
        assert!(
            self.min_power > 0.0 && self.min_power <= self.max_power && self.max_power.is_finite(),
            "need 0 < min_power <= max_power, got [{}, {}]",
            self.min_power,
            self.max_power
        );
        if let PowerLadder::Geometric { levels } = self.ladder {
            assert!(levels >= 2, "a discrete ladder needs >= 2 levels");
        }
        assert!(self.tol > 0.0, "tol must be positive");
        assert!(self.max_iters >= 1, "need an iteration budget");
    }
}

/// How a control-loop run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Feasibility {
    /// Fixed point with every link at or above target: the instance
    /// is feasible and `powers` is (within tolerance / quantization)
    /// the minimal power vector serving it.
    Converged,
    /// Fixed point with the listed links pinned at `max_power` below
    /// target: the instance is overloaded (the near-far outcome);
    /// everyone else still meets target *given* the capped powers.
    PowerCapped {
        /// Link indices stuck at the cap below target, ascending.
        capped: Vec<usize>,
    },
    /// The iteration budget ran out before a fixed point (continuous
    /// loops approach infeasible fixed points asymptotically; this is
    /// the in-budget divergence signal).
    Diverging,
}

impl Feasibility {
    /// Whether every link met its target.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Converged)
    }
}

/// The result of [`run`]: final powers, per-link SINRs, and the
/// feasibility verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlOutcome {
    /// Final power vector (one entry per link).
    pub powers: Vec<f64>,
    /// SINR of every link under `powers`.
    pub sinrs: Vec<f64>,
    /// Synchronous iterations executed.
    pub iterations: usize,
    /// How the run ended.
    pub feasibility: Feasibility,
}

/// Runs the synchronous Foschini–Miljanic iteration on `field` from
/// the all-minimum power vector. See the module docs for the update
/// rule and the feasibility classification.
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn run(field: &SinrField, cfg: &ControlConfig) -> ControlOutcome {
    cfg.validate();
    let n = field.len();
    let start = cfg
        .ladder
        .quantize_up(cfg.min_power, cfg.min_power, cfg.max_power);
    let mut powers = vec![start; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    let mut fixed_point = false;
    let gamma = cfg.target_sinr;
    let budget = field.budget();
    while iterations < cfg.max_iters {
        iterations += 1;
        let mut max_rel = 0.0f64;
        for i in 0..n {
            let g = field.direct_gain(i);
            let desired = if g > 0.0 {
                gamma * field.interference(&powers, i) / (budget.processing_gain * g)
            } else {
                // Dead direct path: no finite power serves the link.
                f64::INFINITY
            };
            let clamped = desired.clamp(cfg.min_power, cfg.max_power);
            let q = cfg
                .ladder
                .quantize_up(clamped, cfg.min_power, cfg.max_power);
            max_rel = max_rel.max((q - powers[i]).abs() / powers[i]);
            next[i] = q;
        }
        std::mem::swap(&mut powers, &mut next);
        let done = match cfg.ladder {
            PowerLadder::Continuous => max_rel <= cfg.tol,
            // Discrete state space: stop only on the exact fixed point.
            PowerLadder::Geometric { .. } => max_rel == 0.0,
        };
        if done {
            fixed_point = true;
            break;
        }
    }
    let sinrs = field.sinrs(&powers);
    // Meeting the target "within tolerance": one more tolerance-sized
    // power step would clear it.
    let met = |i: usize| sinrs[i] >= gamma * (1.0 - 4.0 * cfg.tol);
    let feasibility = if !fixed_point {
        Feasibility::Diverging
    } else {
        let capped: Vec<usize> = (0..n)
            .filter(|&i| !met(i) && powers[i] >= cfg.max_power * (1.0 - 1e-12))
            .collect();
        if capped.is_empty() && (0..n).all(met) {
            Feasibility::Converged
        } else {
            // At a fixed point an unmet link is necessarily at the
            // cap; keep the classification robust anyway.
            let capped = if capped.is_empty() {
                (0..n).filter(|&i| !met(i)).collect()
            } else {
                capped
            };
            Feasibility::PowerCapped { capped }
        }
    };
    ControlOutcome {
        powers,
        sinrs,
        iterations,
        feasibility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::GainModel;
    use crate::sinr::LinkBudget;
    use minim_geom::Point;

    fn field_of(coords: &[(f64, f64)], receiver: &[usize]) -> SinrField {
        let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        SinrField::build(
            &GainModel::terrain(),
            LinkBudget::cdma64(),
            &positions,
            receiver,
            None,
            0.0,
        )
    }

    /// Two well-separated pairs: feasible; the loop must converge with
    /// every SINR at the target (within tolerance), powers strictly
    /// inside the cap.
    #[test]
    fn feasible_instance_converges_to_target() {
        let field = field_of(
            &[(0.0, 0.0), (8.0, 0.0), (300.0, 0.0), (308.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(4.0, 1e-3, 1e6);
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Converged);
        assert!(out.iterations < cfg.max_iters);
        for (i, &s) in out.sinrs.iter().enumerate() {
            assert!(
                (s / 4.0 - 1.0).abs() < 1e-3,
                "link {i} SINR {s} should sit at the target"
            );
            assert!(out.powers[i] < cfg.max_power);
        }
    }

    /// Monotone convergence from below: every synchronous iterate
    /// dominates the previous one, and the final vector dominates
    /// them all — the standard-interference-function signature.
    #[test]
    fn iterates_are_monotone_from_min_power() {
        let field = field_of(
            &[(0.0, 0.0), (6.0, 0.0), (14.0, 0.0), (20.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(6.0, 1e-3, 1e6);
        // Re-run the loop manually, capturing iterates.
        let mut powers = vec![cfg.min_power; field.len()];
        for _ in 0..60 {
            let prev = powers.clone();
            for (i, p) in powers.iter_mut().enumerate() {
                let desired = cfg.target_sinr * field.interference(&prev, i)
                    / (field.budget().processing_gain * field.direct_gain(i));
                *p = desired.clamp(cfg.min_power, cfg.max_power);
            }
            for (i, (now, before)) in powers.iter().zip(&prev).enumerate() {
                assert!(
                    now >= &(before - 1e-15),
                    "iterate must not decrease: link {i}"
                );
            }
        }
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Converged);
        for (ran, manual) in out.powers.iter().zip(&powers) {
            // Both converge from below to the same fixed point; the
            // tolerance-stopped run and the 60-iteration prefix agree
            // to well within the convergence slack.
            let rel = (ran - manual).abs() / manual;
            assert!(rel < 1e-3, "same fixed point, got rel diff {rel}");
        }
    }

    /// An overloaded near-far cell: many co-located transmitters
    /// shouting at one receiver point can never all make a high
    /// target under a finite cap — the loop must *detect* that, not
    /// spin.
    #[test]
    fn overloaded_near_far_is_power_capped() {
        // 6 transmitters in a tight clump all aiming at node 0: the
        // aggregate interference at the shared receiver scales with
        // every power simultaneously, so γ = 16 (> L/5) is hopeless.
        let mut coords = vec![(0.0, 0.0)];
        for k in 0..6 {
            coords.push((10.0 + 0.1 * k as f64, 0.0));
        }
        let receiver: Vec<usize> = std::iter::once(1)
            .chain(std::iter::repeat_n(0, 6))
            .collect();
        let field = field_of(&coords, &receiver);
        let cfg = ControlConfig::new(16.0, 1e-3, 1e4);
        let out = run(&field, &cfg);
        let Feasibility::PowerCapped { capped } = &out.feasibility else {
            panic!("expected PowerCapped, got {:?}", out.feasibility);
        };
        assert!(!capped.is_empty());
        for &i in capped {
            assert!(out.powers[i] >= cfg.max_power * (1.0 - 1e-9));
            assert!(out.sinrs[i] < 16.0);
        }
    }

    /// Tight budget on a feasible-but-slow instance reports
    /// `Diverging` instead of a wrong verdict.
    #[test]
    fn exhausted_budget_reports_diverging() {
        let field = field_of(
            &[(0.0, 0.0), (6.0, 0.0), (9.0, 0.0), (15.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(8.0, 1e-3, 1e6);
        cfg.max_iters = 2;
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Diverging);
        assert_eq!(out.iterations, 2);
    }

    /// Discrete ladders reach an exact fixed point whose powers are
    /// ladder rungs, and ceiling quantization never lands below the
    /// continuous solution.
    #[test]
    fn discrete_ladder_fixed_point_on_rungs() {
        let field = field_of(
            &[(0.0, 0.0), (7.0, 0.0), (40.0, 3.0), (46.0, 3.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(4.0, 1e-3, 1e5);
        let cont = run(&field, &cfg);
        cfg.ladder = PowerLadder::Geometric { levels: 24 };
        let disc = run(&field, &cfg);
        assert_eq!(disc.feasibility, Feasibility::Converged);
        let rungs = cfg.ladder.levels(cfg.min_power, cfg.max_power);
        for (i, &p) in disc.powers.iter().enumerate() {
            assert!(
                rungs.iter().any(|&r| (r - p).abs() < 1e-9 * r),
                "power {p} of link {i} is not a rung"
            );
            assert!(
                p >= cont.powers[i] * (1.0 - 1e-9),
                "ceiling quantization stays above the continuous solution"
            );
            assert!(disc.sinrs[i] >= 4.0 * (1.0 - 1e-3), "target still met");
        }
        // Fixed point: one more run from the discrete solution is a
        // no-op (run() restarts from min power and must land on the
        // same rungs — the fixed point is unique from below).
        let again = run(&field, &cfg);
        assert_eq!(again.powers, disc.powers);
    }

    #[test]
    fn quantize_up_is_monotone_and_idempotent() {
        let ladder = PowerLadder::Geometric { levels: 10 };
        let (lo, hi) = (1e-3, 1e3);
        let rungs = ladder.levels(lo, hi);
        assert_eq!(rungs.len(), 10);
        assert!((rungs[0] - lo).abs() < 1e-12);
        assert!((rungs[9] - hi).abs() < 1e-9);
        let mut prev = 0.0;
        for k in 0..200 {
            let p = lo * ((k as f64 / 199.0) * (hi / lo).ln()).exp();
            let q = ladder.quantize_up(p, lo, hi);
            assert!(q + 1e-15 >= p, "never rounds down");
            assert!(q + 1e-15 >= prev, "monotone");
            assert!(
                (ladder.quantize_up(q, lo, hi) - q).abs() < 1e-12 * q,
                "idempotent"
            );
            prev = q;
        }
    }

    #[test]
    fn isolated_link_saturates_at_cap() {
        // A single node with no receiver: dead direct path, power
        // pinned at the cap and reported infeasible.
        let field = field_of(&[(0.0, 0.0)], &[0]);
        let out = run(&field, &ControlConfig::new(4.0, 1e-3, 10.0));
        assert_eq!(
            out.feasibility,
            Feasibility::PowerCapped { capped: vec![0] }
        );
        assert_eq!(out.powers, vec![10.0]);
    }
}
