//! The closed-loop distributed power-control iteration.
//!
//! Foschini–Miljanic: every link scales its transmit power by the
//! ratio of its target SINR to its measured SINR,
//!
//! ```text
//! p_i ← clamp( γ / SINR_i(p) · p_i )  =  clamp( γ · I_i(p) / (L · g_ii) )
//! ```
//!
//! where `I_i(p)` is the noise-plus-interference at `i`'s receiver.
//! The right-hand side is a *standard interference function*
//! (positive, monotone, scalable), so with the max-power clamp the
//! iteration converges from any starting point — synchronously
//! ([`run_with`], the classic all-links sweep) or **asynchronously**
//! ([`relax`], the active-set worklist that only re-updates links
//! whose interference actually changed; Yates' framework covers
//! totally asynchronous update orders, so both land on the same
//! unique fixed point). Started from the minimum power the iteration
//! converges monotonically from below, which is what [`run`] does and
//! what the tests pin.
//!
//! Real handsets cannot emit arbitrary powers: [`PowerLadder`]
//! optionally quantizes every update **up** to the next discrete
//! level (ceiling quantization keeps the iteration standard and makes
//! the state space finite, so discrete runs reach an exact fixed
//! point). On a discrete ladder the quantized update map is monotone
//! on a finite lattice: any update order started from the all-minimum
//! vector climbs to the **least** fixed point, so the active-set
//! relaxation reaches the exact sweep result — but a warm start above
//! that fixed point need not descend to it, which is why warm
//! restarts are a continuous-ladder tool (see [`relax`]).
//!
//! Feasibility is read off the fixed point: if every link meets its
//! target the instance is [`Feasibility::Converged`]; if some links
//! sit at the power cap below target the instance is overloaded
//! ([`Feasibility::PowerCapped`] names them — the textbook near-far
//! outcome); if the update budget runs out before the fixed point the
//! instance is [`Feasibility::Diverging`].

use crate::sinr::SinrField;
use minim_graph::UnionFind;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The discrete transmit-power levels a radio can emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerLadder {
    /// Any power in `[min_power, max_power]` — the idealized
    /// continuous loop.
    Continuous,
    /// `levels` geometrically spaced rungs from `min_power` to
    /// `max_power` inclusive; updates quantize **up** to the next
    /// rung (a radio rounds its power request up so the target is
    /// still met).
    Geometric {
        /// Number of rungs (≥ 2).
        levels: usize,
    },
}

impl PowerLadder {
    /// Quantizes a clamped power request onto the ladder. Continuous
    /// ladders pass through; geometric ladders round up to the next
    /// rung (the top rung for requests beyond it).
    pub fn quantize_up(&self, p: f64, min_power: f64, max_power: f64) -> f64 {
        match *self {
            PowerLadder::Continuous => p,
            PowerLadder::Geometric { levels } => {
                debug_assert!(levels >= 2);
                if p <= min_power {
                    return min_power;
                }
                if p >= max_power {
                    return max_power;
                }
                let step = (max_power / min_power).ln() / (levels - 1) as f64;
                let k = ((p / min_power).ln() / step).ceil();
                (min_power * (k * step).exp()).min(max_power)
            }
        }
    }

    /// Every rung of the ladder within `[min_power, max_power]`
    /// (a two-element vector for continuous ladders: the bounds).
    pub fn levels(&self, min_power: f64, max_power: f64) -> Vec<f64> {
        match *self {
            PowerLadder::Continuous => vec![min_power, max_power],
            PowerLadder::Geometric { levels } => {
                let step = (max_power / min_power).ln() / (levels - 1) as f64;
                (0..levels)
                    .map(|k| (min_power * (k as f64 * step).exp()).min(max_power))
                    .collect()
            }
        }
    }
}

/// Parameters of one control-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Target SINR `γ` every link drives toward (linear, not dB).
    pub target_sinr: f64,
    /// Smallest emittable power (also the starting point — the loop
    /// converges monotonically from below).
    pub min_power: f64,
    /// The power cap; links stuck here below target are infeasible.
    pub max_power: f64,
    /// The radio's power ladder.
    pub ladder: PowerLadder,
    /// Relative-change convergence tolerance for continuous ladders
    /// (discrete ladders stop on exact fixed points).
    pub tol: f64,
    /// Iteration budget: synchronous sweeps for [`run_with`], sweep
    /// *equivalents* (budget × live links single-link updates) for
    /// [`relax`]. Exhausting it is [`Feasibility::Diverging`].
    pub max_iters: usize,
}

impl ControlConfig {
    /// A sensible loop for targets around `target_sinr`: powers
    /// spanning `[min_power, max_power]`, continuous ladder, `1e-6`
    /// tolerance, 200-iteration budget.
    pub fn new(target_sinr: f64, min_power: f64, max_power: f64) -> Self {
        ControlConfig {
            target_sinr,
            min_power,
            max_power,
            ladder: PowerLadder::Continuous,
            tol: 1e-6,
            max_iters: 200,
        }
    }

    /// The power every link starts from: `min_power` snapped onto the
    /// ladder.
    pub fn start_power(&self) -> f64 {
        self.ladder
            .quantize_up(self.min_power, self.min_power, self.max_power)
    }

    /// Asserts the configuration is runnable.
    ///
    /// # Panics
    /// Panics on a non-positive target, an empty/inverted power
    /// interval, a degenerate ladder, a non-positive tolerance, or a
    /// zero iteration budget.
    pub fn validate(&self) {
        assert!(
            self.target_sinr.is_finite() && self.target_sinr > 0.0,
            "target_sinr must be positive, got {}",
            self.target_sinr
        );
        assert!(
            self.min_power > 0.0 && self.min_power <= self.max_power && self.max_power.is_finite(),
            "need 0 < min_power <= max_power, got [{}, {}]",
            self.min_power,
            self.max_power
        );
        if let PowerLadder::Geometric { levels } = self.ladder {
            assert!(levels >= 2, "a discrete ladder needs >= 2 levels");
        }
        assert!(self.tol > 0.0, "tol must be positive");
        assert!(self.max_iters >= 1, "need an iteration budget");
    }
}

/// How a control-loop run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Feasibility {
    /// Fixed point with every link at or above target: the instance
    /// is feasible and `powers` is (within tolerance / quantization)
    /// the minimal power vector serving it.
    Converged,
    /// Fixed point with the listed links pinned at `max_power` below
    /// target: the instance is overloaded (the near-far outcome);
    /// everyone else still meets target *given* the capped powers.
    PowerCapped {
        /// Link indices stuck at the cap below target, ascending.
        capped: Vec<usize>,
    },
    /// The update budget ran out before a fixed point (continuous
    /// loops approach infeasible fixed points asymptotically; this is
    /// the in-budget divergence signal).
    Diverging,
}

impl Feasibility {
    /// Whether every link met its target.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Converged)
    }
}

/// [`Feasibility`] without the capped-link payload — the `Copy`
/// verdict scratch-based runs return; the capped indices live in
/// [`ControlScratch::capped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Fixed point, every live link at or above target.
    Converged,
    /// Fixed point with links pinned at the cap below target.
    PowerCapped,
    /// Update budget exhausted before a fixed point.
    Diverging,
}

/// The result of [`run`]: final powers, per-link SINRs, and the
/// feasibility verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlOutcome {
    /// Final power vector (one entry per link slot).
    pub powers: Vec<f64>,
    /// SINR of every link under `powers` (0 for absent slots).
    pub sinrs: Vec<f64>,
    /// Synchronous iterations executed.
    pub iterations: usize,
    /// How the run ended.
    pub feasibility: Feasibility,
}

/// Report of one [`run_with`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// Synchronous iterations executed.
    pub iterations: usize,
    /// How the run ended.
    pub verdict: Verdict,
}

/// Report of one [`relax`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaxReport {
    /// Single-link power writes performed (the active-set analogue of
    /// `iterations × n`; the whole point is that this stays small when
    /// little changed).
    pub updates: u64,
    /// How the run ended.
    pub verdict: Verdict,
}

/// Reusable control-loop state: power/SINR slabs, the active-set
/// worklist, and the capped-link list. Create once, feed to
/// [`run_with`] / [`relax`] forever — steady-state runs allocate
/// nothing.
///
/// `powers` persists across calls; that is what makes warm-started
/// relaxation possible. The slabs are indexed by link id and only
/// ever grow.
#[derive(Debug, Clone, Default)]
pub struct ControlScratch {
    /// Current power vector (one entry per link slot). Warm state:
    /// survives across calls.
    pub powers: Vec<f64>,
    /// SINRs under `powers` as of the last classification.
    pub sinrs: Vec<f64>,
    /// Live links pinned at the cap below target as of the last
    /// classification, ascending.
    pub capped: Vec<u32>,
    /// Double buffer for the synchronous sweep.
    next: Vec<f64>,
    /// Active-set FIFO.
    queue: VecDeque<u32>,
    /// Membership flags for `queue`.
    queued: Vec<bool>,
}

impl ControlScratch {
    /// An empty scratch (slabs grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the slabs to `n` slots, initializing new power entries to
    /// `start`. Existing entries are untouched (warm state).
    pub fn fit(&mut self, n: usize, start: f64) {
        if self.powers.len() < n {
            self.powers.resize(n, start);
        }
        if self.next.len() < n {
            self.next.resize(n, 0.0);
        }
        if self.queued.len() < n {
            self.queued.resize(n, false);
        }
    }

    /// Enqueues link `i` for the next [`relax`] call (idempotent).
    /// Seed the worklist with the field's dirty rows before a warm
    /// relaxation.
    pub fn mark(&mut self, i: u32) {
        let iu = i as usize;
        if iu >= self.queued.len() {
            self.queued.resize(iu + 1, false);
        }
        if !self.queued[iu] {
            self.queued[iu] = true;
            self.queue.push_back(i);
        }
    }

    /// Rows currently marked for the next warm relaxation. Zero after
    /// any [`relax`] / [`relax_parallel`] call — both drain the
    /// worklist completely, whatever the verdict.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Converts a scratch-based verdict into the owning
    /// [`Feasibility`] (cloning the capped list).
    pub fn feasibility(&self, verdict: Verdict) -> Feasibility {
        match verdict {
            Verdict::Converged => Feasibility::Converged,
            Verdict::PowerCapped => Feasibility::PowerCapped {
                capped: self.capped.iter().map(|&i| i as usize).collect(),
            },
            Verdict::Diverging => Feasibility::Diverging,
        }
    }
}

/// One Foschini–Miljanic update for link `i`, powers gathered through
/// `load`: the clamped, ladder-quantized power request. The closure
/// indirection lets the island-parallel path read through a raw
/// pointer while the sequential paths pass a plain slice — both run
/// the identical accumulation, so the update bits agree.
#[inline]
fn fm_update_with<F: Fn(u32) -> f64>(
    field: &SinrField,
    cfg: &ControlConfig,
    load: F,
    i: usize,
) -> f64 {
    let g = field.direct_gain(i);
    let desired = if g > 0.0 {
        cfg.target_sinr * field.interference_with(load, i) / (field.budget().processing_gain * g)
    } else {
        // Dead direct path: no finite power serves the link.
        f64::INFINITY
    };
    let clamped = desired.clamp(cfg.min_power, cfg.max_power);
    cfg.ladder
        .quantize_up(clamped, cfg.min_power, cfg.max_power)
}

/// [`fm_update_with`] over a power slice.
#[inline]
fn fm_update(field: &SinrField, cfg: &ControlConfig, powers: &[f64], i: usize) -> f64 {
    fm_update_with(field, cfg, |j| powers[j as usize], i)
}

/// Classifies the fixed point in `scratch.powers`: fills
/// `scratch.sinrs` and `scratch.capped` and returns `Converged` or
/// `PowerCapped` (callers that ran out of budget override with
/// `Diverging`).
fn classify(field: &SinrField, cfg: &ControlConfig, scratch: &mut ControlScratch) -> Verdict {
    field.sinrs_into(&scratch.powers, &mut scratch.sinrs);
    let gamma = cfg.target_sinr;
    // Meeting the target "within tolerance": one more tolerance-sized
    // power step would clear it.
    let met = |sinr: f64| sinr >= gamma * (1.0 - 4.0 * cfg.tol);
    scratch.capped.clear();
    let mut all_met = true;
    for i in 0..field.len() {
        if !field.is_live(i) || met(scratch.sinrs[i]) {
            continue;
        }
        all_met = false;
        if scratch.powers[i] >= cfg.max_power * (1.0 - 1e-12) {
            scratch.capped.push(i as u32);
        }
    }
    if all_met {
        return Verdict::Converged;
    }
    if scratch.capped.is_empty() {
        // At a fixed point an unmet link is necessarily at the cap;
        // keep the classification robust anyway.
        for i in 0..field.len() {
            if field.is_live(i) && !met(scratch.sinrs[i]) {
                scratch.capped.push(i as u32);
            }
        }
    }
    Verdict::PowerCapped
}

/// The synchronous Foschini–Miljanic sweep into caller-owned scratch:
/// every live link updates from the previous iterate each round,
/// starting from the all-minimum vector. Allocation-free once
/// `scratch` is warm. Absent slots keep power `start_power` and
/// report SINR 0.
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn run_with(
    field: &SinrField,
    cfg: &ControlConfig,
    scratch: &mut ControlScratch,
) -> SweepReport {
    cfg.validate();
    let n = field.len();
    let start = cfg.start_power();
    scratch.fit(n, start);
    scratch.powers.iter_mut().for_each(|p| *p = start);
    let mut iterations = 0;
    let mut fixed_point = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let mut max_rel = 0.0f64;
        for i in 0..n {
            if !field.is_live(i) {
                scratch.next[i] = scratch.powers[i];
                continue;
            }
            let q = fm_update(field, cfg, &scratch.powers, i);
            max_rel = max_rel.max((q - scratch.powers[i]).abs() / scratch.powers[i]);
            scratch.next[i] = q;
        }
        std::mem::swap(&mut scratch.powers, &mut scratch.next);
        let done = match cfg.ladder {
            PowerLadder::Continuous => max_rel <= cfg.tol,
            // Discrete state space: stop only on the exact fixed point.
            PowerLadder::Geometric { .. } => max_rel == 0.0,
        };
        if done {
            fixed_point = true;
            break;
        }
    }
    let verdict = classify(field, cfg, scratch);
    SweepReport {
        iterations,
        verdict: if fixed_point {
            verdict
        } else {
            Verdict::Diverging
        },
    }
}

/// The active-set (asynchronous) Foschini–Miljanic relaxation: a FIFO
/// worklist of links whose interference changed since their last
/// update, instead of sweeping all N links per round. Allocation-free
/// once `scratch` is warm.
///
/// * `warm == false`: resets every power to the start rung and
///   enqueues every live link — the event-driven equivalent of
///   [`run_with`] from cold. On a continuous ladder both converge to
///   the same (unique) fixed point within tolerance; on a discrete
///   ladder both climb to the exact least fixed point.
/// * `warm == true`: keeps `scratch.powers` (the previous
///   equilibrium) and relaxes only from the links already marked via
///   [`ControlScratch::mark`] — seed it with the field's dirty rows
///   ([`SinrField::take_dirty`]). Sound for **continuous** ladders
///   (unique fixed point, convergence from any start); a discrete
///   warm start above the least fixed point would stay there, so
///   discrete sessions restart cold instead.
///
/// A link whose recomputed power moves by more than `cfg.tol`
/// (relative; any change at all on discrete ladders) writes the new
/// power and enqueues exactly the links that hear it — the transposed
/// interferer index answers that in O(row). The update budget is
/// `cfg.max_iters × live links`; exhausting it drains the queue and
/// reports [`Verdict::Diverging`].
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn relax(
    field: &SinrField,
    cfg: &ControlConfig,
    scratch: &mut ControlScratch,
    warm: bool,
) -> RelaxReport {
    cfg.validate();
    let n = field.len();
    let start = cfg.start_power();
    scratch.fit(n, start);
    if !warm {
        scratch.powers.iter_mut().for_each(|p| *p = start);
        for i in scratch.queue.drain(..) {
            scratch.queued[i as usize] = false;
        }
        for i in 0..n {
            if field.is_live(i) {
                scratch.queued[i] = true;
                scratch.queue.push_back(i as u32);
            }
        }
    }
    let max_updates = (cfg.max_iters as u64) * (field.live_links().max(1) as u64);
    let mut updates: u64 = 0;
    let mut exhausted = false;
    while let Some(i) = scratch.queue.pop_front() {
        let iu = i as usize;
        scratch.queued[iu] = false;
        if !field.is_live(iu) {
            continue;
        }
        let p = scratch.powers[iu];
        let q = fm_update(field, cfg, &scratch.powers, iu);
        let changed = match cfg.ladder {
            PowerLadder::Continuous => (q - p).abs() / p > cfg.tol,
            PowerLadder::Geometric { .. } => q != p,
        };
        if !changed {
            continue;
        }
        scratch.powers[iu] = q;
        updates += 1;
        if updates >= max_updates && !scratch.queue.is_empty() {
            // Budget exhausted mid-flight: drain the worklist so the
            // scratch is clean for the next (cold) attempt.
            for k in scratch.queue.drain(..) {
                scratch.queued[k as usize] = false;
            }
            exhausted = true;
            break;
        }
        // A power change perturbs interference exactly at the rows
        // that hear `i`.
        for &k in field.hearers(iu) {
            let ku = k as usize;
            if !scratch.queued[ku] && field.is_live(ku) {
                scratch.queued[ku] = true;
                scratch.queue.push_back(k);
            }
        }
    }
    let verdict = classify(field, cfg, scratch);
    RelaxReport {
        updates,
        verdict: if exhausted {
            Verdict::Diverging
        } else {
            verdict
        },
    }
}

/// Deterministic decomposition of a relaxation worklist into
/// independent **islands**.
///
/// Starting from the seeded rows, the set of rows [`relax`] can ever
/// touch is the closure of the seeds under the transposed-CSR fan-out
/// `j → hearers(j)` (a row only enters the worklist when a row it
/// hears changes power). Islands are the connected components of that
/// closure under the same relation, computed with a min-root
/// [`UnionFind`] (the `BatchPlan` claim-cell idiom, one level down
/// the stack):
///
/// * every **write** of an island's run lands on one of its own rows;
/// * every **read** of a row outside the island is of a *frozen*
///   power — if island row `j` reads interferer `u` and `u` is in the
///   closure, then `j ∈ hearers(u)` forces `u` into `j`'s island, so
///   a cross-island read can only hit rows no island ever writes.
///
/// Islands therefore relax concurrently with no shared mutable state,
/// and the FIFO order of the sequential worklist *projected onto an
/// island* is exactly the island-local FIFO order — which is why
/// [`relax_parallel`] is bit-identical to [`relax`] (see its docs).
///
/// Island identity is deterministic: components are rooted at their
/// minimum row and numbered in ascending-root order, independent of
/// seed order, worker count, and scheduling. All buffers are retained
/// across [`IslandPlan::build`] calls — steady-state planning
/// allocates nothing once warm.
#[derive(Debug, Clone, Default)]
pub struct IslandPlan {
    uf: UnionFind,
    in_closure: Vec<bool>,
    /// Closure rows; BFS discovery order during the walk, sorted
    /// ascending afterwards (the membership pass wants it sorted).
    closure: Vec<u32>,
    /// Dense island index per closure row (stale outside the closure).
    island_of: Vec<u32>,
    /// CSR offsets over `members`, one per island, plus a sentinel.
    member_start: Vec<u32>,
    members: Vec<u32>,
    /// CSR offsets over `seeds`, one per island, plus a sentinel.
    seed_start: Vec<u32>,
    seeds: Vec<u32>,
    /// Per-island cursor / count scratch for the two counting sorts.
    counts: Vec<u32>,
}

impl IslandPlan {
    /// An empty plan (buffers grow on first build).
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans the relaxation seeded at `seed_rows` (duplicates and dead
    /// rows are skipped; relative order of surviving seeds is kept per
    /// island — it is the worklist order). See the type docs.
    pub fn build(&mut self, field: &SinrField, seed_rows: &[u32]) {
        let n = field.len();
        // Reset sparse state from the previous build, touching only
        // the rows that build marked.
        for &r in &self.closure {
            self.in_closure[r as usize] = false;
        }
        self.closure.clear();
        if self.in_closure.len() < n {
            self.in_closure.resize(n, false);
            self.island_of.resize(n, u32::MAX);
        }
        self.uf.reset(n);

        // Closure BFS over the transposed fan-out, unioning every edge.
        for &s in seed_rows {
            let su = s as usize;
            if field.is_live(su) && !self.in_closure[su] {
                self.in_closure[su] = true;
                self.closure.push(s);
            }
        }
        let mut head = 0;
        while head < self.closure.len() {
            let j = self.closure[head];
            head += 1;
            for &a in field.hearers(j as usize) {
                let au = a as usize;
                if !field.is_live(au) {
                    continue;
                }
                self.uf.union(j as usize, au);
                if !self.in_closure[au] {
                    self.in_closure[au] = true;
                    self.closure.push(a);
                }
            }
        }

        // Number islands by ascending root (the component minimum) and
        // group members ascending within each island: two counting
        // passes over the sorted closure.
        self.closure.sort_unstable();
        self.counts.clear();
        for &r in &self.closure {
            let root = self.uf.find(r as usize);
            if root == r as usize {
                self.island_of[root] = self.counts.len() as u32;
                self.counts.push(0);
            } else {
                // Roots are component minima, so the root was numbered
                // earlier in this ascending walk.
                self.island_of[r as usize] = self.island_of[root];
            }
            self.counts[self.island_of[r as usize] as usize] += 1;
        }
        let islands = self.counts.len();
        self.member_start.clear();
        self.member_start.push(0);
        let mut off = 0u32;
        for k in 0..islands {
            off += self.counts[k];
            self.member_start.push(off);
            self.counts[k] = self.member_start[k]; // becomes the cursor
        }
        self.members.clear();
        self.members.resize(off as usize, 0);
        for &r in &self.closure {
            let k = self.island_of[r as usize] as usize;
            self.members[self.counts[k] as usize] = r;
            self.counts[k] += 1;
        }

        // Distribute seeds per island, preserving their given order —
        // the island worklist seeds in exactly the order the global
        // worklist would have polled them. Both passes dedup by
        // clearing `in_closure` on first sight (true = not yet taken)
        // and restoring it from the closure list afterwards.
        self.counts.clear();
        self.counts.resize(islands, 0);
        self.seeds.clear();
        for &s in seed_rows {
            let su = s as usize;
            if field.is_live(su) && self.in_closure[su] {
                self.in_closure[su] = false;
                self.counts[self.island_of[su] as usize] += 1;
            }
        }
        for &r in &self.closure {
            self.in_closure[r as usize] = true;
        }
        self.seed_start.clear();
        self.seed_start.push(0);
        let mut off = 0u32;
        for k in 0..islands {
            off += self.counts[k];
            self.seed_start.push(off);
            self.counts[k] = self.seed_start[k];
        }
        self.seeds.resize(off as usize, 0);
        for &s in seed_rows {
            let su = s as usize;
            if field.is_live(su) && self.in_closure[su] {
                self.in_closure[su] = false;
                let k = self.island_of[su] as usize;
                self.seeds[self.counts[k] as usize] = s;
                self.counts[k] += 1;
            }
        }
        for &r in &self.closure {
            self.in_closure[r as usize] = true;
        }
    }

    /// Number of islands in the last build.
    pub fn islands(&self) -> usize {
        self.member_start.len().saturating_sub(1)
    }

    /// The rows of island `k`, ascending.
    pub fn members(&self, k: usize) -> &[u32] {
        &self.members[self.member_start[k] as usize..self.member_start[k + 1] as usize]
    }

    /// The seed rows of island `k`, in original seed order.
    pub fn seeds_of(&self, k: usize) -> &[u32] {
        &self.seeds[self.seed_start[k] as usize..self.seed_start[k + 1] as usize]
    }

    /// The island containing `row`, if it is in the planned closure.
    pub fn island_of(&self, row: u32) -> Option<usize> {
        let ru = row as usize;
        (ru < self.in_closure.len() && self.in_closure[ru]).then(|| self.island_of[ru] as usize)
    }

    /// Rows in the planned closure (the union of all islands).
    pub fn closure_len(&self) -> usize {
        self.closure.len()
    }

    /// Size of the largest island — the critical path of island-
    /// parallel relaxation, in rows.
    pub fn widest_island(&self) -> usize {
        (0..self.islands())
            .map(|k| self.members(k).len())
            .max()
            .unwrap_or(0)
    }
}

/// Retained state for [`relax_parallel`]: the island plan, one
/// worklist deque per worker slot, the per-island result slots, and
/// the seed buffer. Create once, reuse forever — steady-state
/// parallel settles allocate nothing beyond `std::thread::scope`'s own
/// bookkeeping (and nothing at all on the inline `workers <= 1` path).
#[derive(Debug, Clone, Default)]
pub struct IslandScratch {
    plan: IslandPlan,
    queues: Vec<VecDeque<u32>>,
    /// Per-island `(updates, exhausted)`, indexed by island id.
    reports: Vec<(u64, bool)>,
    seed_buf: Vec<u32>,
}

impl IslandScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The island plan of the last [`relax_parallel`] call.
    pub fn plan(&self) -> &IslandPlan {
        &self.plan
    }
}

/// Report of one [`relax_parallel`] pass: the [`RelaxReport`] fields
/// plus the island structure the pass exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelRelaxReport {
    /// Single-link power writes performed, summed over islands.
    pub updates: u64,
    /// How the run ended.
    pub verdict: Verdict,
    /// Independent islands the worklist decomposed into (the
    /// attainable parallel width).
    pub islands: usize,
    /// Rows in the largest island (the critical path).
    pub widest_island: usize,
}

/// Power slab shared across island workers through a raw pointer.
///
/// SAFETY: the island partition ([`IslandPlan`]) guarantees every
/// *write* index belongs to exactly one island (one worker), and every
/// cross-island *read* index is frozen for the whole parallel phase —
/// so no location is ever written by one thread while another touches
/// it. `Sync` is sound under that protocol and nothing else; all
/// access goes through `get`/`set` below, inside [`relax_island`].
struct SharedPowers(*mut f64);
unsafe impl Sync for SharedPowers {}

impl SharedPowers {
    /// # Safety
    /// `i` must be in bounds, and the island protocol above must hold.
    #[inline]
    unsafe fn get(&self, i: usize) -> f64 {
        unsafe { *self.0.add(i) }
    }

    /// # Safety
    /// `i` must be in bounds and owned (as a row) by the calling
    /// island.
    #[inline]
    unsafe fn set(&self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v }
    }
}

/// Worklist-membership flags shared across island workers — same
/// disjointness protocol as [`SharedPowers`]: a flag is only ever
/// touched by the island owning its row.
struct SharedFlags(*mut bool);
unsafe impl Sync for SharedFlags {}

impl SharedFlags {
    /// # Safety
    /// `i` must be in bounds and owned by the calling island.
    #[inline]
    unsafe fn get(&self, i: usize) -> bool {
        unsafe { *self.0.add(i) }
    }

    /// # Safety
    /// `i` must be in bounds and owned by the calling island.
    #[inline]
    unsafe fn set(&self, i: usize, v: bool) {
        unsafe { *self.0.add(i) = v }
    }
}

/// Per-island result slots shared across workers — each slot is
/// written by exactly one worker (the one that claimed the island).
struct SharedReports(*mut (u64, bool));
unsafe impl Sync for SharedReports {}

impl SharedReports {
    /// # Safety
    /// `k` must be in bounds and claimed by the calling worker.
    #[inline]
    unsafe fn set(&self, k: usize, v: (u64, bool)) {
        unsafe { *self.0.add(k) = v }
    }
}

/// One island's FIFO relaxation — the [`relax`] loop verbatim, with
/// powers and membership flags accessed through the shared-slab
/// wrappers. Returns `(updates, exhausted)`.
///
/// # Safety
/// `powers` / `queued` must point at slabs of at least `field.len()`
/// entries, and `seeds` must all belong to one island of a plan built
/// against `field` — the disjointness protocol on [`SharedPowers`].
unsafe fn relax_island(
    field: &SinrField,
    cfg: &ControlConfig,
    powers: &SharedPowers,
    queued: &SharedFlags,
    queue: &mut VecDeque<u32>,
    seeds: &[u32],
    max_updates: u64,
) -> (u64, bool) {
    queue.clear();
    for &s in seeds {
        // SAFETY: `s` is a row of this island (plan contract).
        unsafe { queued.set(s as usize, true) };
        queue.push_back(s);
    }
    let mut updates: u64 = 0;
    let mut exhausted = false;
    while let Some(i) = queue.pop_front() {
        let iu = i as usize;
        // SAFETY: worklist rows stay within this island: seeds by the
        // plan contract, enqueued rows because `hearers` edges never
        // leave an island (that is what the union-find closed over).
        unsafe { queued.set(iu, false) };
        if !field.is_live(iu) {
            continue;
        }
        // SAFETY: `iu` is an island row; interferer reads are island
        // rows (same component) or frozen rows (outside the closure).
        let p = unsafe { powers.get(iu) };
        let q = fm_update_with(field, cfg, |j| unsafe { powers.get(j as usize) }, iu);
        let changed = match cfg.ladder {
            PowerLadder::Continuous => (q - p).abs() / p > cfg.tol,
            PowerLadder::Geometric { .. } => q != p,
        };
        if !changed {
            continue;
        }
        // SAFETY: `iu` is owned by this island — the only writer.
        unsafe { powers.set(iu, q) };
        updates += 1;
        if updates >= max_updates && !queue.is_empty() {
            for k in queue.drain(..) {
                // SAFETY: drained rows are island rows (see above).
                unsafe { queued.set(k as usize, false) };
            }
            exhausted = true;
            break;
        }
        for &k in field.hearers(iu) {
            let ku = k as usize;
            // SAFETY: `k ∈ hearers(iu)` is in `iu`'s component.
            if !unsafe { queued.get(ku) } && field.is_live(ku) {
                unsafe { queued.set(ku, true) };
                queue.push_back(k);
            }
        }
    }
    (updates, exhausted)
}

/// Island-scheduled (optionally parallel) active-set relaxation:
/// decomposes the worklist into independent islands ([`IslandPlan`]),
/// relaxes each island's FIFO loop on up to `workers` scoped threads
/// (inline when `workers <= 1` or only one island exists), and merges
/// deterministically by island id.
///
/// **Bit identity.** The result is bit-identical to [`relax`] with the
/// same seeds in the same order, at every worker count: cross-island
/// reads only see frozen powers, each island replays exactly the
/// subsequence of the global FIFO run that touches its rows, and the
/// accumulation kernel pins the float op order. The one asymmetry is
/// the update budget — [`relax`] spends one global budget of
/// `max_iters × live links`, while each island here gets that budget
/// to itself. When no island exhausts it (every test and steady-state
/// configuration), powers, verdict, and update count all coincide; an
/// exhaustion reports [`Verdict::Diverging`] from either entry point,
/// but the residual powers may differ — both paths then restart cold.
///
/// Seeding mirrors [`relax`]: `warm == false` resets every power and
/// seeds all live rows ascending; `warm == true` seeds the rows marked
/// via [`ControlScratch::mark`], in mark order.
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn relax_parallel(
    field: &SinrField,
    cfg: &ControlConfig,
    scratch: &mut ControlScratch,
    islands: &mut IslandScratch,
    warm: bool,
    workers: usize,
) -> ParallelRelaxReport {
    cfg.validate();
    let n = field.len();
    let start = cfg.start_power();
    scratch.fit(n, start);
    let IslandScratch {
        plan,
        queues,
        reports,
        seed_buf,
    } = islands;
    seed_buf.clear();
    if !warm {
        scratch.powers.iter_mut().for_each(|p| *p = start);
        for i in scratch.queue.drain(..) {
            scratch.queued[i as usize] = false;
        }
        for i in 0..n {
            if field.is_live(i) {
                seed_buf.push(i as u32);
            }
        }
    } else {
        for i in scratch.queue.drain(..) {
            scratch.queued[i as usize] = false;
            seed_buf.push(i);
        }
    }
    plan.build(field, seed_buf);
    let nisl = plan.islands();
    let max_updates = (cfg.max_iters as u64) * (field.live_links().max(1) as u64);
    reports.clear();
    reports.resize(nisl, (0, false));
    let threads = workers.clamp(1, nisl.max(1));
    if queues.len() < threads {
        queues.resize_with(threads, VecDeque::new);
    }
    let shared_p = SharedPowers(scratch.powers.as_mut_ptr());
    let shared_q = SharedFlags(scratch.queued.as_mut_ptr());
    if threads <= 1 {
        // Inline: same island structure, same merges, zero threads —
        // the path `workers == 1` sessions (and the alloc-smoke
        // contract) run.
        let queue = &mut queues[0];
        for (k, slot) in reports.iter_mut().enumerate() {
            // SAFETY: single-threaded here; slab bounds via fit(n).
            *slot = unsafe {
                relax_island(
                    field,
                    cfg,
                    &shared_p,
                    &shared_q,
                    queue,
                    plan.seeds_of(k),
                    max_updates,
                )
            };
        }
    } else {
        let shared_r = SharedReports(reports.as_mut_ptr());
        let next = AtomicUsize::new(0);
        let plan_ref: &IslandPlan = plan;
        let next_ref = &next;
        let p_ref = &shared_p;
        let q_ref = &shared_q;
        let r_ref = &shared_r;
        std::thread::scope(|scope| {
            for queue in queues[..threads].iter_mut() {
                scope.spawn(move || loop {
                    let k = next_ref.fetch_add(1, Ordering::Relaxed);
                    if k >= nisl {
                        break;
                    }
                    // SAFETY: islands are claimed exactly once via the
                    // atomic counter; rows across islands are disjoint
                    // (IslandPlan contract), so the slab protocol on
                    // SharedPowers/SharedFlags holds, and report slot
                    // `k` has a single writer.
                    let rep = unsafe {
                        relax_island(
                            field,
                            cfg,
                            p_ref,
                            q_ref,
                            queue,
                            plan_ref.seeds_of(k),
                            max_updates,
                        )
                    };
                    unsafe { r_ref.set(k, rep) };
                });
            }
        });
    }
    let updates: u64 = reports.iter().map(|r| r.0).sum();
    let exhausted = reports.iter().any(|r| r.1);
    let verdict = classify(field, cfg, scratch);
    ParallelRelaxReport {
        updates,
        verdict: if exhausted {
            Verdict::Diverging
        } else {
            verdict
        },
        islands: nisl,
        widest_island: plan.widest_island(),
    }
}

/// Runs the synchronous Foschini–Miljanic iteration on `field` from
/// the all-minimum power vector, returning an owning outcome. The
/// convenience wrapper over [`run_with`]; hot loops hold a
/// [`ControlScratch`] instead.
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn run(field: &SinrField, cfg: &ControlConfig) -> ControlOutcome {
    let mut scratch = ControlScratch::new();
    let report = run_with(field, cfg, &mut scratch);
    ControlOutcome {
        feasibility: scratch.feasibility(report.verdict),
        powers: scratch.powers,
        sinrs: scratch.sinrs,
        iterations: report.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::GainModel;
    use crate::sinr::LinkBudget;
    use minim_geom::Point;

    fn field_of(coords: &[(f64, f64)], receiver: &[u32]) -> SinrField {
        let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        SinrField::build(
            &GainModel::terrain(),
            LinkBudget::cdma64(),
            &positions,
            receiver,
            None,
            0.0,
        )
    }

    /// Like [`field_of`] but with a gain floor cutting interferers
    /// beyond `cutoff` — what gives distant clusters disjoint hearer
    /// fan-out (and hence multiple islands).
    fn field_floored(coords: &[(f64, f64)], receiver: &[u32], cutoff: f64) -> SinrField {
        let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let gain = GainModel::terrain();
        let floor = gain.path_gain(cutoff);
        SinrField::build(
            &gain,
            LinkBudget::cdma64(),
            &positions,
            receiver,
            None,
            floor,
        )
    }

    /// Two well-separated pairs: feasible; the loop must converge with
    /// every SINR at the target (within tolerance), powers strictly
    /// inside the cap.
    #[test]
    fn feasible_instance_converges_to_target() {
        let field = field_of(
            &[(0.0, 0.0), (8.0, 0.0), (300.0, 0.0), (308.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(4.0, 1e-3, 1e6);
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Converged);
        assert!(out.iterations < cfg.max_iters);
        for (i, &s) in out.sinrs.iter().enumerate() {
            assert!(
                (s / 4.0 - 1.0).abs() < 1e-3,
                "link {i} SINR {s} should sit at the target"
            );
            assert!(out.powers[i] < cfg.max_power);
        }
    }

    /// Monotone convergence from below: every synchronous iterate
    /// dominates the previous one, and the final vector dominates
    /// them all — the standard-interference-function signature.
    #[test]
    fn iterates_are_monotone_from_min_power() {
        let field = field_of(
            &[(0.0, 0.0), (6.0, 0.0), (14.0, 0.0), (20.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(6.0, 1e-3, 1e6);
        // Re-run the loop manually, capturing iterates.
        let mut powers = vec![cfg.min_power; field.len()];
        for _ in 0..60 {
            let prev = powers.clone();
            for (i, p) in powers.iter_mut().enumerate() {
                let desired = cfg.target_sinr * field.interference(&prev, i)
                    / (field.budget().processing_gain * field.direct_gain(i));
                *p = desired.clamp(cfg.min_power, cfg.max_power);
            }
            for (i, (now, before)) in powers.iter().zip(&prev).enumerate() {
                assert!(
                    now >= &(before - 1e-15),
                    "iterate must not decrease: link {i}"
                );
            }
        }
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Converged);
        for (ran, manual) in out.powers.iter().zip(&powers) {
            // Both converge from below to the same fixed point; the
            // tolerance-stopped run and the 60-iteration prefix agree
            // to well within the convergence slack.
            let rel = (ran - manual).abs() / manual;
            assert!(rel < 1e-3, "same fixed point, got rel diff {rel}");
        }
    }

    /// An overloaded near-far cell: many co-located transmitters
    /// shouting at one receiver point can never all make a high
    /// target under a finite cap — the loop must *detect* that, not
    /// spin.
    #[test]
    fn overloaded_near_far_is_power_capped() {
        // 6 transmitters in a tight clump all aiming at node 0: the
        // aggregate interference at the shared receiver scales with
        // every power simultaneously, so γ = 16 (> L/5) is hopeless.
        let mut coords = vec![(0.0, 0.0)];
        for k in 0..6 {
            coords.push((10.0 + 0.1 * k as f64, 0.0));
        }
        let receiver: Vec<u32> = std::iter::once(1)
            .chain(std::iter::repeat_n(0, 6))
            .collect();
        let field = field_of(&coords, &receiver);
        let cfg = ControlConfig::new(16.0, 1e-3, 1e4);
        let out = run(&field, &cfg);
        let Feasibility::PowerCapped { capped } = &out.feasibility else {
            panic!("expected PowerCapped, got {:?}", out.feasibility);
        };
        assert!(!capped.is_empty());
        for &i in capped {
            assert!(out.powers[i] >= cfg.max_power * (1.0 - 1e-9));
            assert!(out.sinrs[i] < 16.0);
        }
    }

    /// Tight budget on a feasible-but-slow instance reports
    /// `Diverging` instead of a wrong verdict.
    #[test]
    fn exhausted_budget_reports_diverging() {
        let field = field_of(
            &[(0.0, 0.0), (6.0, 0.0), (9.0, 0.0), (15.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(8.0, 1e-3, 1e6);
        cfg.max_iters = 2;
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Diverging);
        assert_eq!(out.iterations, 2);
    }

    /// Discrete ladders reach an exact fixed point whose powers are
    /// ladder rungs, and ceiling quantization never lands below the
    /// continuous solution.
    #[test]
    fn discrete_ladder_fixed_point_on_rungs() {
        let field = field_of(
            &[(0.0, 0.0), (7.0, 0.0), (40.0, 3.0), (46.0, 3.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(4.0, 1e-3, 1e5);
        let cont = run(&field, &cfg);
        cfg.ladder = PowerLadder::Geometric { levels: 24 };
        let disc = run(&field, &cfg);
        assert_eq!(disc.feasibility, Feasibility::Converged);
        let rungs = cfg.ladder.levels(cfg.min_power, cfg.max_power);
        for (i, &p) in disc.powers.iter().enumerate() {
            assert!(
                rungs.iter().any(|&r| (r - p).abs() < 1e-9 * r),
                "power {p} of link {i} is not a rung"
            );
            assert!(
                p >= cont.powers[i] * (1.0 - 1e-9),
                "ceiling quantization stays above the continuous solution"
            );
            assert!(disc.sinrs[i] >= 4.0 * (1.0 - 1e-3), "target still met");
        }
        // Fixed point: one more run from the discrete solution is a
        // no-op (run() restarts from min power and must land on the
        // same rungs — the fixed point is unique from below).
        let again = run(&field, &cfg);
        assert_eq!(again.powers, disc.powers);
    }

    #[test]
    fn quantize_up_is_monotone_and_idempotent() {
        let ladder = PowerLadder::Geometric { levels: 10 };
        let (lo, hi) = (1e-3, 1e3);
        let rungs = ladder.levels(lo, hi);
        assert_eq!(rungs.len(), 10);
        assert!((rungs[0] - lo).abs() < 1e-12);
        assert!((rungs[9] - hi).abs() < 1e-9);
        let mut prev = 0.0;
        for k in 0..200 {
            let p = lo * ((k as f64 / 199.0) * (hi / lo).ln()).exp();
            let q = ladder.quantize_up(p, lo, hi);
            assert!(q + 1e-15 >= p, "never rounds down");
            assert!(q + 1e-15 >= prev, "monotone");
            assert!(
                (ladder.quantize_up(q, lo, hi) - q).abs() < 1e-12 * q,
                "idempotent"
            );
            prev = q;
        }
    }

    #[test]
    fn isolated_link_saturates_at_cap() {
        // A single node with no receiver: dead direct path, power
        // pinned at the cap and reported infeasible.
        let field = field_of(&[(0.0, 0.0)], &[0]);
        let out = run(&field, &ControlConfig::new(4.0, 1e-3, 10.0));
        assert_eq!(
            out.feasibility,
            Feasibility::PowerCapped { capped: vec![0] }
        );
        assert_eq!(out.powers, vec![10.0]);
    }

    /// Cold active-set relaxation lands on the sweep's fixed point —
    /// same powers (within tolerance), same verdict, same capped set.
    #[test]
    fn cold_relax_matches_sync_sweep_continuous() {
        let field = field_of(
            &[
                (0.0, 0.0),
                (8.0, 0.0),
                (60.0, 5.0),
                (66.0, 5.0),
                (30.0, -20.0),
                (36.0, -20.0),
            ],
            &[1, 0, 3, 2, 5, 4],
        );
        let cfg = ControlConfig::new(4.0, 1e-3, 1e6);
        let sweep = run(&field, &cfg);
        let mut scratch = ControlScratch::new();
        let report = relax(&field, &cfg, &mut scratch, false);
        assert_eq!(scratch.feasibility(report.verdict), sweep.feasibility);
        for (i, (&a, &s)) in scratch.powers.iter().zip(&sweep.powers).enumerate() {
            let rel = (a - s).abs() / s;
            assert!(rel < 5e-3, "link {i}: relax {a} vs sweep {s} (rel {rel})");
        }
        assert!(report.updates > 0);
    }

    /// On a discrete ladder the relaxation climbs to the *exact* least
    /// fixed point the sweep finds — bitwise equal rungs.
    #[test]
    fn cold_relax_matches_sync_sweep_geometric_exactly() {
        let field = field_of(
            &[(0.0, 0.0), (7.0, 0.0), (40.0, 3.0), (46.0, 3.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(4.0, 1e-3, 1e5);
        cfg.ladder = PowerLadder::Geometric { levels: 24 };
        let sweep = run(&field, &cfg);
        let mut scratch = ControlScratch::new();
        let report = relax(&field, &cfg, &mut scratch, false);
        assert_eq!(scratch.powers, sweep.powers, "exact rung-for-rung match");
        assert_eq!(scratch.feasibility(report.verdict), sweep.feasibility);
    }

    /// A warm restart at equilibrium with an empty worklist is a no-op:
    /// zero updates, verdict unchanged.
    #[test]
    fn warm_restart_at_equilibrium_is_a_no_op() {
        let field = field_of(
            &[(0.0, 0.0), (8.0, 0.0), (300.0, 0.0), (308.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(4.0, 1e-3, 1e6);
        let mut scratch = ControlScratch::new();
        relax(&field, &cfg, &mut scratch, false);
        let report = relax(&field, &cfg, &mut scratch, true);
        assert_eq!(report.updates, 0);
        assert_eq!(report.verdict, Verdict::Converged);
        // Marking every link at equilibrium still changes nothing.
        for i in 0..field.len() as u32 {
            scratch.mark(i);
        }
        let report = relax(&field, &cfg, &mut scratch, true);
        assert_eq!(report.updates, 0, "equilibrium is a fixed point");
    }

    /// Overloaded instance under relaxation: the budget trips and the
    /// verdict is Diverging (continuous loops approach the infeasible
    /// fixed point asymptotically) or PowerCapped — never Converged.
    #[test]
    fn relax_never_calls_an_overload_feasible() {
        let mut coords = vec![(0.0, 0.0)];
        for k in 0..6 {
            coords.push((10.0 + 0.1 * k as f64, 0.0));
        }
        let receiver: Vec<u32> = std::iter::once(1)
            .chain(std::iter::repeat_n(0, 6))
            .collect();
        let field = field_of(&coords, &receiver);
        let cfg = ControlConfig::new(16.0, 1e-3, 1e4);
        let mut scratch = ControlScratch::new();
        let report = relax(&field, &cfg, &mut scratch, false);
        assert_ne!(report.verdict, Verdict::Converged);
    }

    /// Three independent pairs, far apart: the cold worklist must
    /// decompose into three islands whose members partition the live
    /// rows and whose hearer fan-out never crosses islands.
    #[test]
    fn island_plan_partitions_independent_pairs() {
        // Three well-separated clusters of two interfering pairs each:
        // intra-cluster fan-out couples the four rows, the gain floor
        // severs everything across clusters.
        let mut coords = Vec::new();
        let mut receiver = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (5000.0, 0.0), (0.0, 5000.0)] {
            let base = coords.len() as u32;
            coords.extend([
                (cx, cy),
                (cx + 8.0, cy),
                (cx + 30.0, cy + 10.0),
                (cx + 38.0, cy + 10.0),
            ]);
            receiver.extend([base + 1, base, base + 3, base + 2]);
        }
        let field = field_floored(&coords, &receiver, 500.0);
        let seeds: Vec<u32> = (0..12).collect();
        let mut plan = IslandPlan::new();
        plan.build(&field, &seeds);
        assert_eq!(plan.islands(), 3);
        assert_eq!(plan.closure_len(), 12);
        assert_eq!(plan.widest_island(), 4);
        let mut all: Vec<u32> = Vec::new();
        for k in 0..plan.islands() {
            for &r in plan.members(k) {
                all.push(r);
                for &a in field.hearers(r as usize) {
                    assert_eq!(
                        plan.island_of(a),
                        Some(k),
                        "hearer edge {r} -> {a} must stay inside island {k}"
                    );
                }
            }
            assert_eq!(plan.seeds_of(k), plan.members(k), "ascending seeds here");
        }
        all.sort_unstable();
        assert_eq!(all, seeds, "islands partition the closure");
    }

    /// Parallel relaxation is bit-identical to the sequential worklist
    /// at every worker count, on both ladders, cold and warm.
    #[test]
    fn relax_parallel_matches_relax_bitwise() {
        let coords = [
            (0.0, 0.0),
            (8.0, 0.0),
            (60.0, 5.0),
            (66.0, 5.0),
            (30.0, -20.0),
            (36.0, -20.0),
            (900.0, 900.0),
            (908.0, 900.0),
        ];
        let receiver = [1u32, 0, 3, 2, 5, 4, 7, 6];
        let field = field_floored(&coords, &receiver, 400.0);
        for geometric in [false, true] {
            let mut cfg = ControlConfig::new(4.0, 1e-3, 1e6);
            if geometric {
                cfg.ladder = PowerLadder::Geometric { levels: 24 };
            }
            let mut seq = ControlScratch::new();
            let seq_rep = relax(&field, &cfg, &mut seq, false);
            for workers in [1usize, 2, 8] {
                let mut par = ControlScratch::new();
                let mut isl = IslandScratch::new();
                let rep = relax_parallel(&field, &cfg, &mut par, &mut isl, false, workers);
                assert_eq!(rep.verdict, seq_rep.verdict, "workers {workers}");
                assert_eq!(rep.updates, seq_rep.updates, "workers {workers}");
                assert!(rep.islands >= 2, "disjoint clusters must split");
                for (i, (&a, &b)) in par.powers.iter().zip(&seq.powers).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "workers {workers}, geometric {geometric}, link {i}"
                    );
                }
                // Warm no-op parity at the fixed point.
                for i in 0..field.len() as u32 {
                    par.mark(i);
                }
                let warm = relax_parallel(&field, &cfg, &mut par, &mut isl, true, workers);
                assert_eq!(warm.updates, 0, "equilibrium is a fixed point");
                assert_eq!(warm.verdict, seq_rep.verdict);
            }
        }
    }
}
