//! The closed-loop distributed power-control iteration.
//!
//! Foschini–Miljanic: every link scales its transmit power by the
//! ratio of its target SINR to its measured SINR,
//!
//! ```text
//! p_i ← clamp( γ / SINR_i(p) · p_i )  =  clamp( γ · I_i(p) / (L · g_ii) )
//! ```
//!
//! where `I_i(p)` is the noise-plus-interference at `i`'s receiver.
//! The right-hand side is a *standard interference function*
//! (positive, monotone, scalable), so with the max-power clamp the
//! iteration converges from any starting point — synchronously
//! ([`run_with`], the classic all-links sweep) or **asynchronously**
//! ([`relax`], the active-set worklist that only re-updates links
//! whose interference actually changed; Yates' framework covers
//! totally asynchronous update orders, so both land on the same
//! unique fixed point). Started from the minimum power the iteration
//! converges monotonically from below, which is what [`run`] does and
//! what the tests pin.
//!
//! Real handsets cannot emit arbitrary powers: [`PowerLadder`]
//! optionally quantizes every update **up** to the next discrete
//! level (ceiling quantization keeps the iteration standard and makes
//! the state space finite, so discrete runs reach an exact fixed
//! point). On a discrete ladder the quantized update map is monotone
//! on a finite lattice: any update order started from the all-minimum
//! vector climbs to the **least** fixed point, so the active-set
//! relaxation reaches the exact sweep result — but a warm start above
//! that fixed point need not descend to it, which is why warm
//! restarts are a continuous-ladder tool (see [`relax`]).
//!
//! Feasibility is read off the fixed point: if every link meets its
//! target the instance is [`Feasibility::Converged`]; if some links
//! sit at the power cap below target the instance is overloaded
//! ([`Feasibility::PowerCapped`] names them — the textbook near-far
//! outcome); if the update budget runs out before the fixed point the
//! instance is [`Feasibility::Diverging`].

use crate::sinr::SinrField;
use std::collections::VecDeque;

/// The discrete transmit-power levels a radio can emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerLadder {
    /// Any power in `[min_power, max_power]` — the idealized
    /// continuous loop.
    Continuous,
    /// `levels` geometrically spaced rungs from `min_power` to
    /// `max_power` inclusive; updates quantize **up** to the next
    /// rung (a radio rounds its power request up so the target is
    /// still met).
    Geometric {
        /// Number of rungs (≥ 2).
        levels: usize,
    },
}

impl PowerLadder {
    /// Quantizes a clamped power request onto the ladder. Continuous
    /// ladders pass through; geometric ladders round up to the next
    /// rung (the top rung for requests beyond it).
    pub fn quantize_up(&self, p: f64, min_power: f64, max_power: f64) -> f64 {
        match *self {
            PowerLadder::Continuous => p,
            PowerLadder::Geometric { levels } => {
                debug_assert!(levels >= 2);
                if p <= min_power {
                    return min_power;
                }
                if p >= max_power {
                    return max_power;
                }
                let step = (max_power / min_power).ln() / (levels - 1) as f64;
                let k = ((p / min_power).ln() / step).ceil();
                (min_power * (k * step).exp()).min(max_power)
            }
        }
    }

    /// Every rung of the ladder within `[min_power, max_power]`
    /// (a two-element vector for continuous ladders: the bounds).
    pub fn levels(&self, min_power: f64, max_power: f64) -> Vec<f64> {
        match *self {
            PowerLadder::Continuous => vec![min_power, max_power],
            PowerLadder::Geometric { levels } => {
                let step = (max_power / min_power).ln() / (levels - 1) as f64;
                (0..levels)
                    .map(|k| (min_power * (k as f64 * step).exp()).min(max_power))
                    .collect()
            }
        }
    }
}

/// Parameters of one control-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Target SINR `γ` every link drives toward (linear, not dB).
    pub target_sinr: f64,
    /// Smallest emittable power (also the starting point — the loop
    /// converges monotonically from below).
    pub min_power: f64,
    /// The power cap; links stuck here below target are infeasible.
    pub max_power: f64,
    /// The radio's power ladder.
    pub ladder: PowerLadder,
    /// Relative-change convergence tolerance for continuous ladders
    /// (discrete ladders stop on exact fixed points).
    pub tol: f64,
    /// Iteration budget: synchronous sweeps for [`run_with`], sweep
    /// *equivalents* (budget × live links single-link updates) for
    /// [`relax`]. Exhausting it is [`Feasibility::Diverging`].
    pub max_iters: usize,
}

impl ControlConfig {
    /// A sensible loop for targets around `target_sinr`: powers
    /// spanning `[min_power, max_power]`, continuous ladder, `1e-6`
    /// tolerance, 200-iteration budget.
    pub fn new(target_sinr: f64, min_power: f64, max_power: f64) -> Self {
        ControlConfig {
            target_sinr,
            min_power,
            max_power,
            ladder: PowerLadder::Continuous,
            tol: 1e-6,
            max_iters: 200,
        }
    }

    /// The power every link starts from: `min_power` snapped onto the
    /// ladder.
    pub fn start_power(&self) -> f64 {
        self.ladder
            .quantize_up(self.min_power, self.min_power, self.max_power)
    }

    /// Asserts the configuration is runnable.
    ///
    /// # Panics
    /// Panics on a non-positive target, an empty/inverted power
    /// interval, a degenerate ladder, a non-positive tolerance, or a
    /// zero iteration budget.
    pub fn validate(&self) {
        assert!(
            self.target_sinr.is_finite() && self.target_sinr > 0.0,
            "target_sinr must be positive, got {}",
            self.target_sinr
        );
        assert!(
            self.min_power > 0.0 && self.min_power <= self.max_power && self.max_power.is_finite(),
            "need 0 < min_power <= max_power, got [{}, {}]",
            self.min_power,
            self.max_power
        );
        if let PowerLadder::Geometric { levels } = self.ladder {
            assert!(levels >= 2, "a discrete ladder needs >= 2 levels");
        }
        assert!(self.tol > 0.0, "tol must be positive");
        assert!(self.max_iters >= 1, "need an iteration budget");
    }
}

/// How a control-loop run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Feasibility {
    /// Fixed point with every link at or above target: the instance
    /// is feasible and `powers` is (within tolerance / quantization)
    /// the minimal power vector serving it.
    Converged,
    /// Fixed point with the listed links pinned at `max_power` below
    /// target: the instance is overloaded (the near-far outcome);
    /// everyone else still meets target *given* the capped powers.
    PowerCapped {
        /// Link indices stuck at the cap below target, ascending.
        capped: Vec<usize>,
    },
    /// The update budget ran out before a fixed point (continuous
    /// loops approach infeasible fixed points asymptotically; this is
    /// the in-budget divergence signal).
    Diverging,
}

impl Feasibility {
    /// Whether every link met its target.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Converged)
    }
}

/// [`Feasibility`] without the capped-link payload — the `Copy`
/// verdict scratch-based runs return; the capped indices live in
/// [`ControlScratch::capped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Fixed point, every live link at or above target.
    Converged,
    /// Fixed point with links pinned at the cap below target.
    PowerCapped,
    /// Update budget exhausted before a fixed point.
    Diverging,
}

/// The result of [`run`]: final powers, per-link SINRs, and the
/// feasibility verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlOutcome {
    /// Final power vector (one entry per link slot).
    pub powers: Vec<f64>,
    /// SINR of every link under `powers` (0 for absent slots).
    pub sinrs: Vec<f64>,
    /// Synchronous iterations executed.
    pub iterations: usize,
    /// How the run ended.
    pub feasibility: Feasibility,
}

/// Report of one [`run_with`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// Synchronous iterations executed.
    pub iterations: usize,
    /// How the run ended.
    pub verdict: Verdict,
}

/// Report of one [`relax`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaxReport {
    /// Single-link power writes performed (the active-set analogue of
    /// `iterations × n`; the whole point is that this stays small when
    /// little changed).
    pub updates: u64,
    /// How the run ended.
    pub verdict: Verdict,
}

/// Reusable control-loop state: power/SINR slabs, the active-set
/// worklist, and the capped-link list. Create once, feed to
/// [`run_with`] / [`relax`] forever — steady-state runs allocate
/// nothing.
///
/// `powers` persists across calls; that is what makes warm-started
/// relaxation possible. The slabs are indexed by link id and only
/// ever grow.
#[derive(Debug, Clone, Default)]
pub struct ControlScratch {
    /// Current power vector (one entry per link slot). Warm state:
    /// survives across calls.
    pub powers: Vec<f64>,
    /// SINRs under `powers` as of the last classification.
    pub sinrs: Vec<f64>,
    /// Live links pinned at the cap below target as of the last
    /// classification, ascending.
    pub capped: Vec<u32>,
    /// Double buffer for the synchronous sweep.
    next: Vec<f64>,
    /// Active-set FIFO.
    queue: VecDeque<u32>,
    /// Membership flags for `queue`.
    queued: Vec<bool>,
}

impl ControlScratch {
    /// An empty scratch (slabs grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the slabs to `n` slots, initializing new power entries to
    /// `start`. Existing entries are untouched (warm state).
    pub fn fit(&mut self, n: usize, start: f64) {
        if self.powers.len() < n {
            self.powers.resize(n, start);
        }
        if self.next.len() < n {
            self.next.resize(n, 0.0);
        }
        if self.queued.len() < n {
            self.queued.resize(n, false);
        }
    }

    /// Enqueues link `i` for the next [`relax`] call (idempotent).
    /// Seed the worklist with the field's dirty rows before a warm
    /// relaxation.
    pub fn mark(&mut self, i: u32) {
        let iu = i as usize;
        if iu >= self.queued.len() {
            self.queued.resize(iu + 1, false);
        }
        if !self.queued[iu] {
            self.queued[iu] = true;
            self.queue.push_back(i);
        }
    }

    /// Converts a scratch-based verdict into the owning
    /// [`Feasibility`] (cloning the capped list).
    pub fn feasibility(&self, verdict: Verdict) -> Feasibility {
        match verdict {
            Verdict::Converged => Feasibility::Converged,
            Verdict::PowerCapped => Feasibility::PowerCapped {
                capped: self.capped.iter().map(|&i| i as usize).collect(),
            },
            Verdict::Diverging => Feasibility::Diverging,
        }
    }
}

/// One Foschini–Miljanic update for link `i` under the current
/// powers: the clamped, ladder-quantized power request.
#[inline]
fn fm_update(field: &SinrField, cfg: &ControlConfig, powers: &[f64], i: usize) -> f64 {
    let g = field.direct_gain(i);
    let desired = if g > 0.0 {
        cfg.target_sinr * field.interference(powers, i) / (field.budget().processing_gain * g)
    } else {
        // Dead direct path: no finite power serves the link.
        f64::INFINITY
    };
    let clamped = desired.clamp(cfg.min_power, cfg.max_power);
    cfg.ladder
        .quantize_up(clamped, cfg.min_power, cfg.max_power)
}

/// Classifies the fixed point in `scratch.powers`: fills
/// `scratch.sinrs` and `scratch.capped` and returns `Converged` or
/// `PowerCapped` (callers that ran out of budget override with
/// `Diverging`).
fn classify(field: &SinrField, cfg: &ControlConfig, scratch: &mut ControlScratch) -> Verdict {
    field.sinrs_into(&scratch.powers, &mut scratch.sinrs);
    let gamma = cfg.target_sinr;
    // Meeting the target "within tolerance": one more tolerance-sized
    // power step would clear it.
    let met = |sinr: f64| sinr >= gamma * (1.0 - 4.0 * cfg.tol);
    scratch.capped.clear();
    let mut all_met = true;
    for i in 0..field.len() {
        if !field.is_live(i) || met(scratch.sinrs[i]) {
            continue;
        }
        all_met = false;
        if scratch.powers[i] >= cfg.max_power * (1.0 - 1e-12) {
            scratch.capped.push(i as u32);
        }
    }
    if all_met {
        return Verdict::Converged;
    }
    if scratch.capped.is_empty() {
        // At a fixed point an unmet link is necessarily at the cap;
        // keep the classification robust anyway.
        for i in 0..field.len() {
            if field.is_live(i) && !met(scratch.sinrs[i]) {
                scratch.capped.push(i as u32);
            }
        }
    }
    Verdict::PowerCapped
}

/// The synchronous Foschini–Miljanic sweep into caller-owned scratch:
/// every live link updates from the previous iterate each round,
/// starting from the all-minimum vector. Allocation-free once
/// `scratch` is warm. Absent slots keep power `start_power` and
/// report SINR 0.
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn run_with(
    field: &SinrField,
    cfg: &ControlConfig,
    scratch: &mut ControlScratch,
) -> SweepReport {
    cfg.validate();
    let n = field.len();
    let start = cfg.start_power();
    scratch.fit(n, start);
    scratch.powers.iter_mut().for_each(|p| *p = start);
    let mut iterations = 0;
    let mut fixed_point = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let mut max_rel = 0.0f64;
        for i in 0..n {
            if !field.is_live(i) {
                scratch.next[i] = scratch.powers[i];
                continue;
            }
            let q = fm_update(field, cfg, &scratch.powers, i);
            max_rel = max_rel.max((q - scratch.powers[i]).abs() / scratch.powers[i]);
            scratch.next[i] = q;
        }
        std::mem::swap(&mut scratch.powers, &mut scratch.next);
        let done = match cfg.ladder {
            PowerLadder::Continuous => max_rel <= cfg.tol,
            // Discrete state space: stop only on the exact fixed point.
            PowerLadder::Geometric { .. } => max_rel == 0.0,
        };
        if done {
            fixed_point = true;
            break;
        }
    }
    let verdict = classify(field, cfg, scratch);
    SweepReport {
        iterations,
        verdict: if fixed_point {
            verdict
        } else {
            Verdict::Diverging
        },
    }
}

/// The active-set (asynchronous) Foschini–Miljanic relaxation: a FIFO
/// worklist of links whose interference changed since their last
/// update, instead of sweeping all N links per round. Allocation-free
/// once `scratch` is warm.
///
/// * `warm == false`: resets every power to the start rung and
///   enqueues every live link — the event-driven equivalent of
///   [`run_with`] from cold. On a continuous ladder both converge to
///   the same (unique) fixed point within tolerance; on a discrete
///   ladder both climb to the exact least fixed point.
/// * `warm == true`: keeps `scratch.powers` (the previous
///   equilibrium) and relaxes only from the links already marked via
///   [`ControlScratch::mark`] — seed it with the field's dirty rows
///   ([`SinrField::take_dirty`]). Sound for **continuous** ladders
///   (unique fixed point, convergence from any start); a discrete
///   warm start above the least fixed point would stay there, so
///   discrete sessions restart cold instead.
///
/// A link whose recomputed power moves by more than `cfg.tol`
/// (relative; any change at all on discrete ladders) writes the new
/// power and enqueues exactly the links that hear it — the transposed
/// interferer index answers that in O(row). The update budget is
/// `cfg.max_iters × live links`; exhausting it drains the queue and
/// reports [`Verdict::Diverging`].
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn relax(
    field: &SinrField,
    cfg: &ControlConfig,
    scratch: &mut ControlScratch,
    warm: bool,
) -> RelaxReport {
    cfg.validate();
    let n = field.len();
    let start = cfg.start_power();
    scratch.fit(n, start);
    if !warm {
        scratch.powers.iter_mut().for_each(|p| *p = start);
        for i in scratch.queue.drain(..) {
            scratch.queued[i as usize] = false;
        }
        for i in 0..n {
            if field.is_live(i) {
                scratch.queued[i] = true;
                scratch.queue.push_back(i as u32);
            }
        }
    }
    let max_updates = (cfg.max_iters as u64) * (field.live_links().max(1) as u64);
    let mut updates: u64 = 0;
    let mut exhausted = false;
    while let Some(i) = scratch.queue.pop_front() {
        let iu = i as usize;
        scratch.queued[iu] = false;
        if !field.is_live(iu) {
            continue;
        }
        let p = scratch.powers[iu];
        let q = fm_update(field, cfg, &scratch.powers, iu);
        let changed = match cfg.ladder {
            PowerLadder::Continuous => (q - p).abs() / p > cfg.tol,
            PowerLadder::Geometric { .. } => q != p,
        };
        if !changed {
            continue;
        }
        scratch.powers[iu] = q;
        updates += 1;
        if updates >= max_updates && !scratch.queue.is_empty() {
            // Budget exhausted mid-flight: drain the worklist so the
            // scratch is clean for the next (cold) attempt.
            for k in scratch.queue.drain(..) {
                scratch.queued[k as usize] = false;
            }
            exhausted = true;
            break;
        }
        // A power change perturbs interference exactly at the rows
        // that hear `i`.
        for &k in field.hearers(iu) {
            let ku = k as usize;
            if !scratch.queued[ku] && field.is_live(ku) {
                scratch.queued[ku] = true;
                scratch.queue.push_back(k);
            }
        }
    }
    let verdict = classify(field, cfg, scratch);
    RelaxReport {
        updates,
        verdict: if exhausted {
            Verdict::Diverging
        } else {
            verdict
        },
    }
}

/// Runs the synchronous Foschini–Miljanic iteration on `field` from
/// the all-minimum power vector, returning an owning outcome. The
/// convenience wrapper over [`run_with`]; hot loops hold a
/// [`ControlScratch`] instead.
///
/// # Panics
/// Panics if `cfg` fails [`ControlConfig::validate`].
pub fn run(field: &SinrField, cfg: &ControlConfig) -> ControlOutcome {
    let mut scratch = ControlScratch::new();
    let report = run_with(field, cfg, &mut scratch);
    ControlOutcome {
        feasibility: scratch.feasibility(report.verdict),
        powers: scratch.powers,
        sinrs: scratch.sinrs,
        iterations: report.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::GainModel;
    use crate::sinr::LinkBudget;
    use minim_geom::Point;

    fn field_of(coords: &[(f64, f64)], receiver: &[u32]) -> SinrField {
        let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        SinrField::build(
            &GainModel::terrain(),
            LinkBudget::cdma64(),
            &positions,
            receiver,
            None,
            0.0,
        )
    }

    /// Two well-separated pairs: feasible; the loop must converge with
    /// every SINR at the target (within tolerance), powers strictly
    /// inside the cap.
    #[test]
    fn feasible_instance_converges_to_target() {
        let field = field_of(
            &[(0.0, 0.0), (8.0, 0.0), (300.0, 0.0), (308.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(4.0, 1e-3, 1e6);
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Converged);
        assert!(out.iterations < cfg.max_iters);
        for (i, &s) in out.sinrs.iter().enumerate() {
            assert!(
                (s / 4.0 - 1.0).abs() < 1e-3,
                "link {i} SINR {s} should sit at the target"
            );
            assert!(out.powers[i] < cfg.max_power);
        }
    }

    /// Monotone convergence from below: every synchronous iterate
    /// dominates the previous one, and the final vector dominates
    /// them all — the standard-interference-function signature.
    #[test]
    fn iterates_are_monotone_from_min_power() {
        let field = field_of(
            &[(0.0, 0.0), (6.0, 0.0), (14.0, 0.0), (20.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(6.0, 1e-3, 1e6);
        // Re-run the loop manually, capturing iterates.
        let mut powers = vec![cfg.min_power; field.len()];
        for _ in 0..60 {
            let prev = powers.clone();
            for (i, p) in powers.iter_mut().enumerate() {
                let desired = cfg.target_sinr * field.interference(&prev, i)
                    / (field.budget().processing_gain * field.direct_gain(i));
                *p = desired.clamp(cfg.min_power, cfg.max_power);
            }
            for (i, (now, before)) in powers.iter().zip(&prev).enumerate() {
                assert!(
                    now >= &(before - 1e-15),
                    "iterate must not decrease: link {i}"
                );
            }
        }
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Converged);
        for (ran, manual) in out.powers.iter().zip(&powers) {
            // Both converge from below to the same fixed point; the
            // tolerance-stopped run and the 60-iteration prefix agree
            // to well within the convergence slack.
            let rel = (ran - manual).abs() / manual;
            assert!(rel < 1e-3, "same fixed point, got rel diff {rel}");
        }
    }

    /// An overloaded near-far cell: many co-located transmitters
    /// shouting at one receiver point can never all make a high
    /// target under a finite cap — the loop must *detect* that, not
    /// spin.
    #[test]
    fn overloaded_near_far_is_power_capped() {
        // 6 transmitters in a tight clump all aiming at node 0: the
        // aggregate interference at the shared receiver scales with
        // every power simultaneously, so γ = 16 (> L/5) is hopeless.
        let mut coords = vec![(0.0, 0.0)];
        for k in 0..6 {
            coords.push((10.0 + 0.1 * k as f64, 0.0));
        }
        let receiver: Vec<u32> = std::iter::once(1)
            .chain(std::iter::repeat_n(0, 6))
            .collect();
        let field = field_of(&coords, &receiver);
        let cfg = ControlConfig::new(16.0, 1e-3, 1e4);
        let out = run(&field, &cfg);
        let Feasibility::PowerCapped { capped } = &out.feasibility else {
            panic!("expected PowerCapped, got {:?}", out.feasibility);
        };
        assert!(!capped.is_empty());
        for &i in capped {
            assert!(out.powers[i] >= cfg.max_power * (1.0 - 1e-9));
            assert!(out.sinrs[i] < 16.0);
        }
    }

    /// Tight budget on a feasible-but-slow instance reports
    /// `Diverging` instead of a wrong verdict.
    #[test]
    fn exhausted_budget_reports_diverging() {
        let field = field_of(
            &[(0.0, 0.0), (6.0, 0.0), (9.0, 0.0), (15.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(8.0, 1e-3, 1e6);
        cfg.max_iters = 2;
        let out = run(&field, &cfg);
        assert_eq!(out.feasibility, Feasibility::Diverging);
        assert_eq!(out.iterations, 2);
    }

    /// Discrete ladders reach an exact fixed point whose powers are
    /// ladder rungs, and ceiling quantization never lands below the
    /// continuous solution.
    #[test]
    fn discrete_ladder_fixed_point_on_rungs() {
        let field = field_of(
            &[(0.0, 0.0), (7.0, 0.0), (40.0, 3.0), (46.0, 3.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(4.0, 1e-3, 1e5);
        let cont = run(&field, &cfg);
        cfg.ladder = PowerLadder::Geometric { levels: 24 };
        let disc = run(&field, &cfg);
        assert_eq!(disc.feasibility, Feasibility::Converged);
        let rungs = cfg.ladder.levels(cfg.min_power, cfg.max_power);
        for (i, &p) in disc.powers.iter().enumerate() {
            assert!(
                rungs.iter().any(|&r| (r - p).abs() < 1e-9 * r),
                "power {p} of link {i} is not a rung"
            );
            assert!(
                p >= cont.powers[i] * (1.0 - 1e-9),
                "ceiling quantization stays above the continuous solution"
            );
            assert!(disc.sinrs[i] >= 4.0 * (1.0 - 1e-3), "target still met");
        }
        // Fixed point: one more run from the discrete solution is a
        // no-op (run() restarts from min power and must land on the
        // same rungs — the fixed point is unique from below).
        let again = run(&field, &cfg);
        assert_eq!(again.powers, disc.powers);
    }

    #[test]
    fn quantize_up_is_monotone_and_idempotent() {
        let ladder = PowerLadder::Geometric { levels: 10 };
        let (lo, hi) = (1e-3, 1e3);
        let rungs = ladder.levels(lo, hi);
        assert_eq!(rungs.len(), 10);
        assert!((rungs[0] - lo).abs() < 1e-12);
        assert!((rungs[9] - hi).abs() < 1e-9);
        let mut prev = 0.0;
        for k in 0..200 {
            let p = lo * ((k as f64 / 199.0) * (hi / lo).ln()).exp();
            let q = ladder.quantize_up(p, lo, hi);
            assert!(q + 1e-15 >= p, "never rounds down");
            assert!(q + 1e-15 >= prev, "monotone");
            assert!(
                (ladder.quantize_up(q, lo, hi) - q).abs() < 1e-12 * q,
                "idempotent"
            );
            prev = q;
        }
    }

    #[test]
    fn isolated_link_saturates_at_cap() {
        // A single node with no receiver: dead direct path, power
        // pinned at the cap and reported infeasible.
        let field = field_of(&[(0.0, 0.0)], &[0]);
        let out = run(&field, &ControlConfig::new(4.0, 1e-3, 10.0));
        assert_eq!(
            out.feasibility,
            Feasibility::PowerCapped { capped: vec![0] }
        );
        assert_eq!(out.powers, vec![10.0]);
    }

    /// Cold active-set relaxation lands on the sweep's fixed point —
    /// same powers (within tolerance), same verdict, same capped set.
    #[test]
    fn cold_relax_matches_sync_sweep_continuous() {
        let field = field_of(
            &[
                (0.0, 0.0),
                (8.0, 0.0),
                (60.0, 5.0),
                (66.0, 5.0),
                (30.0, -20.0),
                (36.0, -20.0),
            ],
            &[1, 0, 3, 2, 5, 4],
        );
        let cfg = ControlConfig::new(4.0, 1e-3, 1e6);
        let sweep = run(&field, &cfg);
        let mut scratch = ControlScratch::new();
        let report = relax(&field, &cfg, &mut scratch, false);
        assert_eq!(scratch.feasibility(report.verdict), sweep.feasibility);
        for (i, (&a, &s)) in scratch.powers.iter().zip(&sweep.powers).enumerate() {
            let rel = (a - s).abs() / s;
            assert!(rel < 5e-3, "link {i}: relax {a} vs sweep {s} (rel {rel})");
        }
        assert!(report.updates > 0);
    }

    /// On a discrete ladder the relaxation climbs to the *exact* least
    /// fixed point the sweep finds — bitwise equal rungs.
    #[test]
    fn cold_relax_matches_sync_sweep_geometric_exactly() {
        let field = field_of(
            &[(0.0, 0.0), (7.0, 0.0), (40.0, 3.0), (46.0, 3.0)],
            &[1, 0, 3, 2],
        );
        let mut cfg = ControlConfig::new(4.0, 1e-3, 1e5);
        cfg.ladder = PowerLadder::Geometric { levels: 24 };
        let sweep = run(&field, &cfg);
        let mut scratch = ControlScratch::new();
        let report = relax(&field, &cfg, &mut scratch, false);
        assert_eq!(scratch.powers, sweep.powers, "exact rung-for-rung match");
        assert_eq!(scratch.feasibility(report.verdict), sweep.feasibility);
    }

    /// A warm restart at equilibrium with an empty worklist is a no-op:
    /// zero updates, verdict unchanged.
    #[test]
    fn warm_restart_at_equilibrium_is_a_no_op() {
        let field = field_of(
            &[(0.0, 0.0), (8.0, 0.0), (300.0, 0.0), (308.0, 0.0)],
            &[1, 0, 3, 2],
        );
        let cfg = ControlConfig::new(4.0, 1e-3, 1e6);
        let mut scratch = ControlScratch::new();
        relax(&field, &cfg, &mut scratch, false);
        let report = relax(&field, &cfg, &mut scratch, true);
        assert_eq!(report.updates, 0);
        assert_eq!(report.verdict, Verdict::Converged);
        // Marking every link at equilibrium still changes nothing.
        for i in 0..field.len() as u32 {
            scratch.mark(i);
        }
        let report = relax(&field, &cfg, &mut scratch, true);
        assert_eq!(report.updates, 0, "equilibrium is a fixed point");
    }

    /// Overloaded instance under relaxation: the budget trips and the
    /// verdict is Diverging (continuous loops approach the infeasible
    /// fixed point asymptotically) or PowerCapped — never Converged.
    #[test]
    fn relax_never_calls_an_overload_feasible() {
        let mut coords = vec![(0.0, 0.0)];
        for k in 0..6 {
            coords.push((10.0 + 0.1 * k as f64, 0.0));
        }
        let receiver: Vec<u32> = std::iter::once(1)
            .chain(std::iter::repeat_n(0, 6))
            .collect();
        let field = field_of(&coords, &receiver);
        let cfg = ControlConfig::new(16.0, 1e-3, 1e4);
        let mut scratch = ControlScratch::new();
        let report = relax(&field, &cfg, &mut scratch, false);
        assert_ne!(report.verdict, Verdict::Converged);
    }
}
