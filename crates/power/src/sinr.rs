//! Per-link SINR evaluation against an active link set.
//!
//! A *link* is a transmitter together with its intended receiver; in
//! the transmitter-oriented CDMA model every node owns one spreading
//! code and one uplink, so links and transmitters coincide. The SINR
//! of link `i` at its receiver `r(i)` under the power vector `p` is
//!
//! ```text
//!             L · g(x_i, x_r(i)) · p_i
//! SINR_i = ────────────────────────────────
//!           N0 + Σ_{j≠i} g(x_j, x_r(i)) · p_j
//! ```
//!
//! with `L` the CDMA processing (spreading) gain and `N0` the receiver
//! noise power. [`SinrField`] precomputes, per link, the direct gain
//! and a sparse interferer list — positions are static over one
//! control-loop run, so the geometry is paid once and each iteration
//! is a pass over the sparse lists. Interferers whose gain at a
//! receiver is below `floor_frac · N0 / p_max` are dropped: even at
//! full power they would contribute less than `floor_frac` of the
//! noise floor, bounding the relative SINR error by construction.

use crate::gain::GainModel;
use minim_geom::{Point, SegmentGrid};

/// The link budget shared by every receiver: processing gain and
/// noise power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// CDMA processing (spreading) gain `L` applied to the wanted
    /// signal after despreading.
    pub processing_gain: f64,
    /// Receiver noise power `N0` (same normalized units as transmit
    /// powers).
    pub noise: f64,
}

impl LinkBudget {
    /// A spreading factor of 64 over unit noise — the normalized
    /// default; transmit powers are expressed relative to `N0`.
    pub fn cdma64() -> Self {
        LinkBudget {
            processing_gain: 64.0,
            noise: 1.0,
        }
    }

    /// Asserts the budget is physically sensible.
    ///
    /// # Panics
    /// Panics when the processing gain is below 1 or the noise is not
    /// strictly positive.
    pub fn validate(&self) {
        assert!(
            self.processing_gain.is_finite() && self.processing_gain >= 1.0,
            "processing_gain must be >= 1, got {}",
            self.processing_gain
        );
        assert!(
            self.noise.is_finite() && self.noise > 0.0,
            "noise must be positive, got {}",
            self.noise
        );
    }
}

/// A precomputed SINR evaluation field: direct gains plus sparse
/// interferer lists for a fixed set of transmitter/receiver positions.
#[derive(Debug, Clone)]
pub struct SinrField {
    budget: LinkBudget,
    /// `direct[i]` — gain from transmitter `i` to its own receiver
    /// (0 when the link is fully blocked or the node has no receiver).
    direct: Vec<f64>,
    /// `interferers[i]` — `(j, g(x_j, x_r(i)))` for every transmitter
    /// `j ≠ i` above the gain floor at `i`'s receiver.
    interferers: Vec<Vec<(u32, f64)>>,
}

impl SinrField {
    /// Builds the field for transmitters at `positions`, where
    /// transmitter `i` aims at `positions[receiver[i]]`. A
    /// `receiver[i] == i` entry means "no receiver" (an isolated
    /// node): its direct gain is 0 and nothing interferes at it.
    ///
    /// `walls` (if any) attenuate both wanted and interfering paths
    /// through [`GainModel::wall_loss`]. `gain_floor` is the absolute
    /// gain below which an interferer is dropped (derive it as
    /// `floor_frac · noise / p_max`; see the module docs).
    ///
    /// # Panics
    /// Panics when the lengths differ or a receiver index is out of
    /// bounds.
    pub fn build(
        gain: &GainModel,
        budget: LinkBudget,
        positions: &[Point],
        receiver: &[usize],
        walls: Option<&SegmentGrid>,
        gain_floor: f64,
    ) -> SinrField {
        assert_eq!(positions.len(), receiver.len(), "one receiver per node");
        gain.validate();
        budget.validate();
        let n = positions.len();
        // Never scan farther than the floor distance — beyond it even
        // an unobstructed interferer is below the floor.
        let cutoff = if gain_floor > 0.0 && gain_floor < 1.0 {
            gain.distance_for_gain(gain_floor)
        } else {
            f64::INFINITY
        };
        let cutoff2 = cutoff * cutoff;
        let g_at = |from: usize, to_pos: &Point| -> f64 {
            gain.gain_between(&positions[from], to_pos, walls)
        };
        let mut direct = Vec::with_capacity(n);
        let mut interferers = Vec::with_capacity(n);
        for (i, &r) in receiver.iter().enumerate() {
            assert!(r < n, "receiver index {r} out of bounds ({n} nodes)");
            if r == i {
                direct.push(0.0);
                interferers.push(Vec::new());
                continue;
            }
            let rx = positions[r];
            direct.push(g_at(i, &rx));
            let mut inter = Vec::new();
            for (j, pos) in positions.iter().enumerate() {
                // A receiver cancels its own transmission (j == r):
                // counting it would swamp every bidirectional pair
                // with near-field self-interference.
                if j == i || j == r || pos.dist2(&rx) > cutoff2 {
                    continue;
                }
                let g = g_at(j, &rx);
                if g >= gain_floor {
                    inter.push((j as u32, g));
                }
            }
            interferers.push(inter);
        }
        SinrField {
            budget,
            direct,
            interferers,
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.direct.len()
    }

    /// Whether the field has no links.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty()
    }

    /// The link budget the field was built with.
    pub fn budget(&self) -> LinkBudget {
        self.budget
    }

    /// Direct gain of link `i`.
    #[inline]
    pub fn direct_gain(&self, i: usize) -> f64 {
        self.direct[i]
    }

    /// Noise-plus-interference power at link `i`'s receiver under `p`.
    #[inline]
    pub fn interference(&self, powers: &[f64], i: usize) -> f64 {
        let mut acc = self.budget.noise;
        for &(j, g) in &self.interferers[i] {
            acc += g * powers[j as usize];
        }
        acc
    }

    /// SINR of link `i` under the power vector `powers` (0 when the
    /// direct path is dead).
    #[inline]
    pub fn sinr(&self, powers: &[f64], i: usize) -> f64 {
        self.budget.processing_gain * self.direct[i] * powers[i] / self.interference(powers, i)
    }

    /// SINR of every link under `powers`.
    pub fn sinrs(&self, powers: &[f64]) -> Vec<f64> {
        (0..self.len()).map(|i| self.sinr(powers, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minim_geom::Segment;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn lone_link_is_noise_limited() {
        // Two nodes aiming at each other, 4 apart: SINR = L · g · p.
        let positions = pts(&[(0.0, 0.0), (4.0, 0.0)]);
        let field = SinrField::build(
            &GainModel::terrain(),
            LinkBudget::cdma64(),
            &positions,
            &[1, 0],
            None,
            0.0,
        );
        let p = [2.0, 2.0];
        let g = GainModel::terrain().path_gain(4.0);
        // Each is the other's receiver; a receiver cancels its own
        // transmission, so the lone pair sees noise only.
        let expect0 = 64.0 * g * 2.0 / 1.0;
        assert!((field.sinr(&p, 0) - expect0).abs() < 1e-12);
        assert_eq!(field.sinr(&p, 0), field.sinr(&p, 1), "symmetric pair");
    }

    #[test]
    fn interference_reduces_sinr() {
        // 0 → 1, with 2 close to receiver 1: raising p_2 drops SINR_0.
        let positions = pts(&[(0.0, 0.0), (5.0, 0.0), (6.0, 0.0)]);
        let field = SinrField::build(
            &GainModel::terrain(),
            LinkBudget::cdma64(),
            &positions,
            &[1, 0, 1],
            None,
            0.0,
        );
        let quiet = field.sinr(&[1.0, 1.0, 0.0], 0);
        let loud = field.sinr(&[1.0, 1.0, 10.0], 0);
        assert!(loud < quiet, "interferer power must hurt: {loud} < {quiet}");
    }

    #[test]
    fn isolated_node_has_dead_link() {
        let positions = pts(&[(0.0, 0.0)]);
        let field = SinrField::build(
            &GainModel::terrain(),
            LinkBudget::cdma64(),
            &positions,
            &[0],
            None,
            0.0,
        );
        assert_eq!(field.direct_gain(0), 0.0);
        assert_eq!(field.sinr(&[5.0], 0), 0.0);
    }

    #[test]
    fn gain_floor_drops_distant_interferers_only() {
        // Interferer at distance 100 from the receiver is below the
        // floor; one at distance 3 stays.
        let positions = pts(&[(0.0, 0.0), (2.0, 0.0), (5.0, 0.0), (102.0, 0.0)]);
        let gm = GainModel::terrain();
        let floor = gm.path_gain(50.0);
        let all = SinrField::build(
            &gm,
            LinkBudget::cdma64(),
            &positions,
            &[1, 0, 1, 1],
            None,
            0.0,
        );
        let floored = SinrField::build(
            &gm,
            LinkBudget::cdma64(),
            &positions,
            &[1, 0, 1, 1],
            None,
            floor,
        );
        assert_eq!(floored.interferers[0].len(), 1, "only the near one");
        assert_eq!(all.interferers[0].len(), 2);
        let p = [1.0, 1.0, 1.0, 1.0];
        let rel = (floored.sinr(&p, 0) - all.sinr(&p, 0)).abs() / all.sinr(&p, 0);
        assert!(rel < 1e-2, "floor error is bounded, got {rel}");
    }

    #[test]
    fn walls_attenuate_wanted_and_interfering_paths() {
        let positions = pts(&[(0.0, 0.0), (6.0, 0.0), (3.0, 5.0)]);
        let mut walls = SegmentGrid::new(5.0);
        walls.insert(Segment::new(Point::new(3.0, -2.0), Point::new(3.0, 2.0)));
        let gm = GainModel::terrain();
        let clear = SinrField::build(&gm, LinkBudget::cdma64(), &positions, &[1, 0, 1], None, 0.0);
        let walled = SinrField::build(
            &gm,
            LinkBudget::cdma64(),
            &positions,
            &[1, 0, 1],
            Some(&walls),
            0.0,
        );
        // The 0→1 direct path crosses the wall: 10 dB down.
        assert!((walled.direct_gain(0) - clear.direct_gain(0) * 0.1).abs() < 1e-15);
        // 2's path to receiver 1 clears the wall: untouched.
        let g2 = |f: &SinrField| f.interferers[0].iter().find(|e| e.0 == 2).unwrap().1;
        assert_eq!(g2(&walled), g2(&clear));
    }
}
